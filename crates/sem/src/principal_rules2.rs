//! Explicit semantic rules of the principal AG — part 2: sequential
//! statements, concurrent statements (with the LRM equivalent-process
//! desugaring), and compilation units.

use std::rc::Rc;

use ag_core::{AgBuilder, Dep};
use ag_lalr::Grammar;
use vhdl_syntax::{Pos, SrcTok};
use vhdl_vif::{VifNode, VifValue};

use crate::decl::ObjClass;
use crate::env::{Den, Env};
use crate::ir::{self, ty_of, Ir};
use crate::msg::{Msg, Msgs};
use crate::oof::{self, U};
use crate::principal_ag::PrincipalClasses;
use crate::principal_rules::{p, res_decls, res_env, res_msgs, with_u};
use crate::types::{self, Ty};
use crate::value::Value;

pub(crate) fn install(ab: &mut AgBuilder<Value>, g: &Grammar, c: &PrincipalClasses) {
    // Extra attachments for this half.
    let nt = |n: &str| g.symbol(n).unwrap_or_else(|| panic!("no nonterminal {n}"));
    for n in [
        "process_stmt",
        "block_stmt",
        "component_inst",
        "cond_signal_assign",
        "sel_signal_assign",
    ] {
        ab.attach(c.concs, nt(n));
        ab.attach(c.res, nt(n));
    }
    for n in [
        "wait_stmt",
        "assert_stmt",
        "target_stmt",
        "if_stmt",
        "case_stmt",
        "loop_stmt",
        "next_stmt",
        "exit_stmt",
        "return_stmt",
    ] {
        ab.attach(c.res, nt(n));
    }
    for n in [
        "entity_decl",
        "architecture_body",
        "package_decl",
        "package_body",
        "configuration_decl",
    ] {
        ab.attach(c.res, nt(n));
    }

    install_stmts(ab, g, c);
    install_concs(ab, g, c);
    install_units(ab, g, c);
}

/// `[List(stmts), Msgs]` bundle helpers for statement RES.
fn sres(stmts: Vec<Ir>, msgs: Msgs) -> Value {
    Value::list(vec![
        Value::list(stmts.into_iter().map(Value::Node).collect()),
        Value::Msgs(msgs),
    ])
}

/// Wires the projection rules for a `RES = [payload, Msgs]` bundle:
/// `payload_class` receives the bundle's first element, `MSGS` its second
/// (merged with the listed children's messages).
fn res_projections(
    ab: &mut AgBuilder<Value>,
    g: &Grammar,
    c: &PrincipalClasses,
    label: &str,
    payload_class: ag_core::ClassId,
    msg_children: &[usize],
) {
    let pr = p(g, label);
    let c = *c;
    ab.rule(pr, 0, payload_class, vec![Dep::attr(0, c.res)], |d| {
        d[0].expect_list()[0].clone()
    });
    let mut deps = vec![Dep::attr(0, c.res)];
    for &occ in msg_children {
        deps.push(Dep::attr(occ, c.msgs));
    }
    ab.rule(pr, 0, c.msgs, deps, |d| {
        let mut m = d[0].expect_list()[1].as_msgs().clone();
        for v in &d[1..] {
            m = Msgs::concat(&m, v.as_msgs());
        }
        Value::Msgs(m)
    });
}

fn stmt_projections(ab: &mut AgBuilder<Value>, g: &Grammar, c: &PrincipalClasses, label: &str) {
    res_projections(ab, g, c, label, c.stmts, &[]);
}

/// Statement projections where nested statement lists contribute MSGS of
/// their own (if/case/loop).
fn stmt_projections_with_children(
    ab: &mut AgBuilder<Value>,
    g: &Grammar,
    c: &PrincipalClasses,
    label: &str,
    msg_children: &[usize],
) {
    res_projections(ab, g, c, label, c.stmts, msg_children);
}

/// Resolves an assignment target; returns `(ir, root obj)`.
fn resolve_target(u: &U<'_>, toks: &[SrcTok]) -> (Option<Ir>, Option<Rc<VifNode>>, Msgs) {
    let a = u.ev(toks, None);
    let msgs = a.msgs.clone();
    match a.ir {
        Some(ir) => {
            let root = target_root(&ir);
            (Some(ir), root, msgs)
        }
        None => (None, None, msgs),
    }
}

/// The object at the base of a target IR.
pub(crate) fn target_root(ir: &Ir) -> Option<Rc<VifNode>> {
    match ir.kind() {
        "e.ref" => ir.node_field("obj").cloned(),
        "e.index" | "e.slice" | "e.field" => target_root(ir.node_field("base")?),
        _ => None,
    }
}

fn time_ty(u: &U<'_>) -> Ty {
    Rc::clone(&u.ctx.std.std.time)
}

fn bool_ty(u: &U<'_>) -> Ty {
    Rc::clone(&u.ctx.std.std.boolean)
}

/// Evaluates one waveform descriptor list into `wv` nodes.
fn eval_waveform(u: &U<'_>, waves: &Value, target_ty: &Ty, msgs: &mut Msgs) -> Vec<Rc<VifNode>> {
    let mut out = Vec::new();
    for w in waves.expect_list() {
        let pair = w.expect_list();
        let vtoks = oof::toks_of(&pair[0]);
        let dtoks = oof::toks_of(&pair[1]);
        let va = u.ev(&vtoks, Some(target_ty));
        *msgs = Msgs::concat(msgs, &va.msgs);
        let delay = if dtoks.is_empty() {
            None
        } else {
            let da = u.ev(&dtoks, Some(&time_ty(u)));
            *msgs = Msgs::concat(msgs, &da.msgs);
            da.ir
        };
        if let Some(v) = va.ir {
            out.push(ir::wv(v, delay));
        }
    }
    out
}

fn install_stmts(ab: &mut AgBuilder<Value>, g: &Grammar, c: &PrincipalClasses) {
    let c = *c;

    // ----- assignments and calls ------------------------------------------
    let pr = p(g, "sig_assign");
    ab.rule(
        pr,
        0,
        c.res,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::attr(1, c.toks),
            Dep::attr(3, c.info),
            Dep::attr(4, c.waves),
        ],
        |d| {
            with_u!(d, u, {
                let toks = oof::toks_of(&d[2]);
                let pos = toks.first().map(|t| t.pos).unwrap_or_default();
                let (target, root, mut msgs) = resolve_target(&u, &toks);
                let Some(target) = target else {
                    return sres(vec![], msgs);
                };
                if root.as_deref().and_then(|r| r.str_field("class")) != Some("signal") {
                    msgs.push(Msg::error(pos, "target of `<=` must be a signal"));
                    return sres(vec![], msgs);
                }
                let is_in_port = root.as_deref().is_some_and(|r| {
                    r.str_field("origin") == Some("iface") && r.str_field("mode") == Some("in")
                });
                if is_in_port {
                    msgs.push(Msg::error(pos, "cannot assign to a port of mode `in`"));
                    return sres(vec![], msgs);
                }
                let transport = matches!(d[3], Value::Bool(true));
                let wf = eval_waveform(&u, &d[4], &ty_of(&target), &mut msgs);
                sres(vec![ir::s_assign_sig(target, wf, transport)], msgs)
            })
        },
    );
    stmt_projections(ab, g, &c, "sig_assign");

    let pr = p(g, "var_assign");
    ab.rule(
        pr,
        0,
        c.res,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::attr(1, c.toks),
            Dep::attr(3, c.toks),
        ],
        |d| {
            with_u!(d, u, {
                let toks = oof::toks_of(&d[2]);
                let pos = toks.first().map(|t| t.pos).unwrap_or_default();
                let (target, root, mut msgs) = resolve_target(&u, &toks);
                let Some(target) = target else {
                    return sres(vec![], msgs);
                };
                let cls = root.as_deref().and_then(|r| r.str_field("class"));
                if !matches!(cls, Some("variable") | Some("loopvar")) {
                    msgs.push(Msg::error(pos, "target of `:=` must be a variable"));
                    return sres(vec![], msgs);
                }
                if cls == Some("loopvar") {
                    msgs.push(Msg::error(pos, "loop parameter cannot be assigned"));
                    return sres(vec![], msgs);
                }
                let a = u.ev(&oof::toks_of(&d[3]), Some(&ty_of(&target)));
                msgs = Msgs::concat(&msgs, &a.msgs);
                match a.ir {
                    Some(v) => sres(vec![ir::s_assign_var(target, v)], msgs),
                    None => sres(vec![], msgs),
                }
            })
        },
    );
    stmt_projections(ab, g, &c, "var_assign");

    let pr = p(g, "proc_call");
    ab.rule(
        pr,
        0,
        c.res,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::attr(1, c.toks),
        ],
        |d| {
            with_u!(d, u, {
                let toks = oof::toks_of(&d[2]);
                let void = types::void_marker();
                let a = u.ev(&toks, Some(&void));
                match a.ir {
                    Some(call) => sres(vec![ir::s_call(call)], a.msgs),
                    None => sres(vec![], a.msgs),
                }
            })
        },
    );
    stmt_projections(ab, g, &c, "proc_call");

    // ----- wait / assert -----------------------------------------------------
    let pr = p(g, "wait_stmt");
    ab.rule(
        pr,
        0,
        c.res,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::attr(2, c.info),
            Dep::attr(3, c.info),
            Dep::attr(4, c.info),
        ],
        |d| {
            with_u!(d, u, {
                let mut msgs = Msgs::none();
                let sens = resolve_signal_names(&u, &d[2], &mut msgs);
                let cond = eval_opt(&u, &d[3], Some(&bool_ty(&u)), &mut msgs);
                let timeout = eval_opt(&u, &d[4], Some(&time_ty(&u)), &mut msgs);
                sres(vec![ir::s_wait(sens, cond, timeout)], msgs)
            })
        },
    );
    stmt_projections(ab, g, &c, "wait_stmt");

    let pr = p(g, "assert_stmt");
    ab.rule(
        pr,
        0,
        c.res,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::attr(2, c.toks),
            Dep::attr(3, c.info),
            Dep::attr(4, c.info),
        ],
        |d| {
            with_u!(d, u, {
                let mut msgs = Msgs::none();
                let cond = u.ev(&oof::toks_of(&d[2]), Some(&bool_ty(&u)));
                msgs = Msgs::concat(&msgs, &cond.msgs);
                let Some(cond) = cond.ir else {
                    return sres(vec![], msgs);
                };
                let string_ty = Rc::clone(&u.ctx.std.std.string);
                let sev_ty = Rc::clone(&u.ctx.std.std.severity_level);
                let report = eval_opt(&u, &d[3], Some(&string_ty), &mut msgs);
                let severity = eval_opt(&u, &d[4], Some(&sev_ty), &mut msgs);
                sres(vec![ir::s_assert(cond, report, severity)], msgs)
            })
        },
    );
    stmt_projections(ab, g, &c, "assert_stmt");

    // ----- control flow ------------------------------------------------------
    let pr = p(g, "if_stmt");
    ab.rule(
        pr,
        0,
        c.res,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::attr(2, c.toks),
            Dep::attr(4, c.stmts),
            Dep::attr(5, c.info),
        ],
        |d| {
            with_u!(d, u, {
                let mut msgs = Msgs::none();
                let bt = bool_ty(&u);
                let mut arms: Vec<(Vec<SrcTok>, Vec<Value>)> =
                    vec![(oof::toks_of(&d[2]), d[3].expect_list().to_vec())];
                let tail = d[4].expect_list();
                for arm in tail[0].expect_list() {
                    let pairv = arm.expect_list();
                    arms.push((oof::toks_of(&pairv[0]), pairv[1].expect_list().to_vec()));
                }
                let mut els: Vec<VifValue> = tail[1]
                    .expect_list()
                    .iter()
                    .map(|v| VifValue::Node(v.expect_node()))
                    .collect();
                // Fold elsif arms right-to-left into nested ifs.
                for (cond_toks, stmts) in arms.into_iter().rev() {
                    let a = u.ev(&cond_toks, Some(&bt));
                    msgs = Msgs::concat(&msgs, &a.msgs);
                    let cond = match a.ir {
                        Some(c) => c,
                        None => continue,
                    };
                    let then: Vec<VifValue> = stmts
                        .iter()
                        .map(|v| VifValue::Node(v.expect_node()))
                        .collect();
                    els = vec![VifValue::Node(ir::s_if(cond, then, els))];
                }
                let stmts: Vec<Ir> = els
                    .into_iter()
                    .filter_map(|v| v.as_node().cloned())
                    .collect();
                sres(stmts, msgs)
            })
        },
    );
    stmt_projections_with_children(ab, g, &c, "if_stmt", &[4, 5]);

    let pr = p(g, "case_stmt");
    ab.rule(
        pr,
        0,
        c.res,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::attr(2, c.toks),
            Dep::attr(4, c.alts),
        ],
        |d| {
            with_u!(d, u, {
                let mut msgs = Msgs::none();
                let sel = u.ev(&oof::toks_of(&d[2]), None);
                msgs = Msgs::concat(&msgs, &sel.msgs);
                let Some(sel) = sel.ir else {
                    return sres(vec![], msgs);
                };
                let sel_ty = ty_of(&sel);
                let mut alts = Vec::new();
                for alt in d[3].expect_list() {
                    let pairv = alt.expect_list();
                    let choices = eval_choices(&u, &pairv[0], &sel_ty, &mut msgs);
                    let body: Vec<VifValue> = pairv[1]
                        .expect_list()
                        .iter()
                        .map(|v| VifValue::Node(v.expect_node()))
                        .collect();
                    alts.push(VifValue::Node(ir::s_case_alt(choices, body)));
                }
                sres(vec![ir::s_case(sel, alts)], msgs)
            })
        },
    );
    stmt_projections_with_children(ab, g, &c, "case_stmt", &[4]);
    // case_alt: collect (choices, stmts).
    let pr2 = p(g, "case_alt");
    ab.rule(
        pr2,
        0,
        c.alts,
        vec![Dep::attr(2, c.choices), Dep::attr(4, c.stmts)],
        |d| Value::list(vec![Value::list(vec![d[0].clone(), d[1].clone()])]),
    );

    let pr = p(g, "loop_stmt");
    // Loop body environment: `for` loops bind the iteration parameter.
    ab.rule(
        pr,
        3,
        c.env,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::attr(1, c.info),
        ],
        |d| {
            with_u!(d, u, {
                match loop_var(&u, &d[2]) {
                    Some((obj, _)) => Value::Env(
                        u.env
                            .bind(obj.name().unwrap_or("?"), Den::local(Rc::clone(&obj))),
                    ),
                    None => Value::Env(u.env.clone()),
                }
            })
        },
    );
    ab.rule(
        pr,
        0,
        c.res,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::attr(1, c.info),
            Dep::attr(3, c.stmts),
        ],
        |d| {
            with_u!(d, u, {
                let mut msgs = Msgs::none();
                let info = d[2].expect_list();
                let kind = info[0].expect_str();
                let body: Vec<VifValue> = d[3]
                    .expect_list()
                    .iter()
                    .map(|v| VifValue::Node(v.expect_node()))
                    .collect();
                let stmt = match &*kind {
                    "forever" => ir::s_loop("forever", None, None, body),
                    "while" => {
                        let a = u.ev(&oof::toks_of(&info[1]), Some(&bool_ty(&u)));
                        msgs = Msgs::concat(&msgs, &a.msgs);
                        match a.ir {
                            Some(cond) => ir::s_loop("while", None, Some(cond), body),
                            None => return sres(vec![], msgs),
                        }
                    }
                    _ => match loop_var(&u, &d[2]) {
                        Some((obj, range)) => ir::s_loop("for", Some(obj), Some(range), body),
                        None => {
                            msgs.push(Msg::error(
                                Pos::default(),
                                "for-loop range must be a static-typed discrete range",
                            ));
                            return sres(vec![], msgs);
                        }
                    },
                };
                sres(vec![stmt], msgs)
            })
        },
    );
    stmt_projections_with_children(ab, g, &c, "loop_stmt", &[3]);

    // ----- simple statements -------------------------------------------------
    for (label, is_exit) in [("next_stmt", false), ("exit_stmt", true)] {
        let pr = p(g, label);
        ab.rule(
            pr,
            0,
            c.res,
            vec![
                Dep::attr(0, c.env),
                Dep::attr(0, c.ctx),
                Dep::attr(2, c.info),
            ],
            move |d| {
                with_u!(d, u, {
                    let mut msgs = Msgs::none();
                    let cond = eval_opt(&u, &d[2], Some(&bool_ty(&u)), &mut msgs);
                    sres(vec![ir::s_next_exit(is_exit, cond)], msgs)
                })
            },
        );
        stmt_projections(ab, g, &c, label);
    }
    let pr = p(g, "return_plain");
    ab.rule(pr, 0, c.res, vec![], |_| {
        sres(vec![ir::s_return(None)], Msgs::none())
    });
    stmt_projections(ab, g, &c, "return_plain");
    let pr = p(g, "return_value");
    ab.rule(
        pr,
        0,
        c.res,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::attr(0, c.ret),
            Dep::attr(2, c.toks),
        ],
        |d| {
            with_u!(d, u, {
                let ret = match &d[2] {
                    Value::MaybeNode(t) => t.clone(),
                    _ => None,
                };
                let toks = oof::toks_of(&d[3]);
                let pos = toks.first().map(|t| t.pos).unwrap_or_default();
                let Some(ret) = ret else {
                    return sres(
                        vec![],
                        Msgs::one(Msg::error(pos, "value return outside a function")),
                    );
                };
                let a = u.ev(&toks, Some(&ret));
                match a.ir {
                    Some(v) => sres(vec![ir::s_return(Some(v))], a.msgs),
                    None => sres(vec![], a.msgs),
                }
            })
        },
    );
    stmt_projections(ab, g, &c, "return_value");
    ab.rule(p(g, "null_stmt"), 0, c.stmts, vec![], |_| {
        Value::list(vec![Value::Node(ir::s_null())])
    });
}

/// Evaluates an optional token run (`INFO` = token list, empty = absent).
fn eval_opt(u: &U<'_>, v: &Value, expected: Option<&Ty>, msgs: &mut Msgs) -> Option<Ir> {
    let toks = oof::toks_of(v);
    if toks.is_empty() {
        return None;
    }
    let a = u.ev(&toks, expected);
    *msgs = Msgs::concat(msgs, &a.msgs);
    a.ir
}

/// Resolves a NAMES bundle to signal references.
fn resolve_signal_names(u: &U<'_>, v: &Value, msgs: &mut Msgs) -> Vec<VifValue> {
    let mut out = Vec::new();
    for name in v.expect_list() {
        let toks = oof::toks_of(name);
        let pos = toks.first().map(|t| t.pos).unwrap_or_default();
        let a = u.ev(&toks, None);
        *msgs = Msgs::concat(msgs, &a.msgs);
        if let Some(ir) = a.ir {
            match target_root(&ir) {
                Some(root) if root.str_field("class") == Some("signal") => {
                    out.push(VifValue::Node(ir));
                }
                _ => msgs.push(Msg::error(pos, "sensitivity names must denote signals")),
            }
        }
    }
    out
}

/// Evaluates a CHOICES bundle against the selector type, folding static
/// choices.
fn eval_choices(u: &U<'_>, v: &Value, sel_ty: &Ty, msgs: &mut Msgs) -> Vec<VifValue> {
    let mut out = Vec::new();
    for ch in v.expect_list() {
        let parts = ch.expect_list();
        match &*parts[0].expect_str() {
            "others" => out.push(VifValue::Node(VifNode::build("ch.others").done())),
            _ => {
                let toks = oof::toks_of(&parts[1]);
                let pos = toks.first().map(|t| t.pos).unwrap_or_default();
                let a = u.ev(&toks, None);
                *msgs = Msgs::concat(msgs, &a.msgs);
                match (a.as_range(), a.ir) {
                    (Some((l, r, dir)), _) => match (ir::const_int(&l), ir::const_int(&r)) {
                        (Some(lv), Some(rv)) => {
                            let (lo, hi) = match dir {
                                types::Dir::To => (lv, rv),
                                types::Dir::Downto => (rv, lv),
                            };
                            out.push(VifValue::Node(
                                VifNode::build("ch.range")
                                    .int_field("lo", lo)
                                    .int_field("hi", hi)
                                    .done(),
                            ));
                        }
                        _ => msgs.push(Msg::error(pos, "choice range must be static")),
                    },
                    (None, Some(cir)) => {
                        if !types::compatible(&ty_of(&cir), sel_ty) {
                            msgs.push(Msg::error(pos, "choice type does not match selector"));
                        }
                        match ir::const_int(&cir) {
                            Some(v) => out.push(VifValue::Node(
                                VifNode::build("ch.val").int_field("val", v).done(),
                            )),
                            None => msgs.push(Msg::error(pos, "choice must be static")),
                        }
                    }
                    (None, None) => {}
                }
            }
        }
    }
    out
}

/// Builds the loop variable and range IR from a `for` loop-head INFO.
fn loop_var(u: &U<'_>, info: &Value) -> Option<(Rc<VifNode>, Ir)> {
    let parts = info.expect_list();
    if &*parts[0].expect_str() != "for" {
        return None;
    }
    let var = parts[1].expect_tok();
    let a = u.ev(&oof::toks_of(&parts[2]), None);
    let range_ir = a.ir?;
    if range_ir.kind() != "e.range" {
        return None;
    }
    let l = range_ir.node_field("left")?;
    let vty = {
        let t = ty_of(l);
        if types::is_universal_int(&t) {
            Rc::clone(&u.ctx.std.std.integer)
        } else {
            t
        }
    };
    let obj = oof::obj_at(
        ObjClass::LoopVar,
        &var.text,
        var.pos,
        &vty,
        crate::decl::Mode::In,
        None,
        None,
    );
    Some((obj, range_ir))
}

// ---------------------------------------------------------------------------
// Concurrent statements.
// ---------------------------------------------------------------------------

fn install_concs(ab: &mut AgBuilder<Value>, g: &Grammar, c: &PrincipalClasses) {
    let c = *c;
    // Labels.
    ab.rule(
        p(g, "conc_labelled"),
        3,
        c.label,
        vec![Dep::token(1)],
        |d| d[0].clone(),
    );

    // conc_body ::= assert_stmt → a passive process.
    let pr = p(g, "cb_assert");
    ab.rule(
        pr,
        0,
        c.concs,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::attr(0, c.label),
            Dep::attr(1, c.stmts),
        ],
        |d| {
            with_u!(d, u, {
                let stmts: Vec<VifValue> = d[3]
                    .expect_list()
                    .iter()
                    .map(|v| VifValue::Node(v.expect_node()))
                    .collect();
                let sens = signals_in_stmts(&stmts);
                let _ = u;
                Value::list(vec![Value::Node(process_node(
                    &label_name(&d[2], "assert", Pos::default()),
                    sens.clone(),
                    vec![],
                    with_final_wait(stmts, sens),
                ))])
            })
        },
    );
    let pr = p(g, "uc_assert");
    ab.rule(
        pr,
        0,
        c.concs,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::attr(0, c.label),
            Dep::attr(1, c.stmts),
        ],
        |d| {
            with_u!(d, u, {
                let _ = u;
                let stmts: Vec<VifValue> = d[3]
                    .expect_list()
                    .iter()
                    .map(|v| VifValue::Node(v.expect_node()))
                    .collect();
                let sens = signals_in_stmts(&stmts);
                Value::list(vec![Value::Node(process_node(
                    &label_name(&d[2], "assert", Pos::default()),
                    sens.clone(),
                    vec![],
                    with_final_wait(stmts, sens),
                ))])
            })
        },
    );

    // process_stmt.
    let pr = p(g, "process_stmt");
    ab.rule(pr, 5, c.env, vec![Dep::attr(3, c.envo)], |d| d[0].clone());
    ab.rule(
        pr,
        0,
        c.res,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::attr(0, c.label),
            Dep::attr(2, c.info),
            Dep::attr(3, c.decls),
            Dep::attr(5, c.stmts),
        ],
        |d| {
            with_u!(d, u, {
                let mut msgs = Msgs::none();
                let sens = resolve_signal_names(&u, &d[3], &mut msgs);
                let decls: Vec<VifValue> = d[4]
                    .expect_list()
                    .iter()
                    .map(|v| VifValue::Node(v.expect_node()))
                    .collect();
                let mut body: Vec<VifValue> = d[5]
                    .expect_list()
                    .iter()
                    .map(|v| VifValue::Node(v.expect_node()))
                    .collect();
                // A sensitivity list is equivalent to a final `wait on` it.
                if !sens.is_empty() {
                    body.push(VifValue::Node(ir::s_wait(sens.clone(), None, None)));
                }
                let name = label_name(&d[2], "proc", Pos::default());
                Value::list(vec![
                    Value::list(vec![Value::Node(process_node(&name, sens, decls, body))]),
                    Value::Msgs(msgs),
                ])
            })
        },
    );
    conc_projections(ab, g, &c, "process_stmt", &[3, 5]);

    // block_stmt: implicit guard signal, nested concurrency.
    let pr = p(g, "block_stmt");
    let guard_env = |d: &[Value]| -> (Env, Option<Rc<VifNode>>) {
        let env = d[0].expect_env();
        let ctx = d[1].expect_ctx();
        let toks = oof::toks_of(&d[2]);
        if toks.is_empty() {
            return (env.clone(), None);
        }
        let pos = toks[0].pos;
        let guard = oof::obj_at(
            ObjClass::Signal,
            "guard",
            pos,
            &ctx.std.std.boolean,
            crate::decl::Mode::In,
            None,
            None,
        );
        (
            env.bind("guard", Den::local(Rc::clone(&guard))),
            Some(guard),
        )
    };
    {
        ab.rule(
            pr,
            3,
            c.env,
            vec![
                Dep::attr(0, c.env),
                Dep::attr(0, c.ctx),
                Dep::attr(2, c.info),
            ],
            move |d| Value::Env(guard_env(d).0),
        );
    }
    ab.rule(pr, 5, c.env, vec![Dep::attr(3, c.envo)], |d| d[0].clone());
    ab.rule(
        pr,
        0,
        c.res,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::attr(2, c.info),
            Dep::attr(0, c.label),
            Dep::attr(3, c.decls),
            Dep::attr(5, c.concs),
        ],
        move |d| {
            let env = d[0].expect_env();
            let ctx = d[1].expect_ctx();
            let mut msgs = Msgs::none();
            let (genv, guard) = guard_env(d);
            let toks = oof::toks_of(&d[2]);
            let guard_expr = if toks.is_empty() {
                None
            } else {
                let u = U {
                    env: &genv,
                    ctx: &ctx,
                };
                let a = u.ev(&toks, Some(&ctx.std.std.boolean));
                msgs = Msgs::concat(&msgs, &a.msgs);
                a.ir
            };
            let _ = env;
            let mut b = VifNode::build("block").name(&*label_name(&d[3], "blk", Pos::default()));
            if let Some(gobj) = guard {
                b = b.node_field("guard_sig", gobj);
            }
            if let Some(ge) = guard_expr {
                b = b.node_field("guard_expr", ge);
            }
            let node = b
                .list_field(
                    "decls",
                    d[4].expect_list()
                        .iter()
                        .map(|v| VifValue::Node(v.expect_node()))
                        .collect(),
                )
                .list_field(
                    "concs",
                    d[5].expect_list()
                        .iter()
                        .map(|v| VifValue::Node(v.expect_node()))
                        .collect(),
                )
                .done();
            Value::list(vec![
                Value::list(vec![Value::Node(node)]),
                Value::Msgs(msgs),
            ])
        },
    );
    conc_projections(ab, g, &c, "block_stmt", &[3, 5]);

    // component_inst.
    let pr = p(g, "component_inst");
    ab.rule(
        pr,
        0,
        c.res,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::attr(0, c.label),
            Dep::attr(1, c.toks),
            Dep::attr(2, c.assocs),
            Dep::attr(3, c.assocs),
        ],
        |d| {
            with_u!(d, u, {
                let mut msgs = Msgs::none();
                let toks = oof::toks_of(&d[3]);
                let pos = toks.first().map(|t| t.pos).unwrap_or_default();
                let comp = match u.resolve_name(&toks) {
                    Ok(dens) if dens[0].kind_sym() == vhdl_vif::kinds::component() => {
                        Rc::clone(&dens[0])
                    }
                    Ok(_) => {
                        msgs.push(Msg::error(pos, "instantiated name is not a component"));
                        return Value::list(vec![Value::empty_list(), Value::Msgs(msgs)]);
                    }
                    Err(m) => {
                        msgs.push(m);
                        return Value::list(vec![Value::empty_list(), Value::Msgs(msgs)]);
                    }
                };
                let gmap = eval_assocs(&u, &d[4], &comp, "generics", &mut msgs);
                let pmap = eval_assocs(&u, &d[5], &comp, "ports", &mut msgs);
                let node = VifNode::build("inst")
                    .name(&*label_name(&d[2], "u", pos))
                    .node_field("comp", comp)
                    .list_field("generic_map", gmap)
                    .list_field("port_map", pmap)
                    .done();
                Value::list(vec![
                    Value::list(vec![Value::Node(node)]),
                    Value::Msgs(msgs),
                ])
            })
        },
    );
    conc_projections(ab, g, &c, "component_inst", &[]);

    // Conditional signal assignment: desugar to the LRM equivalent process.
    let pr = p(g, "cond_assign");
    ab.rule(
        pr,
        0,
        c.res,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::attr(0, c.label),
            Dep::attr(1, c.toks),
            Dep::attr(3, c.info),
            Dep::attr(4, c.cwaves),
        ],
        |d| {
            with_u!(d, u, {
                let mut msgs = Msgs::none();
                let toks = oof::toks_of(&d[3]);
                let pos = toks.first().map(|t| t.pos).unwrap_or_default();
                let (target, root, m) = resolve_target(&u, &toks);
                msgs = Msgs::concat(&msgs, &m);
                let Some(target) = target else {
                    return Value::list(vec![Value::empty_list(), Value::Msgs(msgs)]);
                };
                if root.as_deref().and_then(|r| r.str_field("class")) != Some("signal") {
                    msgs.push(Msg::error(pos, "target of `<=` must be a signal"));
                    return Value::list(vec![Value::empty_list(), Value::Msgs(msgs)]);
                }
                let opts = d[4].expect_list();
                let guarded = matches!(opts[0], Value::Bool(true));
                let transport = matches!(opts[1], Value::Bool(true));
                let tty = ty_of(&target);
                // Build nested ifs from the conditional waveforms.
                let mut els: Vec<VifValue> = Vec::new();
                for entry in d[5].expect_list().iter().rev() {
                    let pair = entry.expect_list();
                    let wf = eval_waveform(&u, &pair[0], &tty, &mut msgs);
                    let assign = ir::s_assign_sig(Rc::clone(&target), wf, transport);
                    let cond_toks = oof::toks_of(&pair[1]);
                    if cond_toks.is_empty() {
                        els = vec![VifValue::Node(assign)];
                    } else {
                        let a = u.ev(&cond_toks, Some(&bool_ty(&u)));
                        msgs = Msgs::concat(&msgs, &a.msgs);
                        if let Some(cond) = a.ir {
                            els = vec![VifValue::Node(ir::s_if(
                                cond,
                                vec![VifValue::Node(assign)],
                                els,
                            ))];
                        }
                    }
                }
                let stmts = guard_wrap(&u, guarded, els, &mut msgs, pos);
                let sens = signals_in_stmts(&stmts);
                let name = label_name(&d[2], "csa", pos);
                Value::list(vec![
                    Value::list(vec![Value::Node(process_node(
                        &name,
                        sens.clone(),
                        vec![],
                        with_final_wait(stmts, sens),
                    ))]),
                    Value::Msgs(msgs),
                ])
            })
        },
    );
    conc_projections(ab, g, &c, "cond_assign", &[]);

    // Selected signal assignment → case-based process.
    let pr = p(g, "sel_assign");
    ab.rule(
        pr,
        0,
        c.res,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::attr(0, c.label),
            Dep::attr(2, c.toks),
            Dep::attr(4, c.toks),
            Dep::attr(6, c.info),
            Dep::attr(7, c.swaves),
        ],
        |d| {
            with_u!(d, u, {
                let mut msgs = Msgs::none();
                let sel = u.ev(&oof::toks_of(&d[3]), None);
                msgs = Msgs::concat(&msgs, &sel.msgs);
                let ttoks = oof::toks_of(&d[4]);
                let pos = ttoks.first().map(|t| t.pos).unwrap_or_default();
                let (target, root, m) = resolve_target(&u, &ttoks);
                msgs = Msgs::concat(&msgs, &m);
                let (Some(sel), Some(target)) = (sel.ir, target) else {
                    return Value::list(vec![Value::empty_list(), Value::Msgs(msgs)]);
                };
                if root.as_deref().and_then(|r| r.str_field("class")) != Some("signal") {
                    msgs.push(Msg::error(pos, "target of `<=` must be a signal"));
                    return Value::list(vec![Value::empty_list(), Value::Msgs(msgs)]);
                }
                let opts = d[5].expect_list();
                let guarded = matches!(opts[0], Value::Bool(true));
                let transport = matches!(opts[1], Value::Bool(true));
                let tty = ty_of(&target);
                let sel_ty = ty_of(&sel);
                let mut alts = Vec::new();
                for pairv in d[6].expect_list() {
                    let pair = pairv.expect_list();
                    let wf = eval_waveform(&u, &pair[0], &tty, &mut msgs);
                    let assign = ir::s_assign_sig(Rc::clone(&target), wf, transport);
                    let choices = eval_choices(&u, &pair[1], &sel_ty, &mut msgs);
                    alts.push(VifValue::Node(ir::s_case_alt(
                        choices,
                        vec![VifValue::Node(assign)],
                    )));
                }
                let case = ir::s_case(sel, alts);
                let stmts = guard_wrap(&u, guarded, vec![VifValue::Node(case)], &mut msgs, pos);
                let sens = signals_in_stmts(&stmts);
                let name = label_name(&d[2], "ssa", pos);
                Value::list(vec![
                    Value::list(vec![Value::Node(process_node(
                        &name,
                        sens.clone(),
                        vec![],
                        with_final_wait(stmts, sens),
                    ))]),
                    Value::Msgs(msgs),
                ])
            })
        },
    );
    conc_projections(ab, g, &c, "sel_assign", &[]);
}

fn conc_projections(
    ab: &mut AgBuilder<Value>,
    g: &Grammar,
    c: &PrincipalClasses,
    label: &str,
    msg_children: &[usize],
) {
    res_projections(ab, g, c, label, c.concs, msg_children);
}

fn label_name(label: &Value, prefix: &str, pos: Pos) -> String {
    match label {
        Value::Tok(t) => t.text.to_string(),
        _ => format!("{prefix}_{}_{}", pos.line, pos.col),
    }
}

fn process_node(
    name: &str,
    sens: Vec<VifValue>,
    decls: Vec<VifValue>,
    body: Vec<VifValue>,
) -> Rc<VifNode> {
    VifNode::build("process")
        .name(name)
        .list_field("sens", sens)
        .list_field("decls", decls)
        .list_field("body", body)
        .done()
}

/// Appends the implicit `wait on <sens>` of a desugared concurrent
/// statement (or `wait;` forever when there is nothing to wake on).
fn with_final_wait(mut stmts: Vec<VifValue>, sens: Vec<VifValue>) -> Vec<VifValue> {
    stmts.push(VifValue::Node(ir::s_wait(sens, None, None)));
    stmts
}

/// Wraps statements in `if guard then … end if` for guarded assignments.
fn guard_wrap(
    u: &U<'_>,
    guarded: bool,
    stmts: Vec<VifValue>,
    msgs: &mut Msgs,
    pos: Pos,
) -> Vec<VifValue> {
    if !guarded {
        return stmts;
    }
    match u.env.lookup_one("guard") {
        Some(g) if g.node.kind_sym() == vhdl_vif::kinds::obj() => {
            let cond = ir::e_ref(&g.node);
            vec![VifValue::Node(ir::s_if(cond, stmts, vec![]))]
        }
        _ => {
            msgs.push(Msg::error(
                pos,
                "guarded assignment outside a guarded block",
            ));
            stmts
        }
    }
}

/// Collects the distinct signals read by statement IR (the sensitivity of
/// the equivalent process).
fn signals_in_stmts(stmts: &[VifValue]) -> Vec<VifValue> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    fn walk(
        v: &VifValue,
        seen: &mut std::collections::HashSet<String>,
        out: &mut Vec<VifValue>,
        reading: bool,
    ) {
        match v {
            VifValue::Node(n) => {
                if n.kind_sym() == vhdl_vif::kinds::e_ref() {
                    if let Some(obj) = n.node_field("obj") {
                        if reading && obj.str_field("class") == Some("signal") {
                            let uid = obj.str_field("uid").unwrap_or("?").to_string();
                            if seen.insert(uid) {
                                out.push(VifValue::Node(Rc::clone(n)));
                            }
                        }
                    }
                    return;
                }
                for (fname, fv) in n.fields() {
                    // Assignment targets are written, not read.
                    let child_reading = reading && &**fname != "target";
                    walk(fv, seen, out, child_reading);
                }
            }
            VifValue::List(l) => {
                for v in l.iter() {
                    walk(v, seen, out, reading);
                }
            }
            _ => {}
        }
    }
    for s in stmts {
        walk(s, &mut seen, &mut out, true);
    }
    out
}

/// Evaluates a generic/port association list against a component's
/// formals. Produces `assoc` nodes `{formal, formal_uid, actual?}`.
fn eval_assocs(
    u: &U<'_>,
    assocs: &Value,
    comp: &Rc<VifNode>,
    formals_field: &str,
    msgs: &mut Msgs,
) -> Vec<VifValue> {
    let formals: Vec<Rc<VifNode>> = comp
        .list_field(formals_field)
        .iter()
        .filter_map(|v| v.as_node().cloned())
        .collect();
    let mut out = Vec::new();
    let mut positional = 0usize;
    for a in assocs.expect_list() {
        let parts = a.expect_list();
        let formal_toks = oof::toks_of(&parts[0]);
        let kind = parts[1].expect_str();
        let actual_toks = oof::toks_of(&parts[2]);
        let pos = actual_toks
            .first()
            .or(formal_toks.first())
            .map(|t| t.pos)
            .unwrap_or_default();
        // Find the formal: by name or position.
        let formal = if formal_toks.is_empty() {
            let f = formals.get(positional).cloned();
            positional += 1;
            f
        } else {
            let fname = formal_toks
                .iter()
                .find(|t| t.kind == vhdl_syntax::TokenKind::Id)
                .map(|t| t.text.to_string());
            match fname {
                Some(fname) => formals.iter().find(|f| f.name() == Some(&fname)).cloned(),
                None => None,
            }
        };
        let Some(formal) = formal else {
            msgs.push(Msg::error(pos, "no matching formal for association"));
            continue;
        };
        let fty = crate::decl::obj_ty(&formal).expect("typed formal");
        let mut b = VifNode::build("assoc")
            .str_field("formal", formal.name().unwrap_or("?"))
            .str_field("formal_uid", formal.str_field("uid").unwrap_or("?"));
        if &*kind != "open" {
            let av = u.ev(&actual_toks, Some(&fty));
            *msgs = Msgs::concat(msgs, &av.msgs);
            if let Some(ir) = av.ir {
                b = b.node_field("actual", ir);
            }
        }
        out.push(VifValue::Node(b.done()));
    }
    out
}

// ---------------------------------------------------------------------------
// Compilation units.
// ---------------------------------------------------------------------------

fn install_units(ab: &mut AgBuilder<Value>, g: &Grammar, c: &PrincipalClasses) {
    let c = *c;

    // ----- entity ------------------------------------------------------------
    let pr = p(g, "entity_decl");
    let iface_env = |d: &[Value]| -> (Env, Vec<Rc<VifNode>>, Vec<Rc<VifNode>>, Msgs) {
        let env = d[0].expect_env();
        let ctx = d[1].expect_ctx();
        let u = U {
            env: &env,
            ctx: &ctx,
        };
        let (generics, m1) = oof::resolve_ifaces(&u, &oof::ifaces_of(&d[2]), ObjClass::Constant);
        let (ports, m2) = oof::resolve_ifaces(&u, &oof::ifaces_of(&d[3]), ObjClass::Signal);
        let mut e = env.clone();
        for obj in generics.iter().chain(&ports) {
            if let Some(n) = obj.name() {
                e = e.bind(n, Den::local(Rc::clone(obj)));
            }
        }
        (e, generics, ports, Msgs::concat(&m1, &m2))
    };
    ab.rule(
        pr,
        6,
        c.env,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::attr(4, c.ifaces),
            Dep::attr(5, c.ifaces),
        ],
        move |d| Value::Env(iface_env(d).0),
    );
    ab.rule(
        pr,
        0,
        c.res,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::attr(4, c.ifaces),
            Dep::attr(5, c.ifaces),
            Dep::token(2),
            Dep::attr(6, c.decls),
        ],
        move |d| {
            let (_, generics, ports, msgs) = iface_env(d);
            let name = d[4].expect_tok();
            let node = VifNode::build("entity")
                .name(&*name.text)
                .str_field("uid", oof::uid_at(&name.text, name.pos))
                .list_field(
                    "generics",
                    generics.into_iter().map(VifValue::Node).collect(),
                )
                .list_field("ports", ports.into_iter().map(VifValue::Node).collect())
                .list_field(
                    "decls",
                    d[5].expect_list()
                        .iter()
                        .map(|v| VifValue::Node(v.expect_node()))
                        .collect(),
                )
                .done();
            Value::list(vec![
                Value::list(vec![Value::Node(node)]),
                Value::Msgs(msgs),
            ])
        },
    );
    unit_projections(ab, g, &c, "entity_decl", &[6]);

    // ----- architecture --------------------------------------------------------
    let pr = p(g, "arch_body");
    let arch_env = |d: &[Value]| -> (Env, Option<Rc<VifNode>>, Msgs) {
        let env = d[0].expect_env();
        let ctx = d[1].expect_ctx();
        let toks = oof::toks_of(&d[2]);
        let pos = toks.first().map(|t| t.pos).unwrap_or_default();
        let ename = toks
            .iter()
            .find(|t| t.kind == vhdl_syntax::TokenKind::Id)
            .map(|t| t.text.to_string())
            .unwrap_or_default();
        let Some(entity) = ctx.loader.load_unit("work", &format!("entity.{ename}")) else {
            return (
                env.clone(),
                None,
                Msgs::one(Msg::error(
                    pos,
                    format!("entity `{ename}` not found in library work"),
                )),
            );
        };
        let mut e = oof::reimport_ctx(&env, &ctx, &entity);
        for field in ["generics", "ports", "decls"] {
            for v in entity.list_field(field) {
                if let Some(n) = v.as_node() {
                    e = oof::bind_decl(&e, &ctx, n);
                }
            }
        }
        (e, Some(entity), Msgs::none())
    };
    ab.rule(
        pr,
        6,
        c.env,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::attr(4, c.toks),
        ],
        move |d| Value::Env(arch_env(d).0),
    );
    ab.rule(pr, 8, c.env, vec![Dep::attr(6, c.envo)], |d| d[0].clone());
    ab.rule(
        pr,
        0,
        c.res,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::attr(4, c.toks),
            Dep::token(2),
            Dep::attr(6, c.decls),
            Dep::attr(6, c.cfgs),
            Dep::attr(8, c.concs),
        ],
        move |d| {
            let (_, entity, msgs) = arch_env(d);
            let name = d[3].expect_tok();
            let Some(entity) = entity else {
                return Value::list(vec![Value::empty_list(), Value::Msgs(msgs)]);
            };
            let ename = entity.name().unwrap_or("?").to_string();
            let node = VifNode::build("arch")
                .name(&*name.text)
                .str_field("uid", oof::uid_at(&name.text, name.pos))
                .str_field("entity_name", ename.as_str())
                .field(
                    "entity",
                    VifValue::Foreign(format!("work.entity.{ename}").into()),
                )
                .list_field(
                    "decls",
                    d[4].expect_list()
                        .iter()
                        .map(|v| VifValue::Node(v.expect_node()))
                        .collect(),
                )
                .list_field(
                    "cfgs",
                    d[5].expect_list()
                        .to_vec()
                        .into_iter()
                        .map(to_vif)
                        .collect(),
                )
                .list_field(
                    "concs",
                    d[6].expect_list()
                        .iter()
                        .map(|v| VifValue::Node(v.expect_node()))
                        .collect(),
                )
                .done();
            Value::list(vec![
                Value::list(vec![Value::Node(node)]),
                Value::Msgs(msgs),
            ])
        },
    );
    unit_projections(ab, g, &c, "arch_body", &[6, 8]);

    // ----- packages -------------------------------------------------------------
    let pr = p(g, "pkg_decl");
    ab.rule(
        pr,
        0,
        c.res,
        vec![Dep::token(2), Dep::attr(4, c.decls)],
        |d| {
            let name = d[0].expect_tok();
            let node = VifNode::build("pkg")
                .name(&*name.text)
                .str_field("uid", oof::uid_at(&name.text, name.pos))
                .list_field(
                    "decls",
                    d[1].expect_list()
                        .iter()
                        .map(|v| VifValue::Node(v.expect_node()))
                        .collect(),
                )
                .done();
            Value::list(vec![
                Value::list(vec![Value::Node(node)]),
                Value::Msgs(Msgs::none()),
            ])
        },
    );
    unit_projections(ab, g, &c, "pkg_decl", &[4]);

    let pr = p(g, "pkg_body");
    let body_env = |d: &[Value]| -> (Env, Msgs) {
        let env = d[0].expect_env();
        let ctx = d[1].expect_ctx();
        let name = d[2].expect_tok();
        let Some(spec) = ctx.loader.load_unit("work", &format!("pkg.{}", name.text)) else {
            return (
                env.clone(),
                Msgs::one(Msg::error(
                    name.pos,
                    format!("package `{}` not found for its body", name.text),
                )),
            );
        };
        let mut e = oof::reimport_ctx(&env, &ctx, &spec);
        for v in spec.list_field("decls") {
            if let Some(n) = v.as_node() {
                e = oof::bind_decl(&e, &ctx, n);
            }
        }
        (e, Msgs::none())
    };
    ab.rule(
        pr,
        5,
        c.env,
        vec![Dep::attr(0, c.env), Dep::attr(0, c.ctx), Dep::token(3)],
        move |d| Value::Env(body_env(d).0),
    );
    ab.rule(
        pr,
        0,
        c.res,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::token(3),
            Dep::attr(5, c.decls),
        ],
        move |d| {
            let (_, msgs) = body_env(d);
            let name = d[2].expect_tok();
            let node = VifNode::build("pkgbody")
                .name(&*name.text)
                .str_field("uid", oof::uid_at(&name.text, name.pos))
                .list_field(
                    "decls",
                    d[3].expect_list()
                        .iter()
                        .map(|v| VifValue::Node(v.expect_node()))
                        .collect(),
                )
                .done();
            Value::list(vec![
                Value::list(vec![Value::Node(node)]),
                Value::Msgs(msgs),
            ])
        },
    );
    unit_projections(ab, g, &c, "pkg_body", &[5]);

    // ----- configuration ---------------------------------------------------------
    let pr = p(g, "config_decl");
    ab.rule(
        pr,
        0,
        c.res,
        vec![
            Dep::attr(0, c.env),
            Dep::attr(0, c.ctx),
            Dep::token(2),
            Dep::attr(4, c.toks),
            Dep::attr(6, c.info),
        ],
        |d| {
            with_u!(d, u, {
                let mut msgs = Msgs::none();
                let name = d[2].expect_tok();
                let etoks = oof::toks_of(&d[3]);
                let ename = etoks
                    .iter()
                    .find(|t| t.kind == vhdl_syntax::TokenKind::Id)
                    .map(|t| t.text.to_string())
                    .unwrap_or_default();
                // Configuration processing reads (and traverses) the big
                // foreign structures — the §2.2 footnote-3 cost.
                let entity = u.ctx.loader.load_unit("work", &format!("entity.{ename}"));
                if entity.is_none() {
                    msgs.push(Msg::error(
                        name.pos,
                        format!("entity `{ename}` not found in library work"),
                    ));
                }
                let info = d[4].expect_list();
                let arch_name = info[0].expect_tok().text.to_string();
                let arch = u
                    .ctx
                    .loader
                    .load_unit("work", &format!("arch.{ename}.{arch_name}"));
                if arch.is_none() {
                    msgs.push(Msg::error(
                        name.pos,
                        format!("architecture `{arch_name}` of `{ename}` not found"),
                    ));
                }
                // Touch the architecture's structure (traversal cost).
                if let Some(a) = &arch {
                    let _ = a.reachable_size();
                }
                let bindings: Vec<VifValue> = info[1]
                    .expect_list()
                    .iter()
                    .map(|b| {
                        let parts = b.expect_list();
                        let insts = &parts[0];
                        let comp_toks = oof::toks_of(&parts[1]);
                        let comp_name = comp_toks
                            .iter()
                            .find(|t| t.kind == vhdl_syntax::TokenKind::Id)
                            .map(|t| t.text.to_string())
                            .unwrap_or_default();
                        // Processing a binding reads the bound entity and
                        // architecture into memory and traverses them — the
                        // dominant cost of configuration units (§2.2 fn.3).
                        let binfo = parts[2].expect_list();
                        if binfo.first().map(|v| v.expect_str()).as_deref() == Some("entity") {
                            let bname = oof::toks_of(&binfo[1])
                                .iter()
                                .filter(|t| t.kind == vhdl_syntax::TokenKind::Id)
                                .filter(|t| &*t.text != "work")
                                .next_back()
                                .map(|t| t.text.to_string())
                                .unwrap_or_default();
                            if let Some(be) =
                                u.ctx.loader.load_unit("work", &format!("entity.{bname}"))
                            {
                                let _ = be.reachable_size();
                            }
                            let barch = binfo[2].expect_str();
                            let barch = if barch.is_empty() {
                                u.ctx.loader.latest_architecture(&bname).unwrap_or_default()
                            } else {
                                barch.to_string()
                            };
                            if let Some(ba) = u
                                .ctx
                                .loader
                                .load_unit("work", &format!("arch.{bname}.{barch}"))
                            {
                                let _ = ba.reachable_size();
                            }
                        }
                        VifValue::Node(
                            VifNode::build("cfgbind")
                                .str_field("comp", comp_name.as_str())
                                .field("insts", to_vif(insts.clone()))
                                .field("binding", to_vif(parts[2].clone()))
                                .done(),
                        )
                    })
                    .collect();
                let node = VifNode::build("config")
                    .name(&*name.text)
                    .str_field("uid", oof::uid_at(&name.text, name.pos))
                    .str_field("entity_name", ename.as_str())
                    .str_field("arch_name", arch_name.as_str())
                    .list_field("bindings", bindings)
                    .done();
                Value::list(vec![
                    Value::list(vec![Value::Node(node)]),
                    Value::Msgs(msgs),
                ])
            })
        },
    );
    unit_projections(ab, g, &c, "config_decl", &[]);
}

fn unit_projections(
    ab: &mut AgBuilder<Value>,
    g: &Grammar,
    c: &PrincipalClasses,
    label: &str,
    msg_children: &[usize],
) {
    res_projections(ab, g, c, label, c.units, msg_children);
    // Keep the RES decoders referenced from both rule halves.
    let _ = (res_env, res_decls, res_msgs);
}

/// Converts a structural `Value` into a VIF value for storage.
fn to_vif(v: Value) -> VifValue {
    match v {
        Value::Unit => VifValue::Nil,
        Value::Bool(b) => VifValue::Bool(b),
        Value::Int(i) => VifValue::Int(i),
        Value::Str(s) => VifValue::Str(s),
        Value::Node(n) => VifValue::Node(n),
        Value::Tok(t) => VifValue::Str(t.text.into()),
        Value::List(items) => VifValue::List(Rc::new(items.iter().cloned().map(to_vif).collect())),
        other => VifValue::Str(format!("{other:?}").into()),
    }
}
