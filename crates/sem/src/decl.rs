//! Declaration (denotation) node constructors: objects, subprograms,
//! enumeration literals, physical units, components — the things an
//! environment binds names to. All are VIF nodes (§4.3: the VIF *is* the
//! symbol table).

use std::rc::Rc;

use vhdl_vif::{VifNode, VifValue};

use crate::types::{fresh_uid, Ty};

/// Object classes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ObjClass {
    /// `constant`.
    Constant,
    /// `signal` (including ports).
    Signal,
    /// `variable`.
    Variable,
    /// A `for`-loop index (constant within the loop).
    LoopVar,
}

impl ObjClass {
    /// VIF encoding.
    pub fn encode(self) -> &'static str {
        match self {
            ObjClass::Constant => "constant",
            ObjClass::Signal => "signal",
            ObjClass::Variable => "variable",
            ObjClass::LoopVar => "loopvar",
        }
    }

    /// Decodes the VIF encoding.
    pub fn decode(s: &str) -> Option<ObjClass> {
        Some(match s {
            "constant" => ObjClass::Constant,
            "signal" => ObjClass::Signal,
            "variable" => ObjClass::Variable,
            "loopvar" => ObjClass::LoopVar,
            _ => return None,
        })
    }
}

/// Port/parameter modes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Mode {
    /// `in` (the default).
    #[default]
    In,
    /// `out`.
    Out,
    /// `inout`.
    Inout,
    /// `buffer`.
    Buffer,
}

impl Mode {
    /// VIF encoding.
    pub fn encode(self) -> &'static str {
        match self {
            Mode::In => "in",
            Mode::Out => "out",
            Mode::Inout => "inout",
            Mode::Buffer => "buffer",
        }
    }

    /// Decodes the VIF encoding (unknown strings read as `in`).
    pub fn decode(s: &str) -> Mode {
        match s {
            "out" => Mode::Out,
            "inout" => Mode::Inout,
            "buffer" => Mode::Buffer,
            _ => Mode::In,
        }
    }
}

/// Builds an object denotation (`obj` node).
pub fn mk_obj(
    class: ObjClass,
    name: &str,
    ty: &Ty,
    mode: Mode,
    init: Option<Rc<VifNode>>,
) -> Rc<VifNode> {
    let mut b = VifNode::build("obj")
        .name(name)
        .str_field("uid", fresh_uid(name))
        .str_field("class", class.encode())
        .str_field("mode", mode.encode())
        .node_field("ty", Rc::clone(ty));
    if let Some(init) = init {
        b = b.node_field("init", init);
    }
    b.done()
}

/// Object's class.
pub fn obj_class(obj: &VifNode) -> Option<ObjClass> {
    ObjClass::decode(obj.str_field("class")?)
}

/// Object's type.
pub fn obj_ty(obj: &VifNode) -> Option<Ty> {
    obj.node_field("ty").cloned()
}

/// A subprogram parameter specification used by [`mk_subprog`].
#[derive(Clone, Debug)]
pub struct Param {
    /// Parameter name (lower case).
    pub name: String,
    /// Class (constant for `in` by default, signal/variable as declared).
    pub class: ObjClass,
    /// Mode.
    pub mode: Mode,
    /// Type.
    pub ty: Ty,
    /// Default expression IR, if any.
    pub default: Option<Rc<VifNode>>,
}

impl Param {
    /// An `in`-mode constant parameter — the common case.
    pub fn value(name: &str, ty: &Ty) -> Param {
        Param {
            name: name.to_string(),
            class: ObjClass::Constant,
            mode: Mode::In,
            ty: Rc::clone(ty),
            default: None,
        }
    }
}

/// Builds a subprogram denotation. `builtin` names a runtime-support
/// operation for implicitly declared operators; user subprograms carry a
/// `body` (statement IR list) and `locals` instead, attached later via
/// [`with_body`].
pub fn mk_subprog(
    name: &str,
    params: Vec<Param>,
    ret: Option<&Ty>,
    builtin: Option<&str>,
) -> Rc<VifNode> {
    let mut b = VifNode::build("subprog")
        .name(name)
        .str_field("uid", fresh_uid(name))
        .list_field(
            "params",
            params
                .into_iter()
                .map(|p| {
                    let mut pb = VifNode::build("obj")
                        .name(p.name.as_str())
                        .str_field("uid", fresh_uid(&p.name))
                        .str_field("class", p.class.encode())
                        .str_field("mode", p.mode.encode())
                        .node_field("ty", p.ty);
                    if let Some(d) = p.default {
                        pb = pb.node_field("init", d);
                    }
                    VifValue::Node(pb.done())
                })
                .collect(),
        );
    if let Some(r) = ret {
        b = b.node_field("ret", Rc::clone(r));
    }
    if let Some(code) = builtin {
        b = b.str_field("builtin", code);
    }
    b.done()
}

/// Returns a copy of `subprog` with body statements and local declarations
/// attached (nodes are immutable; this builds a new node with the same
/// uid, which is what "completing" a spec with its body means).
pub fn with_body(
    subprog: &VifNode,
    locals: Vec<VifValue>,
    body: Vec<VifValue>,
    level: i64,
) -> Rc<VifNode> {
    let mut b = VifNode::build("subprog");
    if let Some(n) = subprog.name() {
        b = b.name(n);
    }
    for (f, v) in subprog.fields() {
        b = b.field(*f, v.clone());
    }
    b.list_field("locals", locals)
        .list_field("body", body)
        .int_field("level", level)
        .done()
}

/// Parameter list of a subprogram.
pub fn subprog_params(sp: &VifNode) -> Vec<Rc<VifNode>> {
    sp.list_field("params")
        .iter()
        .filter_map(|v| v.as_node().cloned())
        .collect()
}

/// Return type of a function, `None` for procedures.
pub fn subprog_ret(sp: &VifNode) -> Option<Ty> {
    sp.node_field("ret").cloned()
}

/// Builds an enumeration-literal denotation (overloadable).
pub fn mk_enumlit(name: &str, ty: &Ty, pos: i64) -> Rc<VifNode> {
    VifNode::build("enumlit")
        .name(name)
        .str_field("uid", fresh_uid(name))
        .node_field("ty", Rc::clone(ty))
        .int_field("pos", pos)
        .done()
}

/// Builds a physical-unit denotation (overloadable).
pub fn mk_physunit(name: &str, ty: &Ty, factor: i64) -> Rc<VifNode> {
    VifNode::build("physunit")
        .name(name)
        .str_field("uid", fresh_uid(name))
        .node_field("ty", Rc::clone(ty))
        .int_field("factor", factor)
        .done()
}

/// Builds a binary operator denotation with runtime-support code `code`.
pub fn mk_binop(sym: &str, lhs: &Ty, rhs: &Ty, ret: &Ty, code: &str) -> Rc<VifNode> {
    mk_subprog(
        sym,
        vec![Param::value("l", lhs), Param::value("r", rhs)],
        Some(ret),
        Some(code),
    )
}

/// Builds a unary operator denotation.
pub fn mk_unop(sym: &str, arg: &Ty, ret: &Ty, code: &str) -> Rc<VifNode> {
    mk_subprog(sym, vec![Param::value("x", arg)], Some(ret), Some(code))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{mk_enum, mk_int};

    #[test]
    fn obj_round_trip() {
        let int = mk_int("integer", -10, 10);
        let o = mk_obj(ObjClass::Signal, "clk", &int, Mode::In, None);
        assert_eq!(o.kind(), "obj");
        assert_eq!(o.name(), Some("clk"));
        assert_eq!(obj_class(&o), Some(ObjClass::Signal));
        assert_eq!(
            crate::types::uid(&obj_ty(&o).unwrap()),
            crate::types::uid(&int)
        );
        assert_eq!(Mode::decode(o.str_field("mode").unwrap()), Mode::In);
    }

    #[test]
    fn subprog_shape() {
        let int = mk_int("integer", -10, 10);
        let bit = mk_enum("bit", &["'0'", "'1'"]);
        let f = mk_subprog(
            "f",
            vec![Param::value("a", &int), Param::value("b", &bit)],
            Some(&int),
            None,
        );
        assert_eq!(subprog_params(&f).len(), 2);
        assert!(subprog_ret(&f).is_some());
        assert_eq!(f.str_field("builtin"), None);
        let op = mk_binop("+", &int, &int, &int, "add");
        assert_eq!(op.str_field("builtin"), Some("add"));
        assert_eq!(subprog_params(&op).len(), 2);
        let neg = mk_unop("-", &int, &int, "neg");
        assert_eq!(subprog_params(&neg).len(), 1);
    }

    #[test]
    fn with_body_preserves_uid() {
        let int = mk_int("integer", -10, 10);
        let f = mk_subprog("f", vec![], Some(&int), None);
        let done = with_body(&f, vec![], vec![], 1);
        assert_eq!(done.str_field("uid"), f.str_field("uid"));
        assert_eq!(done.name(), Some("f"));
        assert!(done.field("body").is_some());
        assert_eq!(done.int_field("level"), Some(1));
    }

    #[test]
    fn classes_and_modes_decode() {
        assert_eq!(ObjClass::decode("signal"), Some(ObjClass::Signal));
        assert_eq!(ObjClass::decode("junk"), None);
        assert_eq!(Mode::decode("inout"), Mode::Inout);
        assert_eq!(Mode::decode("junk"), Mode::In);
        assert_eq!(Mode::default(), Mode::In);
    }
}
