//! Package `STD.STANDARD` and implicit operator declarations.
//!
//! VHDL (like Ada) implicitly declares operators for every type
//! declaration; this module provides both the predefined types/operators
//! and the [`implicit_ops`] generator reused for user-defined types.

use std::rc::Rc;

use vhdl_vif::VifNode;

use crate::decl::{mk_binop, mk_enumlit, mk_physunit, mk_unop};
use crate::env::{Den, Env, EnvKind, Visibility};
use crate::types::{
    self, is_array, is_discrete, mk_array_unconstrained, mk_enum, mk_int, mk_phys, mk_real,
    mk_subtype, Dir, Ty,
};

/// Handles to the predefined types.
#[derive(Clone, Debug)]
pub struct Std {
    /// `boolean` — `(false, true)`.
    pub boolean: Ty,
    /// `bit` — `('0', '1')`.
    pub bit: Ty,
    /// `character` (a compact printable subset).
    pub character: Ty,
    /// `severity_level`.
    pub severity_level: Ty,
    /// `integer`.
    pub integer: Ty,
    /// `real`.
    pub real: Ty,
    /// `time` (femtosecond base unit).
    pub time: Ty,
    /// `natural`.
    pub natural: Ty,
    /// `positive`.
    pub positive: Ty,
    /// `string`.
    pub string: Ty,
    /// `bit_vector`.
    pub bit_vector: Ty,
}

/// The result of elaborating `STD.STANDARD`: the environment containing
/// all predefined names, and the type handles.
pub struct Standard {
    /// Environment with every predefined name visible.
    pub env: Env,
    /// The predefined types.
    pub std: Std,
}

/// Builds `STD.STANDARD` into a fresh environment of the given kind.
pub fn standard(kind: EnvKind) -> Standard {
    // Predefined uids must be identical for every analyzer on every
    // thread: serialized VIF embeds them, and batch compilation compares
    // VIF text byte-for-byte across worker counts.
    crate::types::set_uid_scope("std");
    let boolean = mk_enum("boolean", &["false", "true"]);
    let bit = mk_enum("bit", &["'0'", "'1'"]);
    let printable: Vec<String> = (32u8..127).map(|c| format!("'{}'", c as char)).collect();
    let printable_refs: Vec<&str> = printable.iter().map(String::as_str).collect();
    let character = mk_enum("character", &printable_refs);
    let severity_level = mk_enum("severity_level", &["note", "warning", "error", "failure"]);
    let integer = mk_int("integer", i32::MIN as i64, i32::MAX as i64);
    let real = mk_real("real", f64::MIN, f64::MAX);
    let time = mk_phys(
        "time",
        i64::MIN,
        i64::MAX,
        &[
            ("fs", 1),
            ("ps", 1_000),
            ("ns", 1_000_000),
            ("us", 1_000_000_000),
            ("ms", 1_000_000_000_000),
            ("sec", 1_000_000_000_000_000),
        ],
    );
    let natural = mk_subtype(
        "natural",
        &integer,
        Some((0, i32::MAX as i64, Dir::To)),
        None,
    );
    let positive = mk_subtype(
        "positive",
        &integer,
        Some((1, i32::MAX as i64, Dir::To)),
        None,
    );
    let string = mk_array_unconstrained("string", &positive, &character);
    let bit_vector = mk_array_unconstrained("bit_vector", &natural, &bit);

    let mut env = Env::new(kind);
    let bind_ty =
        |env: &Env, ty: &Ty| -> Env { bind_type_with_implicits(env, ty, &boolean, &integer) };

    for ty in [
        &boolean,
        &bit,
        &character,
        &severity_level,
        &integer,
        &real,
        &time,
        &natural,
        &positive,
        &string,
        &bit_vector,
    ] {
        env = bind_ty(&env, ty);
    }

    Standard {
        env,
        std: Std {
            boolean,
            bit,
            character,
            severity_level,
            integer,
            real,
            time,
            natural,
            positive,
            string,
            bit_vector,
        },
    }
}

/// Binds a type declaration and everything it implicitly declares —
/// enumeration literals, physical units, and predefined operators — into
/// an environment. Used both for `STD.STANDARD` and for every user type
/// declaration.
pub fn bind_type_with_implicits(env: &Env, ty: &Ty, boolean: &Ty, integer: &Ty) -> Env {
    let mut e = env.bind(
        ty.name().unwrap_or("anon"),
        Den {
            node: Rc::clone(ty),
            vis: Visibility::Implicit,
        },
    );
    if ty.kind_sym() == vhdl_vif::kinds::ty_enum() {
        for (pos, lit) in ty.list_field("lits").iter().enumerate() {
            let lit = lit.as_str().expect("literals are strings");
            e = e.bind(
                lit,
                Den {
                    node: mk_enumlit(lit, ty, pos as i64),
                    vis: Visibility::Implicit,
                },
            );
        }
    }
    if ty.kind_sym() == vhdl_vif::kinds::ty_phys() {
        for u in ty.list_field("units") {
            let u = u.as_node().expect("units are nodes");
            let name = u.name().expect("units are named");
            e = e.bind(
                name,
                Den {
                    node: mk_physunit(name, ty, u.int_field("factor").unwrap_or(1)),
                    vis: Visibility::Implicit,
                },
            );
        }
    }
    for (sym, op) in implicit_ops(ty, boolean, integer) {
        e = e.bind(
            &sym,
            Den {
                node: op,
                vis: Visibility::Implicit,
            },
        );
    }
    e
}

/// Generates the implicitly declared operators for a type declaration
/// (LRM §7.2 predefined operators, restricted to the subset): equality and
/// ordering for scalars, arithmetic for numeric types, logical operators
/// for `boolean`/`bit` and their arrays, concatenation and relational
/// operators for one-dimensional arrays.
///
/// `boolean` and `integer` are passed in because operator results and
/// physical scaling need them.
pub fn implicit_ops(ty: &Ty, boolean: &Ty, integer: &Ty) -> Vec<(String, Rc<VifNode>)> {
    let mut out = Vec::new();
    let b = types::base_type(ty);
    // Subtypes do not redeclare operators.
    if ty.kind_sym() == vhdl_vif::kinds::ty_subtype() {
        return out;
    }
    let bin =
        |out: &mut Vec<(String, Rc<VifNode>)>, sym: &str, l: &Ty, r: &Ty, ret: &Ty, code: &str| {
            out.push((sym.to_string(), mk_binop(sym, l, r, ret, code)));
        };
    match b.kind() {
        "ty.enum" | "ty.int" | "ty.real" | "ty.phys" => {
            for (sym, code) in [
                ("=", "eq"),
                ("/=", "ne"),
                ("<", "lt"),
                ("<=", "le"),
                (">", "gt"),
                (">=", "ge"),
            ] {
                bin(&mut out, sym, ty, ty, boolean, code);
            }
        }
        _ => {}
    }
    match b.kind() {
        "ty.int" | "ty.real" => {
            for (sym, code) in [("+", "add"), ("-", "sub"), ("*", "mul"), ("/", "div")] {
                bin(&mut out, sym, ty, ty, ty, code);
            }
            out.push(("+".into(), mk_unop("+", ty, ty, "pos")));
            out.push(("-".into(), mk_unop("-", ty, ty, "neg")));
            out.push(("abs".into(), mk_unop("abs", ty, ty, "abs")));
            if b.kind_sym() == vhdl_vif::kinds::ty_int() {
                bin(&mut out, "mod", ty, ty, ty, "mod");
                bin(&mut out, "rem", ty, ty, ty, "rem");
                bin(&mut out, "**", ty, integer, ty, "pow");
            }
        }
        "ty.phys" => {
            bin(&mut out, "+", ty, ty, ty, "add");
            bin(&mut out, "-", ty, ty, ty, "sub");
            out.push(("-".into(), mk_unop("-", ty, ty, "neg")));
            out.push(("abs".into(), mk_unop("abs", ty, ty, "abs")));
            bin(&mut out, "*", ty, integer, ty, "mul");
            bin(&mut out, "*", integer, ty, ty, "mul_rev");
            bin(&mut out, "/", ty, integer, ty, "div");
            bin(&mut out, "/", ty, ty, integer, "div_phys");
        }
        "ty.enum" => {
            // Logical operators for the two-valued logical types.
            let lits = b.list_field("lits");
            let is_logical =
                lits.len() == 2 && (b.name() == Some("boolean") || b.name() == Some("bit"));
            if is_logical {
                for (sym, code) in [
                    ("and", "and"),
                    ("or", "or"),
                    ("nand", "nand"),
                    ("nor", "nor"),
                    ("xor", "xor"),
                ] {
                    bin(&mut out, sym, ty, ty, ty, code);
                }
                out.push(("not".into(), mk_unop("not", ty, ty, "not")));
            }
        }
        "ty.array" => {
            bin(&mut out, "=", ty, ty, boolean, "eq");
            bin(&mut out, "/=", ty, ty, boolean, "ne");
            bin(&mut out, "&", ty, ty, ty, "concat");
            if let Some(elem) = types::elem_type(ty) {
                bin(&mut out, "&", ty, &elem, ty, "concat_re");
                bin(&mut out, "&", &elem, ty, ty, "concat_le");
                let eb = types::base_type(&elem);
                if matches!(eb.name(), Some("bit") | Some("boolean")) {
                    for (sym, code) in [
                        ("and", "and"),
                        ("or", "or"),
                        ("nand", "nand"),
                        ("nor", "nor"),
                        ("xor", "xor"),
                    ] {
                        bin(&mut out, sym, ty, ty, ty, code);
                    }
                    out.push(("not".into(), mk_unop("not", ty, ty, "not")));
                }
                if is_discrete(&elem) && is_array(ty) {
                    for (sym, code) in [("<", "lt"), ("<=", "le"), (">", "gt"), (">=", "ge")] {
                        bin(&mut out, sym, ty, ty, boolean, code);
                    }
                }
            }
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_names_visible() {
        let s = standard(EnvKind::Tree);
        for name in [
            "boolean",
            "bit",
            "integer",
            "real",
            "time",
            "natural",
            "positive",
            "string",
            "bit_vector",
            "character",
            "severity_level",
        ] {
            assert!(s.env.lookup_one(name).is_some(), "missing {name}");
        }
        // Literals.
        assert!(!s.env.lookup("true").is_empty());
        assert!(!s.env.lookup("'0'").is_empty());
        assert!(!s.env.lookup("'a'").is_empty());
        // Units.
        assert!(!s.env.lookup("ns").is_empty());
        // Operators (heavily overloaded).
        assert!(s.env.lookup("+").len() >= 4);
        assert!(s.env.lookup("and").len() >= 3);
        assert!(s.env.lookup("=").len() >= 8);
        assert!(!s.env.lookup("&").is_empty());
    }

    #[test]
    fn char_literal_overloaded_between_bit_and_character() {
        let s = standard(EnvKind::Tree);
        let zeros = s.env.lookup("'0'");
        assert_eq!(zeros.len(), 2, "'0' is a literal of bit and character");
        let tys: Vec<_> = zeros
            .iter()
            .map(|d| d.node.node_field("ty").unwrap().name().unwrap().to_string())
            .collect();
        assert!(tys.contains(&"bit".to_string()));
        assert!(tys.contains(&"character".to_string()));
    }

    #[test]
    fn integer_ops_present() {
        let s = standard(EnvKind::Tree);
        let plus = s.env.lookup("+");
        // integer, real, time (binary) + unary forms.
        let int_plus = plus.iter().any(|d| {
            let p = crate::decl::subprog_params(&d.node);
            p.len() == 2 && types::same_base(&crate::decl::obj_ty(&p[0]).unwrap(), &s.std.integer)
        });
        assert!(int_plus);
        let modop = s.env.lookup("mod");
        assert!(!modop.is_empty());
        let pow = s.env.lookup("**");
        assert!(!pow.is_empty());
    }

    #[test]
    fn subtype_declares_no_new_ops() {
        let s = standard(EnvKind::Tree);
        assert!(implicit_ops(&s.std.natural, &s.std.boolean, &s.std.integer).is_empty());
    }

    #[test]
    fn bit_vector_ops() {
        let s = standard(EnvKind::Tree);
        let ops = implicit_ops(&s.std.bit_vector, &s.std.boolean, &s.std.integer);
        let syms: Vec<&str> = ops.iter().map(|(s, _)| s.as_str()).collect();
        assert!(syms.contains(&"&"));
        assert!(syms.contains(&"and"));
        assert!(syms.contains(&"not"));
        assert!(syms.contains(&"<"));
        assert!(syms.contains(&"="));
    }

    #[test]
    fn time_scaling_ops() {
        let s = standard(EnvKind::Tree);
        let ops = implicit_ops(&s.std.time, &s.std.boolean, &s.std.integer);
        let muls = ops.iter().filter(|(sym, _)| sym == "*").count();
        assert_eq!(muls, 2, "time*integer and integer*time");
    }
}
