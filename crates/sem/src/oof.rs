//! Out-of-line functions of the principal AG.
//!
//! "If a complex expression needs to be used as a semantic rule at many
//! different places in the AG then it makes sense to abstract this into an
//! out-of-line function" (§2.2) — these are those functions: subtype
//! resolution, declaration elaboration, interface lists, use-clause
//! imports. In the paper they were 45% of the compiler, written in C; here
//! they are plain Rust called from rule closures.

use std::rc::Rc;

use vhdl_syntax::{Pos, SrcTok, TokenKind};
use vhdl_vif::{VifNode, VifValue};

use crate::analyze::Actx;
use crate::decl::{self, Mode, ObjClass};
use crate::env::{Den, Env, Visibility};
use crate::expr_ag::{expr_eval, ExprAnswer};
use crate::ir;
use crate::lef::pkg_select;
use crate::msg::{Msg, Msgs};
use crate::standard::implicit_ops;
use crate::types::{self, Ty};
use crate::value::Value;

/// Rule context bundle: environment + analysis context.
pub struct U<'a> {
    /// Current environment.
    pub env: &'a Env,
    /// Analysis context.
    pub ctx: &'a Rc<Actx>,
}

impl U<'_> {
    /// Runs the cascade on a token run (counts the invocation — the
    /// per-expression statistic of §4.1).
    pub fn ev(&self, toks: &[SrcTok], expected: Option<&Ty>) -> ExprAnswer {
        self.ctx.count_expr_eval();
        let loader = Rc::clone(&self.ctx.loader);
        let load = move |lib: &str, name: &str| loader.load_unit(lib, &format!("pkg.{name}"));
        expr_eval(toks, self.env, expected, Some(&load))
    }

    /// Resolves a dotted name (type marks, entity/component names, use
    /// clauses): `id`, `pkg.id`, `lib.pkg.id`, `lib.unit`, with optional
    /// trailing `.all`. Returns the matching denotations.
    ///
    /// # Errors
    ///
    /// A message naming the first unresolvable segment.
    pub fn resolve_name(&self, toks: &[SrcTok]) -> Result<Vec<Rc<VifNode>>, Msg> {
        let pos = toks.first().map(|t| t.pos).unwrap_or_default();
        let mut segs: Vec<&SrcTok> = Vec::new();
        for t in toks {
            match t.kind {
                TokenKind::Id | TokenKind::KwAll | TokenKind::StringLit => segs.push(t),
                TokenKind::Dot => {}
                _ => return Err(Msg::error(t.pos, "not a simple name")),
            }
        }
        if segs.is_empty() {
            return Err(Msg::error(pos, "empty name"));
        }
        let first = &segs[0];
        let mut dens: Vec<Rc<VifNode>> = self
            .env
            .lookup(&first.text)
            .into_iter()
            .map(|d| d.node)
            .collect();
        if dens.is_empty() {
            return Err(Msg::error(
                first.pos,
                format!("`{}` is not declared", first.text),
            ));
        }
        for seg in &segs[1..] {
            let head = &dens[0];
            match head.kind() {
                "library" => {
                    let lib = head.name().unwrap_or("work").to_string();
                    if seg.kind == TokenKind::KwAll {
                        return Err(Msg::error(seg.pos, "`library.all` is not a name"));
                    }
                    // A unit of the library: package, entity, or
                    // configuration.
                    let found = ["pkg", "entity", "config"].iter().find_map(|k| {
                        self.ctx
                            .loader
                            .load_unit(&lib, &format!("{k}.{}", seg.text))
                    });
                    match found {
                        Some(n) => dens = vec![n],
                        None => {
                            return Err(Msg::error(
                                seg.pos,
                                format!("no unit `{}` in library `{lib}`", seg.text),
                            ))
                        }
                    }
                }
                "pkg" => {
                    if seg.kind == TokenKind::KwAll {
                        // Signalled by a sentinel "all" node on top.
                        dens = vec![VifNode::build("all")
                            .node_field("pkg", Rc::clone(head))
                            .done()];
                        continue;
                    }
                    let found = pkg_select(head, &seg.text);
                    if found.is_empty() {
                        return Err(Msg::error(
                            seg.pos,
                            format!(
                                "no `{}` in package `{}`",
                                seg.text,
                                head.name().unwrap_or("?")
                            ),
                        ));
                    }
                    dens = found;
                }
                other => {
                    return Err(Msg::error(
                        seg.pos,
                        format!("cannot select `{}` from a {other}", seg.text),
                    ))
                }
            }
        }
        Ok(dens)
    }
}

/// Position-derived unique id: deterministic so that rules recomputing the
/// same declaration produce identical nodes.
pub fn uid_at(name: &str, pos: Pos) -> String {
    format!("{name}@{}:{}", pos.line, pos.col)
}

/// Builds an object node with a position-derived uid.
pub fn obj_at(
    class: ObjClass,
    name: &str,
    pos: Pos,
    ty: &Ty,
    mode: Mode,
    init: Option<Rc<VifNode>>,
    signal_kind: Option<&str>,
) -> Rc<VifNode> {
    let mut b = VifNode::build("obj")
        .name(name)
        .str_field("uid", uid_at(name, pos))
        .str_field("class", class.encode())
        .str_field("mode", mode.encode())
        .node_field("ty", Rc::clone(ty));
    if let Some(init) = init {
        b = b.node_field("init", init);
    }
    if let Some(k) = signal_kind {
        b = b.str_field("signal_kind", k);
    }
    b.done()
}

/// Decoders for the Value bundles the principal rules pass around.
pub fn toks_of(v: &Value) -> Vec<SrcTok> {
    v.expect_list()
        .iter()
        .map(|t| t.expect_tok().clone())
        .collect()
}

/// Wraps tokens as a Value list.
pub fn vtoks(toks: Vec<SrcTok>) -> Value {
    Value::list(toks.into_iter().map(Value::Tok).collect())
}

/// Output of a declaration-processing function.
pub struct DeclOut {
    /// Environment after the declaration.
    pub envo: Env,
    /// Exported denotation nodes (for packages / DECLS).
    pub decls: Vec<Rc<VifNode>>,
    /// Diagnostics.
    pub msgs: Msgs,
}

impl DeclOut {
    /// Error case: environment unchanged.
    pub fn err(env: &Env, msg: Msg) -> DeclOut {
        DeclOut {
            envo: env.clone(),
            decls: Vec::new(),
            msgs: Msgs::one(msg),
        }
    }

    /// Encodes as the Value bundle `[Env, List(decls), Msgs]` used by the
    /// `RES`-style rules.
    pub fn encode(self) -> Value {
        Value::list(vec![
            Value::Env(self.envo),
            Value::list(self.decls.into_iter().map(Value::Node).collect()),
            Value::Msgs(self.msgs),
        ])
    }
}

/// Binds a denotation node into an environment by its name; types also
/// bind their literals, units, and implicit operators.
pub fn bind_decl(env: &Env, ctx: &Actx, node: &Rc<VifNode>) -> Env {
    let _ = ctx;
    match node.kind() {
        // A type binds only its own name here; its companions (literals,
        // units, implicit operators) travel alongside it in declaration
        // lists, so binding them here would duplicate every overload.
        k if k.starts_with("ty.") => match node.name() {
            Some(n) => env.bind(n, Den::local(Rc::clone(node))),
            None => env.clone(),
        },
        "enumlit" | "physunit" | "subprog" | "obj" | "component" | "alias" | "pkg" | "attrdecl" => {
            match node.name() {
                Some(n) => env.bind(n, Den::local(Rc::clone(node))),
                None => env.clone(),
            }
        }
        "attrspec" => match node.str_field("key") {
            Some(key) => env.bind(key, Den::local(Rc::clone(node))),
            None => env.clone(),
        },
        _ => env.clone(),
    }
}

/// The denotations a type declaration exports besides the type itself:
/// enumeration literals, physical units, implicit operators.
pub fn type_companions(ctx: &Actx, ty: &Ty) -> Vec<Rc<VifNode>> {
    let mut out = Vec::new();
    if ty.kind_sym() == vhdl_vif::kinds::ty_enum() {
        for (pos, lit) in ty.list_field("lits").iter().enumerate() {
            if let Some(l) = lit.as_str() {
                out.push(decl::mk_enumlit(l, ty, pos as i64));
            }
        }
    }
    if ty.kind_sym() == vhdl_vif::kinds::ty_phys() {
        for u in ty.list_field("units") {
            if let Some(un) = u.as_node() {
                out.push(decl::mk_physunit(
                    un.name().unwrap_or("?"),
                    ty,
                    un.int_field("factor").unwrap_or(1),
                ));
            }
        }
    }
    for (_, op) in implicit_ops(ty, &ctx.std.std.boolean, &ctx.std.std.integer) {
        out.push(op);
    }
    out
}

/// Re-imports the context clauses recorded on a unit node (`ctx` field)
/// into an environment — an architecture is analyzed "within" its
/// entity's context.
pub fn reimport_ctx(env: &Env, ctx: &Rc<Actx>, unit: &VifNode) -> Env {
    let mut e = env.clone();
    for entry in unit.list_field("ctx") {
        let Some(parts) = entry.as_list() else {
            continue;
        };
        let kind = parts.first().and_then(|v| v.as_str()).unwrap_or("");
        let segs: Vec<&str> = parts[1..].iter().filter_map(|v| v.as_str()).collect();
        match kind {
            "lib" => {
                if let Some(name) = segs.first() {
                    e = e.bind(
                        name,
                        Den::local(VifNode::build("library").name(*name).done()),
                    );
                }
            }
            "use" => {
                // Rebuild a synthetic token run and run the import.
                let mut toks = Vec::new();
                for (i, seg) in segs.iter().enumerate() {
                    if i > 0 {
                        toks.push(SrcTok::new(TokenKind::Dot, ".", Pos::default()));
                    }
                    let kind = if *seg == "all" {
                        TokenKind::KwAll
                    } else {
                        TokenKind::Id
                    };
                    toks.push(SrcTok::new(kind, *seg, Pos::default()));
                }
                let u = U { env: &e, ctx };
                let (e2, _, _) = use_import(&u, &toks, &e);
                e = e2;
            }
            _ => {}
        }
    }
    e
}

/// Subtype-indication descriptor decoded from its Value bundle
/// `[mark_toks, res_toks, Str(form), constraint_toks]`.
pub struct StiDesc {
    /// Type-mark tokens.
    pub mark: Vec<SrcTok>,
    /// Resolution-function name tokens (empty: none).
    pub res: Vec<SrcTok>,
    /// `plain` / `paren` / `range`.
    pub form: String,
    /// Constraint tokens.
    pub constraint: Vec<SrcTok>,
}

/// Decodes the STI bundle.
pub fn sti_of(v: &Value) -> StiDesc {
    let parts = v.expect_list();
    StiDesc {
        mark: toks_of(&parts[0]),
        res: toks_of(&parts[1]),
        form: parts[2].expect_str().to_string(),
        constraint: toks_of(&parts[3]),
    }
}

/// Resolves a subtype indication to a type, applying constraints and
/// resolution functions.
pub fn resolve_subtype(u: &U<'_>, sti: &StiDesc) -> (Option<Ty>, Msgs) {
    let mut msgs = Msgs::none();
    let pos = sti.mark.first().map(|t| t.pos).unwrap_or_default();
    // In the "name" form, an index constraint rides inside the mark's
    // token run: `bit_vector(7 downto 0)`. Split it off.
    let (mark_toks, paren_constraint) =
        match sti.mark.iter().position(|t| t.kind == TokenKind::LParen) {
            Some(i) => {
                let inner: Vec<SrcTok> = sti.mark[i + 1..sti.mark.len().saturating_sub(1)].to_vec();
                (sti.mark[..i].to_vec(), Some(inner))
            }
            None => (sti.mark.clone(), None),
        };
    let (form, constraint): (&str, Vec<SrcTok>) = match sti.form.as_str() {
        "range" => ("range", sti.constraint.clone()),
        "paren" => ("paren", sti.constraint.clone()),
        _ => match paren_constraint {
            Some(cs) => ("paren", cs),
            None => ("plain", Vec::new()),
        },
    };
    let sti = StiDesc {
        mark: mark_toks,
        res: sti.res.clone(),
        form: form.to_string(),
        constraint,
    };
    let sti = &sti;
    let mark = match u.resolve_name(&sti.mark) {
        Ok(dens) => match dens.first() {
            Some(d) if vhdl_vif::kinds::is_ty(d.kind_sym()) => Rc::clone(&dens[0]),
            _ => {
                msgs.push(Msg::error(pos, "name does not denote a type"));
                return (None, msgs);
            }
        },
        Err(m) => {
            msgs.push(m);
            return (None, msgs);
        }
    };
    // Resolution function.
    let resolution = if sti.res.is_empty() {
        None
    } else {
        match u.resolve_name(&sti.res) {
            Ok(dens) => dens
                .iter()
                .find(|d| d.kind_sym() == vhdl_vif::kinds::subprog())
                .cloned(),
            Err(m) => {
                msgs.push(m);
                None
            }
        }
    };
    let constrained = match sti.form.as_str() {
        "plain" => {
            if resolution.is_some() {
                Some(types::mk_subtype(
                    mark.name().unwrap_or("anon"),
                    &mark,
                    None,
                    resolution.clone(),
                ))
            } else {
                Some(mark.clone())
            }
        }
        "paren" | "range" => {
            let a = u.ev(&sti.constraint, None);
            msgs = Msgs::concat(&msgs, &a.msgs);
            match a.as_range() {
                Some((l, r, dir)) => match (ir::const_int(&l), ir::const_int(&r)) {
                    (Some(lv), Some(rv)) => {
                        if types::is_array(&mark) {
                            Some(types::mk_array_subtype(&mark, lv, rv, dir))
                        } else {
                            // `lo`/`hi` fields hold the left/right bounds
                            // as written; `dir` interprets them.
                            Some(types::mk_subtype(
                                mark.name().unwrap_or("anon"),
                                &mark,
                                Some((lv, rv, dir)),
                                resolution.clone(),
                            ))
                        }
                    }
                    _ => {
                        msgs.push(Msg::error(pos, "constraint bounds must be static"));
                        None
                    }
                },
                None => {
                    msgs.push(Msg::error(pos, "constraint is not a range"));
                    None
                }
            }
        }
        other => {
            msgs.push(Msg::error(pos, format!("bad subtype form `{other}`")));
            None
        }
    };
    (constrained, msgs)
}

/// Interface-element descriptor decoded from
/// `[Str(class), List(id toks), Str(mode), STI, Bool(bus), List(default toks)]`.
pub struct IfaceDesc {
    /// Declared class keyword or empty.
    pub class: String,
    /// Identifier tokens.
    pub ids: Vec<SrcTok>,
    /// Mode keyword or empty.
    pub mode: String,
    /// Subtype indication bundle.
    pub sti: StiDesc,
    /// `bus` present.
    pub bus: bool,
    /// Default-expression tokens (empty: none).
    pub default: Vec<SrcTok>,
}

/// Decodes a list of interface descriptors.
pub fn ifaces_of(v: &Value) -> Vec<IfaceDesc> {
    v.expect_list()
        .iter()
        .map(|e| {
            let parts = e.expect_list();
            IfaceDesc {
                class: parts[0].expect_str().to_string(),
                ids: toks_of(&parts[1]),
                mode: parts[2].expect_str().to_string(),
                sti: sti_of(&parts[3]),
                bus: matches!(parts[4], Value::Bool(true)),
                default: toks_of(&parts[5]),
            }
        })
        .collect()
}

/// Elaborates an interface list into object nodes. `default_class` applies
/// when no class keyword was written (signals for ports, constants for
/// generics and `in` parameters).
pub fn resolve_ifaces(
    u: &U<'_>,
    ifaces: &[IfaceDesc],
    default_class: ObjClass,
) -> (Vec<Rc<VifNode>>, Msgs) {
    let mut out = Vec::new();
    let mut msgs = Msgs::none();
    for f in ifaces {
        let (ty, m) = resolve_subtype(u, &f.sti);
        msgs = Msgs::concat(&msgs, &m);
        let Some(ty) = ty else { continue };
        let class = match f.class.as_str() {
            "constant" => ObjClass::Constant,
            "signal" => ObjClass::Signal,
            "variable" => ObjClass::Variable,
            _ => default_class,
        };
        let mode = Mode::decode(&f.mode);
        let init = if f.default.is_empty() {
            None
        } else {
            let a = u.ev(&f.default, Some(&ty));
            msgs = Msgs::concat(&msgs, &a.msgs);
            a.ir
        };
        for id in &f.ids {
            let obj = obj_at(
                class,
                &id.text,
                id.pos,
                &ty,
                mode,
                init.clone(),
                f.bus.then_some("bus"),
            );
            // Tag interface objects so mode rules (e.g. no writes to `in`
            // ports) can tell them from local declarations.
            let mut b = VifNode::build(obj.kind());
            if let Some(n) = obj.name() {
                b = b.name(n);
            }
            for (fname, v) in obj.fields() {
                b = b.field(*fname, v.clone());
            }
            out.push(b.str_field("origin", "iface").done());
        }
    }
    (out, msgs)
}

/// Builds the subprogram node for a spec descriptor
/// `[Str(kind), Tok(designator), IFACES, List(ret toks)]`, with
/// position-derived uids so recomputation is stable.
pub fn spec_subprog(u: &U<'_>, spec: &Value) -> (Option<Rc<VifNode>>, Msgs) {
    let parts = spec.expect_list();
    let is_func = &*parts[0].expect_str() == "func";
    let desig = parts[1].expect_tok().clone();
    let ifaces = ifaces_of(&parts[2]);
    let ret_toks = toks_of(&parts[3]);
    let default_class = ObjClass::Constant;
    let (params, mut msgs) = resolve_ifaces(u, &ifaces, default_class);
    let ret = if is_func {
        match u.resolve_name(&ret_toks) {
            Ok(dens) if vhdl_vif::kinds::is_ty(dens[0].kind_sym()) => Some(Rc::clone(&dens[0])),
            Ok(_) => {
                msgs.push(Msg::error(desig.pos, "return mark is not a type"));
                return (None, msgs);
            }
            Err(m) => {
                msgs.push(m);
                return (None, msgs);
            }
        }
    } else {
        None
    };
    let mut b = VifNode::build("subprog")
        .name(&*desig.text)
        .str_field("uid", uid_at(&desig.text, desig.pos))
        .list_field("params", params.into_iter().map(VifValue::Node).collect());
    if let Some(r) = &ret {
        b = b.node_field("ret", Rc::clone(r));
    }
    let _ = u;
    (Some(b.done()), msgs)
}

/// Finds a previously declared subprogram spec matching `name` and the
/// given parameter profile (for attaching bodies to specs while keeping
/// the spec's uids — separate compilation needs call sites and bodies to
/// agree).
pub fn find_spec_match(env: &Env, fresh: &VifNode) -> Option<Rc<VifNode>> {
    let name = fresh.name()?;
    let fresh_params = decl::subprog_params(fresh);
    for den in env.lookup(name) {
        if den.node.kind() != "subprog" || den.node.field("body").is_some() {
            continue;
        }
        let params = decl::subprog_params(&den.node);
        if params.len() != fresh_params.len() {
            continue;
        }
        let tys_match = params.iter().zip(&fresh_params).all(|(a, b)| {
            match (decl::obj_ty(a), decl::obj_ty(b)) {
                (Some(ta), Some(tb)) => types::same_base(&ta, &tb),
                _ => false,
            }
        });
        let ret_match = match (decl::subprog_ret(&den.node), decl::subprog_ret(fresh)) {
            (Some(a), Some(b)) => types::same_base(&a, &b),
            (None, None) => true,
            _ => false,
        };
        if tys_match && ret_match {
            return Some(den.node);
        }
    }
    None
}

/// Imports a use-clause name into the environment (§3.4: whole-unit
/// `.all`, or one-by-one to dodge homograph conflicts).
pub fn use_import(u: &U<'_>, toks: &[SrcTok], env: &Env) -> (Env, Vec<Rc<VifNode>>, Msgs) {
    let mut msgs = Msgs::none();
    match u.resolve_name(toks) {
        Ok(dens) => {
            let mut env = env.clone();
            let mut imported = Vec::new();
            for d in &dens {
                if d.kind_sym() == vhdl_vif::kinds::all_() {
                    let pkg = d.node_field("pkg").expect("all wraps a package");
                    for item in pkg.list_field("decls") {
                        if let Some(n) = item.as_node() {
                            env = bind_use(&env, u.ctx, n);
                            imported.push(Rc::clone(n));
                        }
                    }
                } else {
                    env = bind_use(&env, u.ctx, d);
                    imported.push(Rc::clone(d));
                }
            }
            (env, imported, msgs)
        }
        Err(m) => {
            msgs.push(m);
            (env.clone(), Vec::new(), msgs)
        }
    }
}

fn bind_use(env: &Env, ctx: &Actx, node: &Rc<VifNode>) -> Env {
    let env = bind_decl(env, ctx, node);
    // Mark visibility — bind_decl marks Local; re-bind as use-visible is
    // equivalent for our homograph approximation, so keep it simple.
    let _ = Visibility::UseClause;
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvKind;
    use crate::standard::standard;
    use std::cell::RefCell;
    use vhdl_syntax::lexer::lex;

    struct NoLibs;
    impl crate::analyze::UnitLoader for NoLibs {
        fn load_unit(&self, _l: &str, _k: &str) -> Option<Rc<VifNode>> {
            None
        }
        fn latest_architecture(&self, _e: &str) -> Option<String> {
            None
        }
        fn unit_keys(&self, _l: &str) -> Vec<String> {
            Vec::new()
        }
    }

    fn actx() -> Rc<Actx> {
        Rc::new(Actx {
            loader: Rc::new(NoLibs),
            std: Rc::new(standard(EnvKind::Tree)),
            expr_evals: RefCell::new(0),
        })
    }

    #[test]
    fn resolve_plain_subtype() {
        let ctx = actx();
        let env = ctx.std.env.clone();
        let u = U {
            env: &env,
            ctx: &ctx,
        };
        let sti = StiDesc {
            mark: lex("integer").unwrap(),
            res: vec![],
            form: "plain".into(),
            constraint: vec![],
        };
        let (ty, msgs) = resolve_subtype(&u, &sti);
        assert!(!msgs.has_errors(), "{msgs}");
        assert!(types::same_base(&ty.unwrap(), &ctx.std.std.integer));
    }

    #[test]
    fn resolve_range_subtype() {
        let ctx = actx();
        let env = ctx.std.env.clone();
        let u = U {
            env: &env,
            ctx: &ctx,
        };
        let sti = StiDesc {
            mark: lex("integer").unwrap(),
            res: vec![],
            form: "range".into(),
            constraint: lex("0 to 9").unwrap(),
        };
        let (ty, msgs) = resolve_subtype(&u, &sti);
        assert!(!msgs.has_errors(), "{msgs}");
        assert_eq!(
            types::scalar_bounds(&ty.unwrap()),
            Some((0, 9, types::Dir::To))
        );
        assert_eq!(*ctx.expr_evals.borrow(), 1, "one cascade invocation");
    }

    #[test]
    fn resolve_array_constraint() {
        let ctx = actx();
        let env = ctx.std.env.clone();
        let u = U {
            env: &env,
            ctx: &ctx,
        };
        let sti = StiDesc {
            mark: lex("bit_vector").unwrap(),
            res: vec![],
            form: "paren".into(),
            constraint: lex("7 downto 0").unwrap(),
        };
        let (ty, msgs) = resolve_subtype(&u, &sti);
        assert!(!msgs.has_errors(), "{msgs}");
        assert_eq!(
            types::array_bounds(&ty.unwrap()),
            Some((7, 0, types::Dir::Downto))
        );
    }

    #[test]
    fn nonstatic_constraint_rejected() {
        let ctx = actx();
        let env = ctx.std.env.clone();
        let u = U {
            env: &env,
            ctx: &ctx,
        };
        let sti = StiDesc {
            mark: lex("integer").unwrap(),
            res: vec![],
            form: "range".into(),
            constraint: lex("0 to missing_var").unwrap(),
        };
        let (ty, msgs) = resolve_subtype(&u, &sti);
        assert!(ty.is_none());
        assert!(msgs.has_errors());
    }

    #[test]
    fn uid_at_is_deterministic() {
        let p = Pos { line: 3, col: 9 };
        assert_eq!(uid_at("x", p), uid_at("x", p));
        assert_ne!(uid_at("x", p), uid_at("y", p));
    }
}
