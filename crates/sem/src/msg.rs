//! Diagnostic messages — the ubiquitous `MSGS` attribute class of §4.2.
//!
//! Messages are collected applicatively: every production's `MSGS` is the
//! concatenation of its children's (an implicit merge rule), so the list
//! type is a persistent rope that concatenates in O(1).

use std::fmt;
use std::rc::Rc;

use vhdl_syntax::Pos;

/// Severity of a diagnostic.
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord)]
pub enum Severity {
    /// Informational.
    Note,
    /// Suspicious but not fatal.
    Warning,
    /// Analysis error; the unit is not stored.
    Error,
}

/// One diagnostic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Msg {
    /// Severity.
    pub severity: Severity,
    /// Source position.
    pub pos: Pos,
    /// Text.
    pub text: String,
}

impl Msg {
    /// Creates an error message.
    pub fn error(pos: Pos, text: impl Into<String>) -> Msg {
        Msg {
            severity: Severity::Error,
            pos,
            text: text.into(),
        }
    }

    /// Creates a warning.
    pub fn warning(pos: Pos, text: impl Into<String>) -> Msg {
        Msg {
            severity: Severity::Warning,
            pos,
            text: text.into(),
        }
    }
}

impl fmt::Display for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{}: {sev}: {}", self.pos, self.text)
    }
}

/// A persistent message list with O(1) concatenation (a rope).
#[derive(Clone, Debug)]
pub enum Msgs {
    /// No messages — the class's unit element.
    Empty,
    /// One message.
    One(Rc<Msg>),
    /// Concatenation — the class's merge function.
    Cat(Rc<Msgs>, Rc<Msgs>),
}

impl Msgs {
    /// The empty list.
    pub fn none() -> Msgs {
        Msgs::Empty
    }

    /// A single message.
    pub fn one(m: Msg) -> Msgs {
        Msgs::One(Rc::new(m))
    }

    /// Concatenates two lists in O(1) — the `concatMsgs` merge function of
    /// §4.2.
    pub fn concat(a: &Msgs, b: &Msgs) -> Msgs {
        match (a, b) {
            (Msgs::Empty, x) | (x, Msgs::Empty) => x.clone(),
            (a, b) => Msgs::Cat(Rc::new(a.clone()), Rc::new(b.clone())),
        }
    }

    /// Appends a message.
    pub fn push(&mut self, m: Msg) {
        *self = Msgs::concat(self, &Msgs::one(m));
    }

    /// Flattens to a vector, in source order of collection.
    pub fn to_vec(&self) -> Vec<Msg> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect(&self, out: &mut Vec<Msg>) {
        match self {
            Msgs::Empty => {}
            Msgs::One(m) => out.push((**m).clone()),
            Msgs::Cat(a, b) => {
                a.collect(out);
                b.collect(out);
            }
        }
    }

    /// `true` if any message is an error.
    pub fn has_errors(&self) -> bool {
        match self {
            Msgs::Empty => false,
            Msgs::One(m) => m.severity == Severity::Error,
            Msgs::Cat(a, b) => a.has_errors() || b.has_errors(),
        }
    }

    /// `true` if there are no messages at all.
    pub fn is_empty(&self) -> bool {
        matches!(self, Msgs::Empty)
    }
}

impl Default for Msgs {
    fn default() -> Self {
        Msgs::Empty
    }
}

impl fmt::Display for Msgs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for m in self.to_vec() {
            writeln!(f, "{m}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(line: u32) -> Pos {
        Pos { line, col: 1 }
    }

    #[test]
    fn concat_preserves_order() {
        let a = Msgs::one(Msg::error(at(1), "first"));
        let b = Msgs::one(Msg::warning(at(2), "second"));
        let c = Msgs::concat(&a, &b);
        let v = c.to_vec();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].text, "first");
        assert_eq!(v[1].text, "second");
        assert!(c.has_errors());
        assert!(!b.has_errors());
    }

    #[test]
    fn empty_is_unit() {
        let a = Msgs::one(Msg::error(at(1), "x"));
        let l = Msgs::concat(&Msgs::none(), &a);
        let r = Msgs::concat(&a, &Msgs::none());
        assert_eq!(l.to_vec(), r.to_vec());
        assert!(Msgs::none().is_empty());
        assert!(!l.is_empty());
    }

    #[test]
    fn push_and_display() {
        let mut m = Msgs::none();
        m.push(Msg::error(at(3), "bad thing"));
        let shown = m.to_string();
        assert!(shown.contains("3:1: error: bad thing"));
    }
}
