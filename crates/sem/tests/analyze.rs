//! End-to-end semantic analysis: source → principal AG → unit VIF in the
//! work library, exercising the full cascade and separate compilation.

use std::rc::Rc;

use vhdl_sem::analyze::Analyzer;
use vhdl_sem::env::EnvKind;
use vhdl_vif::{Library, LibrarySet};

fn setup() -> (Analyzer, Rc<LibrarySet>) {
    let an = Analyzer::new(EnvKind::Tree);
    let libs = Rc::new(LibrarySet::new(Rc::new(Library::in_memory("work")), vec![]));
    (an, libs)
}

fn compile_ok(
    an: &Analyzer,
    libs: &Rc<LibrarySet>,
    src: &str,
) -> Vec<vhdl_sem::analyze::AnalyzedUnit> {
    let units = an.compile(src, libs).expect("parses");
    for u in &units {
        assert!(!u.msgs.has_errors(), "unit {} failed:\n{}", u.key, u.msgs);
    }
    units
}

#[test]
fn entity_analyzes_and_stores() {
    let (an, libs) = setup();
    let units = compile_ok(
        &an,
        &libs,
        "entity counter is
           generic (width : integer := 8);
           port (clk, reset : in bit; q : out integer);
         end counter;",
    );
    assert_eq!(units.len(), 1);
    assert_eq!(units[0].key, "entity.counter");
    assert!(libs.work().contains("entity.counter"));
    let e = libs.load("work.entity.counter").unwrap();
    assert_eq!(e.list_field("generics").len(), 1);
    assert_eq!(e.list_field("ports").len(), 3);
}

#[test]
fn package_with_types_and_function() {
    let (an, libs) = setup();
    let units = compile_ok(
        &an,
        &libs,
        "package util is
           type state is (idle, run, done);
           subtype small is integer range 0 to 15;
           constant max : small := 15;
           function clamp (x : integer) return integer;
         end util;
         package body util is
           function clamp (x : integer) return integer is
           begin
             if x > max then
               return max;
             end if;
             return x;
           end clamp;
         end util;",
    );
    assert_eq!(units.len(), 2);
    assert_eq!(units[0].key, "pkg.util");
    assert_eq!(units[1].key, "pkgbody.util");
    let pkg = libs.load("work.pkg.util").unwrap();
    // Exports: state type + 3 literals + implicit ops + subtype + constant
    // + function spec.
    assert!(pkg.list_field("decls").len() > 8);
    // Body carries the completed function with statements.
    let body = libs.load("work.pkgbody.util").unwrap();
    let f = body
        .list_field("decls")
        .iter()
        .filter_map(|v| v.as_node())
        .find(|n| n.kind() == "subprog" && n.name() == Some("clamp"))
        .expect("completed clamp");
    assert!(!f.list_field("body").is_empty());
    // Body reuses the spec's uid so call sites stay valid.
    let spec = pkg
        .list_field("decls")
        .iter()
        .filter_map(|v| v.as_node())
        .find(|n| n.kind() == "subprog" && n.name() == Some("clamp"))
        .unwrap();
    assert_eq!(spec.str_field("uid"), f.str_field("uid"));
}

#[test]
fn architecture_with_process() {
    let (an, libs) = setup();
    let units = compile_ok(
        &an,
        &libs,
        "entity counter is
           port (clk : in bit; q : out integer);
         end counter;
         architecture rtl of counter is
           signal count : integer := 0;
         begin
           tick : process (clk)
             variable v : integer;
           begin
             if clk = '1' then
               v := count + 1;
               count <= v after 1 ns;
             end if;
           end process tick;
           q <= count;
         end rtl;",
    );
    assert_eq!(units[1].key, "arch.counter.rtl");
    let arch = libs.load("work.arch.counter.rtl").unwrap();
    let concs = arch.list_field("concs");
    assert_eq!(concs.len(), 2, "process + desugared assignment");
    let proc = concs[0].as_node().unwrap();
    assert_eq!(proc.kind(), "process");
    assert_eq!(proc.name(), Some("tick"));
    assert_eq!(proc.list_field("sens").len(), 1);
    assert_eq!(proc.list_field("decls").len(), 1);
    // Sensitivity list desugars to a trailing wait.
    let body = proc.list_field("body");
    let last = body.last().unwrap().as_node().unwrap();
    assert_eq!(last.kind(), "s.wait");
    // The concurrent q <= count became a process with a final wait-on.
    let csa = concs[1].as_node().unwrap();
    assert_eq!(csa.kind(), "process");
    assert!(!csa.list_field("sens").is_empty());
    // Uses one cascade invocation per maximal expression; several here.
    assert!(units[1].expr_evals >= 4, "{}", units[1].expr_evals);
}

#[test]
fn use_clause_imports_across_units() {
    let (an, libs) = setup();
    compile_ok(
        &an,
        &libs,
        "package p is
           type color is (red, green, blue);
           constant favorite : color := green;
         end p;",
    );
    // Separate compilation: a later file uses the stored package.
    let units = compile_ok(
        &an,
        &libs,
        "use work.p.all;
         entity lamp is
           port (c : in color);
         end lamp;
         architecture a of lamp is
           signal x : color := favorite;
         begin
         end a;",
    );
    assert_eq!(units.len(), 2);
    // Selected-name import too.
    compile_ok(
        &an,
        &libs,
        "use work.p.color;
         entity lamp2 is
           port (c : in color);
         end lamp2;",
    );
}

#[test]
fn structural_instantiation_and_configuration() {
    let (an, libs) = setup();
    compile_ok(
        &an,
        &libs,
        "entity nand2 is
           port (a, b : in bit; y : out bit);
         end nand2;
         architecture fast of nand2 is
         begin
           y <= a nand b;
         end fast;
         architecture slow of nand2 is
         begin
           y <= a nand b after 2 ns;
         end slow;",
    );
    let units = compile_ok(
        &an,
        &libs,
        "entity top is
           port (p, q : in bit; r : out bit);
         end top;
         architecture structural of top is
           component nand2
             port (a, b : in bit; y : out bit);
           end component;
           for u1 : nand2 use entity work.nand2(fast);
         begin
           u1 : nand2 port map (a => p, b => q, y => r);
           u2 : nand2 port map (p, q, r);
         end structural;
         configuration cfg of top is
           for structural
             for u2 : nand2 use entity work.nand2(slow); end for;
           end for;
         end cfg;",
    );
    assert_eq!(units.len(), 3);
    let arch = libs.load("work.arch.top.structural").unwrap();
    assert_eq!(arch.list_field("concs").len(), 2);
    assert_eq!(arch.list_field("cfgs").len(), 1);
    let inst = arch.list_field("concs")[0].as_node().unwrap();
    assert_eq!(inst.kind(), "inst");
    assert_eq!(inst.name(), Some("u1"));
    assert_eq!(inst.list_field("port_map").len(), 3);
    let cfg = libs.load("work.config.cfg").unwrap();
    assert_eq!(cfg.str_field("arch_name"), Some("structural"));
    assert_eq!(cfg.list_field("bindings").len(), 1);
}

#[test]
fn latest_architecture_history() {
    let (an, libs) = setup();
    compile_ok(
        &an,
        &libs,
        "entity e is end;
         architecture a1 of e is begin end a1;
         architecture a2 of e is begin end a2;",
    );
    assert_eq!(libs.work().latest_architecture("e"), Some("a2".to_string()));
}

#[test]
fn semantic_errors_reported_with_positions() {
    let (an, libs) = setup();
    let units = an
        .compile(
            "entity e is end;
             architecture a of e is
               signal s : bit;
             begin
               s <= mystery;
             end a;",
            &libs,
        )
        .unwrap();
    let msgs = units[1].msgs.to_string();
    assert!(units[1].msgs.has_errors());
    assert!(msgs.contains("mystery"), "{msgs}");
    assert!(msgs.contains("5:"), "position missing: {msgs}");
    // Failed units are not stored.
    assert!(!libs.work().contains("arch.e.a"));
}

#[test]
fn type_errors_caught() {
    let (an, libs) = setup();
    let units = an
        .compile(
            "entity e is end;
             architecture a of e is
               signal s : bit;
             begin
               s <= 42;
             end a;",
            &libs,
        )
        .unwrap();
    assert!(units[1].msgs.has_errors(), "{}", units[1].msgs);
}

#[test]
fn physical_type_declaration() {
    let (an, libs) = setup();
    compile_ok(
        &an,
        &libs,
        "package phys is
           type distance is range 0 to 1000000000
             units um; mm = 1000 um; m = 1000 mm; end units;
           constant reach : distance := 2 m;
         end phys;",
    );
    let pkg = libs.load("work.pkg.phys").unwrap();
    let c = pkg
        .list_field("decls")
        .iter()
        .filter_map(|v| v.as_node())
        .find(|n| n.kind() == "obj")
        .unwrap();
    let init = c.node_field("init").unwrap();
    assert_eq!(init.int_field("ival"), Some(2_000_000));
}

#[test]
fn wait_and_case_statements() {
    let (an, libs) = setup();
    compile_ok(
        &an,
        &libs,
        "entity e is end;
         architecture a of e is
           type state is (s0, s1, s2);
           signal st : state := s0;
           signal clk : bit;
         begin
           process
           begin
             wait until clk = '1' for 100 ns;
             case st is
               when s0 => st <= s1;
               when s1 | s2 => st <= s0;
             end case;
             for i in 0 to 3 loop
               wait on clk;
               exit when st = s2;
             end loop;
           end process;
         end a;",
    );
}

#[test]
fn guarded_block() {
    let (an, libs) = setup();
    compile_ok(
        &an,
        &libs,
        "entity e is end;
         architecture a of e is
           signal en, d, q : bit;
         begin
           b : block (en = '1')
           begin
             q <= guarded d after 1 ns;
           end block b;
         end a;",
    );
    let arch = libs.load("work.arch.e.a").unwrap();
    let blk = arch.list_field("concs")[0].as_node().unwrap();
    assert_eq!(blk.kind(), "block");
    assert!(blk.node_field("guard_expr").is_some());
}
