//! Property tests for the semantic substrate: the three environment
//! representations against a reference model, constant folding against
//! `i64` arithmetic, and lexer round-trips.
//!
//! Ported from proptest to the in-repo `ag-harness` framework; the input
//! space and every invariant are unchanged.

use std::rc::Rc;

use ag_harness::{check, check_eq, forall, Config, Source};
use vhdl_sem::env::{Den, Env, EnvKind};
use vhdl_sem::ir;
use vhdl_sem::types;
use vhdl_syntax::lexer::lex;
use vhdl_vif::VifNode;

/// Reference model: ordered binding log.
#[derive(Default)]
struct Model {
    log: Vec<(String, Rc<VifNode>)>,
}

impl Model {
    fn bind(&mut self, name: &str, node: Rc<VifNode>) {
        self.log.push((name.to_string(), node));
    }

    /// The homograph rule, straight from its definition.
    fn lookup(&self, name: &str) -> Vec<Rc<VifNode>> {
        let mut out = Vec::new();
        for (n, node) in self.log.iter().rev() {
            if n != name {
                continue;
            }
            let ovl = matches!(node.kind(), "subprog" | "enumlit" | "physunit");
            if ovl {
                out.push(Rc::clone(node));
            } else {
                if out.is_empty() {
                    out.push(Rc::clone(node));
                }
                break;
            }
        }
        out
    }
}

#[derive(Debug, Clone)]
enum OpKind {
    BindObj(u8),
    BindSubprog(u8),
    Lookup(u8),
    Snapshot,
}

fn op(s: &mut Source) -> OpKind {
    match s.usize_in(0, 3) {
        0 => OpKind::BindObj(s.u64_in(0, 7) as u8),
        1 => OpKind::BindSubprog(s.u64_in(0, 7) as u8),
        2 => OpKind::Lookup(s.u64_in(0, 7) as u8),
        _ => OpKind::Snapshot,
    }
}

/// All three env representations agree with the model under random
/// operation sequences, including snapshots (old versions must keep
/// answering with their old contents).
#[test]
fn env_reprs_match_model() {
    forall!(Config::new("env_reprs_match_model").cases(128), |s| {
        let ops = s.vec(1, 59, op);
        for kind in [EnvKind::List, EnvKind::Tree, EnvKind::MutBaseline] {
            let mut env = Env::new(kind);
            let mut model = Model::default();
            let mut snapshots: Vec<(Env, usize)> = Vec::new();
            for op in &ops {
                match op {
                    OpKind::BindObj(i) => {
                        let name = format!("n{i}");
                        let node = VifNode::build("obj").name(name.as_str()).done();
                        model.bind(&name, Rc::clone(&node));
                        env = env.bind(&name, Den::local(node));
                    }
                    OpKind::BindSubprog(i) => {
                        let name = format!("n{i}");
                        let node = VifNode::build("subprog").name(name.as_str()).done();
                        model.bind(&name, Rc::clone(&node));
                        env = env.bind(&name, Den::local(node));
                    }
                    OpKind::Lookup(i) => {
                        let name = format!("n{i}");
                        let got: Vec<_> = env.lookup(&name).into_iter().map(|d| d.node).collect();
                        let want = model.lookup(&name);
                        check_eq!(got.len(), want.len());
                        for (g, w) in got.iter().zip(&want) {
                            check!(Rc::ptr_eq(g, w));
                        }
                    }
                    OpKind::Snapshot => {
                        snapshots.push((env.clone(), model.log.len()));
                    }
                }
            }
            // Old snapshots still see exactly their old contents.
            for (snap, len) in snapshots {
                let old = Model {
                    log: model.log[..len].to_vec(),
                };
                for i in 0u8..8 {
                    let name = format!("n{i}");
                    let got: Vec<_> = snap.lookup(&name).into_iter().map(|d| d.node).collect();
                    let want = old.lookup(&name);
                    check_eq!(got.len(), want.len(), "snapshot isolation ({:?})", kind);
                }
            }
        }
    });
}

/// Constant folding of builtin calls equals checked i64 arithmetic.
#[test]
fn const_folding_matches_i64() {
    forall!(Config::new("const_folding_matches_i64").cases(128), |s| {
        let a = s.i64_in(-10_000, 9_999);
        let b = s.i64_in(-10_000, 9_999);
        let int = types::mk_int("integer", i32::MIN as i64, i32::MAX as i64);
        for (sym, code) in [
            ("+", "add"),
            ("-", "sub"),
            ("*", "mul"),
            ("/", "div"),
            ("mod", "mod"),
            ("rem", "rem"),
        ] {
            let op = vhdl_sem::decl::mk_binop(sym, &int, &int, &int, code);
            let call = ir::e_call(&op, vec![ir::e_int(a, &int), ir::e_int(b, &int)], &int);
            let want = match code {
                "add" => a.checked_add(b),
                "sub" => a.checked_sub(b),
                "mul" => a.checked_mul(b),
                "div" => a.checked_div(b),
                "mod" => a.checked_rem_euclid(b),
                _ => a.checked_rem(b),
            };
            check_eq!(ir::const_int(&call), want, "{} {} {}", a, sym, b);
        }
    });
}

/// The lexer round-trips identifier/number/punctuation streams:
/// re-lexing the joined token text yields the same kinds and texts.
#[test]
fn lexer_round_trip() {
    forall!(Config::new("lexer_round_trip").cases(128), |s| {
        let words = s.vec(1, 19, |s| match s.usize_in(0, 5) {
            0 => s.string_from(
                "abcdefghijklmnopqrstuvwxyz",
                "abcdefghijklmnopqrstuvwxyz0123456789_",
                6,
            ),
            1 => s.u64_in(0, 99_999).to_string(),
            2 => "<=".to_string(),
            3 => ":=".to_string(),
            4 => "(".to_string(),
            _ => (*s.pick(&[")", "+", "=>"])).to_string(),
        });
        let src = words.join(" ");
        let t1 = lex(&src).unwrap();
        let rendered: Vec<String> = t1.iter().map(|t| t.text.to_string()).collect();
        let t2 = lex(&rendered.join(" ")).unwrap();
        check_eq!(t1.len(), t2.len());
        for (a, b) in t1.iter().zip(&t2) {
            check_eq!(a.kind, b.kind);
            check_eq!(&a.text, &b.text);
        }
    });
}

/// Every expression the generator can produce analyzes without
/// internal panics (errors are fine; crashes are not).
#[test]
fn expr_eval_total() {
    forall!(Config::new("expr_eval_total").cases(128), |s| {
        let n1 = s.i64_in(-50, 49);
        let n2 = s.i64_in(1, 49);
        let pick = s.usize_in(0, 5);
        let sem = vhdl_sem::standard::standard(EnvKind::Tree);
        let srcs = [
            format!("{n1} + {n2}"),
            format!("{n1} * ({n2} - 3) mod {n2}"),
            format!("{n1} < {n2} and true"),
            format!("({n1} + {n2}) ** 2"),
            format!("{n1} / {n2} + abs {n1}"),
            format!("not ({n1} = {n2})"),
        ];
        let toks = lex(&srcs[pick]).unwrap();
        let _ = vhdl_sem::expr_ag::expr_eval(&toks, &sem.env, None, None);
    });
}
