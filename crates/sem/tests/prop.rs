//! Property tests for the semantic substrate: the three environment
//! representations against a reference model, constant folding against
//! `i64` arithmetic, and lexer round-trips.

use std::rc::Rc;

use proptest::prelude::*;
use vhdl_sem::env::{Den, Env, EnvKind};
use vhdl_sem::ir;
use vhdl_sem::types;
use vhdl_syntax::lexer::lex;
use vhdl_vif::VifNode;

/// Reference model: ordered binding log.
#[derive(Default)]
struct Model {
    log: Vec<(String, Rc<VifNode>)>,
}

impl Model {
    fn bind(&mut self, name: &str, node: Rc<VifNode>) {
        self.log.push((name.to_string(), node));
    }

    /// The homograph rule, straight from its definition.
    fn lookup(&self, name: &str) -> Vec<Rc<VifNode>> {
        let mut out = Vec::new();
        for (n, node) in self.log.iter().rev() {
            if n != name {
                continue;
            }
            let ovl = matches!(node.kind(), "subprog" | "enumlit" | "physunit");
            if ovl {
                out.push(Rc::clone(node));
            } else {
                if out.is_empty() {
                    out.push(Rc::clone(node));
                }
                break;
            }
        }
        out
    }
}

#[derive(Debug, Clone)]
enum OpKind {
    BindObj(u8),
    BindSubprog(u8),
    Lookup(u8),
    Snapshot,
}

fn op_strategy() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        (0u8..8).prop_map(OpKind::BindObj),
        (0u8..8).prop_map(OpKind::BindSubprog),
        (0u8..8).prop_map(OpKind::Lookup),
        Just(OpKind::Snapshot),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// All three env representations agree with the model under random
    /// operation sequences, including snapshots (old versions must keep
    /// answering with their old contents).
    #[test]
    fn env_reprs_match_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        for kind in [EnvKind::List, EnvKind::Tree, EnvKind::MutBaseline] {
            let mut env = Env::new(kind);
            let mut model = Model::default();
            let mut snapshots: Vec<(Env, usize)> = Vec::new();
            for op in &ops {
                match op {
                    OpKind::BindObj(i) => {
                        let name = format!("n{i}");
                        let node = VifNode::build("obj").name(name.as_str()).done();
                        model.bind(&name, Rc::clone(&node));
                        env = env.bind(&name, Den::local(node));
                    }
                    OpKind::BindSubprog(i) => {
                        let name = format!("n{i}");
                        let node = VifNode::build("subprog").name(name.as_str()).done();
                        model.bind(&name, Rc::clone(&node));
                        env = env.bind(&name, Den::local(node));
                    }
                    OpKind::Lookup(i) => {
                        let name = format!("n{i}");
                        let got: Vec<_> = env.lookup(&name).into_iter().map(|d| d.node).collect();
                        let want = model.lookup(&name);
                        prop_assert_eq!(got.len(), want.len());
                        for (g, w) in got.iter().zip(&want) {
                            prop_assert!(Rc::ptr_eq(g, w));
                        }
                    }
                    OpKind::Snapshot => {
                        snapshots.push((env.clone(), model.log.len()));
                    }
                }
            }
            // Old snapshots still see exactly their old contents.
            for (snap, len) in snapshots {
                let old = Model { log: model.log[..len].to_vec() };
                for i in 0u8..8 {
                    let name = format!("n{i}");
                    let got: Vec<_> = snap.lookup(&name).into_iter().map(|d| d.node).collect();
                    let want = old.lookup(&name);
                    prop_assert_eq!(got.len(), want.len(), "snapshot isolation ({:?})", kind);
                }
            }
        }
    }

    /// Constant folding of builtin calls equals checked i64 arithmetic.
    #[test]
    fn const_folding_matches_i64(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        let int = types::mk_int("integer", i32::MIN as i64, i32::MAX as i64);
        for (sym, code) in [("+", "add"), ("-", "sub"), ("*", "mul"), ("/", "div"),
                            ("mod", "mod"), ("rem", "rem")] {
            let op = vhdl_sem::decl::mk_binop(sym, &int, &int, &int, code);
            let call = ir::e_call(&op, vec![ir::e_int(a, &int), ir::e_int(b, &int)], &int);
            let want = match code {
                "add" => a.checked_add(b),
                "sub" => a.checked_sub(b),
                "mul" => a.checked_mul(b),
                "div" => a.checked_div(b),
                "mod" => a.checked_rem_euclid(b),
                _ => a.checked_rem(b),
            };
            prop_assert_eq!(ir::const_int(&call), want, "{} {} {}", a, sym, b);
        }
    }

    /// The lexer round-trips identifier/number/punctuation streams:
    /// re-lexing the joined token text yields the same kinds and texts.
    #[test]
    fn lexer_round_trip(words in proptest::collection::vec(
        prop_oneof![
            "[a-z][a-z0-9_]{0,6}".prop_map(|s| s),
            (0u32..100000).prop_map(|n| n.to_string()),
            Just("<=".to_string()), Just(":=".to_string()), Just("(".to_string()),
            Just(")".to_string()), Just("+".to_string()), Just("=>".to_string()),
        ], 1..20)) {
        let src = words.join(" ");
        let t1 = lex(&src).unwrap();
        let rendered: Vec<String> = t1.iter().map(|t| t.text.to_string()).collect();
        let t2 = lex(&rendered.join(" ")).unwrap();
        prop_assert_eq!(t1.len(), t2.len());
        for (a, b) in t1.iter().zip(&t2) {
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(&a.text, &b.text);
        }
    }

    /// Every expression the generator can produce analyzes without
    /// internal panics (errors are fine; crashes are not).
    #[test]
    fn expr_eval_total(n1 in -50i64..50, n2 in 1i64..50, pick in 0usize..6) {
        let s = vhdl_sem::standard::standard(EnvKind::Tree);
        let srcs = [
            format!("{n1} + {n2}"),
            format!("{n1} * ({n2} - 3) mod {n2}"),
            format!("{n1} < {n2} and true"),
            format!("({n1} + {n2}) ** 2"),
            format!("{n1} / {n2} + abs {n1}"),
            format!("not ({n1} = {n2})"),
        ];
        let toks = lex(&srcs[pick]).unwrap();
        let _ = vhdl_sem::expr_ag::expr_eval(&toks, &s.env, None, None);
    }
}
