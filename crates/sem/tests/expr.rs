//! End-to-end tests of the cascaded expression evaluation (§4.1):
//! source text → lexer → LEF (resolved tokens) → expression AG → typed IR.

use std::rc::Rc;

use vhdl_sem::decl::{mk_obj, mk_subprog, Mode, ObjClass, Param};
use vhdl_sem::env::{Den, Env, EnvKind};
use vhdl_sem::expr_ag::{expr_eval, ExprAnswer};
use vhdl_sem::ir::const_int;
use vhdl_sem::standard::{standard, Standard};
use vhdl_sem::types::{self, Dir};
use vhdl_syntax::lexer::lex;

fn eval(src: &str, env: &Env, expected: Option<&types::Ty>) -> ExprAnswer {
    let toks = lex(src).unwrap();
    expr_eval(&toks, env, expected, None)
}

fn ok(src: &str, env: &Env, expected: Option<&types::Ty>) -> ExprAnswer {
    let a = eval(src, env, expected);
    assert!(!a.msgs.has_errors(), "`{src}` failed:\n{}", a.msgs);
    assert!(a.ir.is_some());
    a
}

fn fail(src: &str, env: &Env, expected: Option<&types::Ty>) -> String {
    let a = eval(src, env, expected);
    assert!(a.msgs.has_errors(), "`{src}` unexpectedly succeeded");
    a.msgs.to_string()
}

fn std_env() -> Standard {
    standard(EnvKind::Tree)
}

#[test]
fn integer_arithmetic_folds() {
    let s = std_env();
    let a = ok("1 + 2 * 3", &s.env, Some(&s.std.integer));
    assert_eq!(const_int(a.ir.as_ref().unwrap()), Some(7));
    let a = ok("(1 + 2) * 3", &s.env, Some(&s.std.integer));
    assert_eq!(const_int(a.ir.as_ref().unwrap()), Some(9));
    let a = ok("2 ** 10 mod 100", &s.env, Some(&s.std.integer));
    assert_eq!(const_int(a.ir.as_ref().unwrap()), Some(24));
    let a = ok("abs (0 - 5)", &s.env, Some(&s.std.integer));
    assert_eq!(const_int(a.ir.as_ref().unwrap()), Some(5));
}

#[test]
fn unary_sign_covers_whole_term() {
    let s = std_env();
    // Per the LRM, -a*b is -(a*b).
    let a = ok("- 2 * 3", &s.env, Some(&s.std.integer));
    assert_eq!(const_int(a.ir.as_ref().unwrap()), Some(-6));
}

#[test]
fn boolean_and_relations() {
    let s = std_env();
    let a = ok("1 < 2 and true", &s.env, Some(&s.std.boolean));
    assert_eq!(const_int(a.ir.as_ref().unwrap()), Some(1));
    let a = ok("not (1 = 2)", &s.env, Some(&s.std.boolean));
    assert_eq!(const_int(a.ir.as_ref().unwrap()), Some(1));
}

#[test]
fn physical_time_literals() {
    let s = std_env();
    let a = ok("10 ns + 500 ps", &s.env, Some(&s.std.time));
    // femtoseconds base: 10e6 + 500e3.
    assert_eq!(const_int(a.ir.as_ref().unwrap()), Some(10_500_000));
    let a = ok("2 * 5 ns", &s.env, Some(&s.std.time));
    assert_eq!(const_int(a.ir.as_ref().unwrap()), Some(10_000_000));
}

/// The paper's running example: the same text `X(Y)` elaborates four
/// different ways depending on what `X` denotes.
#[test]
fn x_of_y_four_ways() {
    let s = std_env();
    let int = &s.std.integer;
    let bv = types::mk_array_subtype(&s.std.bit_vector, 7, 0, Dir::Downto);
    let f = mk_subprog("x", vec![Param::value("a", int)], Some(int), None);
    let arr = mk_obj(ObjClass::Variable, "x", &bv, Mode::In, None);
    let y = mk_obj(ObjClass::Variable, "y", int, Mode::In, None);

    // 1. subprogram call
    let env = s
        .env
        .bind("x", Den::local(Rc::clone(&f)))
        .bind("y", Den::local(Rc::clone(&y)));
    let a = ok("x(y)", &env, Some(int));
    assert_eq!(a.ir.as_ref().unwrap().kind(), "e.call");

    // 2. array indexing
    let env = s
        .env
        .bind("x", Den::local(Rc::clone(&arr)))
        .bind("y", Den::local(Rc::clone(&y)));
    let a = ok("x(y)", &env, Some(&s.std.bit));
    assert_eq!(a.ir.as_ref().unwrap().kind(), "e.index");

    // 3. slice by range
    let a = ok("x(3 downto 0)", &env, None);
    assert_eq!(a.ir.as_ref().unwrap().kind(), "e.slice");

    // 4. type conversion
    let yv = mk_obj(ObjClass::Variable, "y", int, Mode::In, None);
    let env = s.env.bind("y", Den::local(yv));
    let a = ok("integer(y)", &env, Some(int));
    assert_eq!(a.ir.as_ref().unwrap().kind(), "e.conv");
}

#[test]
fn enum_literals_resolve_by_context() {
    let s = std_env();
    let a = ok("'0'", &s.env, Some(&s.std.bit));
    assert!(types::same_base(&a.ty().unwrap(), &s.std.bit));
    let a = ok("'0'", &s.env, Some(&s.std.character));
    assert!(types::same_base(&a.ty().unwrap(), &s.std.character));
    // Without context it is ambiguous.
    let msg = fail("'0'", &s.env, None);
    assert!(msg.contains("ambiguous"), "{msg}");
}

#[test]
fn overloaded_functions_picked_by_expected_type() {
    let s = std_env();
    let int = &s.std.integer;
    let f_int = mk_subprog("f", vec![Param::value("a", int)], Some(int), None);
    let f_bool = mk_subprog(
        "f",
        vec![Param::value("a", int)],
        Some(&s.std.boolean),
        None,
    );
    let env = s
        .env
        .bind("f", Den::local(f_int))
        .bind("f", Den::local(f_bool));
    let a = ok("f(1)", &env, Some(int));
    assert!(types::same_base(&a.ty().unwrap(), int));
    let a = ok("f(1)", &env, Some(&s.std.boolean));
    assert!(types::same_base(&a.ty().unwrap(), &s.std.boolean));
    let msg = fail("f(1)", &env, None);
    assert!(msg.contains("ambiguous"), "{msg}");
}

#[test]
fn named_association_and_defaults() {
    let s = std_env();
    let int = &s.std.integer;
    let f = mk_subprog(
        "f",
        vec![
            Param::value("a", int),
            Param {
                default: Some(vhdl_sem::ir::e_int(40, int)),
                ..Param::value("b", int)
            },
        ],
        Some(int),
        None,
    );
    let env = s.env.bind("f", Den::local(f));
    let a = ok("f(b => 2, a => 1)", &env, Some(int));
    let call = a.ir.unwrap();
    let args = call.list_field("args");
    assert_eq!(args.len(), 2);
    assert_eq!(const_int(args[0].as_node().unwrap()), Some(1));
    assert_eq!(const_int(args[1].as_node().unwrap()), Some(2));
    // Default fills b.
    let a = ok("f(7)", &env, Some(int));
    let args2 = a.ir.unwrap();
    assert_eq!(
        const_int(args2.list_field("args")[1].as_node().unwrap()),
        Some(40)
    );
}

#[test]
fn string_and_bitstring_literals() {
    let s = std_env();
    let bv8 = types::mk_array_subtype(&s.std.bit_vector, 7, 0, Dir::Downto);
    let a = ok("\"01010101\"", &s.env, Some(&bv8));
    let ir = a.ir.unwrap();
    assert_eq!(ir.kind(), "e.const");
    assert_eq!(ir.list_field("aval").len(), 8);
    let a = ok("x\"a5\"", &s.env, Some(&bv8));
    let bits: Vec<i64> =
        a.ir.unwrap()
            .list_field("aval")
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
    assert_eq!(bits, vec![1, 0, 1, 0, 0, 1, 0, 1]);
    let msg = fail("\"012\"", &s.env, Some(&bv8));
    assert!(msg.contains("not a literal"), "{msg}");
}

#[test]
fn aggregates() {
    let s = std_env();
    let bv4 = types::mk_array_subtype(&s.std.bit_vector, 3, 0, Dir::Downto);
    let a = ok("(others => '0')", &s.env, Some(&bv4));
    let ir = a.ir.unwrap();
    assert_eq!(ir.kind(), "e.agg");
    assert!(ir.node_field("others").is_some());
    let a = ok("('1', '0', '1', '0')", &s.env, Some(&bv4));
    assert_eq!(a.ir.unwrap().list_field("elems").len(), 4);
    let a = ok("(0 => '1', 3 => '1', others => '0')", &s.env, Some(&bv4));
    assert_eq!(a.ir.unwrap().list_field("named").len(), 2);
    let a = ok("(3 downto 2 => '1', others => '0')", &s.env, Some(&bv4));
    assert_eq!(a.ir.unwrap().list_field("named").len(), 1);
}

#[test]
fn record_aggregate_and_field_select() {
    let s = std_env();
    let int = &s.std.integer;
    let pair = types::mk_record("pair", &[("x", Rc::clone(int)), ("y", Rc::clone(int))]);
    let p = mk_obj(ObjClass::Variable, "p", &pair, Mode::In, None);
    let env = s.env.bind("p", Den::local(p));
    let a = ok("p.x + p.y", &env, Some(int));
    assert_eq!(a.ir.as_ref().unwrap().kind(), "e.call");
    let a = ok("(x => 1, y => 2)", &env, Some(&pair));
    assert_eq!(a.ir.unwrap().list_field("elems").len(), 2);
    let msg = fail("p.z", &env, Some(int));
    assert!(msg.contains("no field `z`"), "{msg}");
}

#[test]
fn attributes_on_arrays_and_types() {
    let s = std_env();
    let bv8 = types::mk_array_subtype(&s.std.bit_vector, 7, 0, Dir::Downto);
    let v = mk_obj(ObjClass::Signal, "v", &bv8, Mode::In, None);
    let env = s.env.bind("v", Den::local(v));
    let a = ok("v'length", &env, Some(&s.std.integer));
    assert_eq!(const_int(a.ir.as_ref().unwrap()), Some(8));
    let a = ok("v'left", &env, Some(&s.std.integer));
    assert_eq!(const_int(a.ir.as_ref().unwrap()), Some(7));
    let a = ok("v'low", &env, Some(&s.std.integer));
    assert_eq!(const_int(a.ir.as_ref().unwrap()), Some(0));
    let a = ok("integer'high", &env, Some(&s.std.integer));
    assert_eq!(const_int(a.ir.as_ref().unwrap()), Some(i32::MAX as i64));
    // Slice by 'range.
    let a = ok("v(v'range)", &env, None);
    assert_eq!(a.ir.as_ref().unwrap().kind(), "e.slice");
}

#[test]
fn signal_attributes() {
    let s = std_env();
    let clk = mk_obj(ObjClass::Signal, "clk", &s.std.bit, Mode::In, None);
    let env = s.env.bind("clk", Den::local(clk));
    let a = ok("clk'event and clk = '1'", &env, Some(&s.std.boolean));
    assert!(a.ir.is_some());
    // 'event on a variable is an error.
    let v = mk_obj(ObjClass::Variable, "v", &s.std.bit, Mode::In, None);
    let env = s.env.bind("v", Den::local(v));
    let msg = fail("v'event", &env, Some(&s.std.boolean));
    assert!(msg.contains("requires a signal"), "{msg}");
}

/// §3.2/§4.1: a user-defined attribute hides the predefined one.
#[test]
fn user_defined_attribute_takes_precedence() {
    let s = std_env();
    let bv4 = types::mk_array_subtype(&s.std.bit_vector, 3, 0, Dir::Downto);
    let t = mk_obj(ObjClass::Signal, "t", &bv4, Mode::In, None);
    let uid = t.str_field("uid").unwrap().to_string();
    // attribute reverse_range of t : signal is 42 (integer-valued!).
    let spec = vhdl_vif::VifNode::build("attrspec")
        .node_field("ty", Rc::clone(&s.std.integer))
        .node_field("value", vhdl_sem::ir::e_int(42, &s.std.integer))
        .done();
    let env = s
        .env
        .bind("t", Den::local(Rc::clone(&t)))
        .bind(&format!("attr${uid}$reverse_range"), Den::local(spec));
    let a = ok("t'reverse_range", &env, Some(&s.std.integer));
    assert_eq!(const_int(a.ir.as_ref().unwrap()), Some(42));
    // Without the spec, 'reverse_range is the predefined range attribute.
    let env2 = s.env.bind("t", Den::local(Rc::clone(&t)));
    let a = eval("t'reverse_range", &env2, None);
    assert!(a.as_range().is_some());
}

#[test]
fn ranges_for_iteration() {
    let s = std_env();
    let a = ok("0 to 7", &s.env, None);
    let (l, r, dir) = a.as_range().unwrap();
    assert_eq!(const_int(&l), Some(0));
    assert_eq!(const_int(&r), Some(7));
    assert_eq!(dir, Dir::To);
    let a = ok("7 downto 0", &s.env, None);
    assert_eq!(a.as_range().unwrap().2, Dir::Downto);
}

#[test]
fn qualified_expressions() {
    let s = std_env();
    let a = ok("bit'('1')", &s.env, None);
    assert!(types::same_base(&a.ty().unwrap(), &s.std.bit));
    assert_eq!(const_int(a.ir.as_ref().unwrap()), Some(1));
}

#[test]
fn procedure_call_mode() {
    let s = std_env();
    let int = &s.std.integer;
    let p0 = mk_subprog("notify", vec![], None, None);
    let p1 = mk_subprog("emit", vec![Param::value("x", int)], None, None);
    let env = s
        .env
        .bind("notify", Den::local(p0))
        .bind("emit", Den::local(p1));
    let void = types::void_marker();
    let a = ok("notify", &env, Some(&void));
    assert_eq!(a.ir.as_ref().unwrap().kind(), "e.call");
    let a = ok("emit(3)", &env, Some(&void));
    assert_eq!(a.ir.as_ref().unwrap().kind(), "e.call");
    // A function where a procedure is needed fails.
    let f = mk_subprog("calc", vec![], Some(int), None);
    let env = s.env.bind("calc", Den::local(f));
    fail("calc", &env, Some(&void));
}

#[test]
fn concatenation() {
    let s = std_env();
    let bv = &s.std.bit_vector;
    let v = mk_obj(ObjClass::Variable, "v", bv, Mode::In, None);
    let env = s.env.bind("v", Den::local(v));
    let a = ok("v & v", &env, Some(bv));
    assert_eq!(a.ir.as_ref().unwrap().kind(), "e.call");
    let a = ok("v & '1'", &env, Some(bv));
    assert!(a.ir.is_some());
}

#[test]
fn error_reporting_quality() {
    let s = std_env();
    let msg = fail("1 + true", &s.env, Some(&s.std.integer));
    assert!(msg.contains("no matching `+`"), "{msg}");
    let msg = fail("undeclared_thing + 1", &s.env, None);
    assert!(msg.contains("not declared"), "{msg}");
    let msg = fail("1 +", &s.env, None);
    assert!(msg.contains("cannot parse expression"), "{msg}");
}

#[test]
fn type_mismatch_against_context() {
    let s = std_env();
    let msg = fail("1 + 2", &s.env, Some(&s.std.boolean));
    assert!(
        msg.contains("no matching") || msg.contains("expected"),
        "{msg}"
    );
}
