//! Elaboration and code generation.
//!
//! Turns analyzed VIF units into programs for the simulation kernel:
//!
//! - [`elab`] — hierarchy elaboration with the §3.3 binding precedence
//!   (configuration unit → configuration specification → default rules,
//!   including the latest-compiled-architecture history rule);
//! - [`lower`] — typed IR → kernel instructions (static links, waveform
//!   scheduling, wait-until loops, aggregate expansion);
//! - [`c_emit`] — the equivalent C source, as the paper's compiler
//!   emitted (counted by the Figure 2 experiment).

pub mod c_emit;
pub mod elab;
pub mod lower;

pub use c_emit::emit_c;
pub use elab::{elaborate, elaborate_config, ElabError};
pub use lower::{cfg_stats, CfgStats, CgError, LowerCtx, Storage};
