//! Elaboration: turning analyzed units into a kernel [`Program`].
//!
//! Walks the design hierarchy from a top entity/architecture (or a
//! configuration unit), resolving component bindings in the §3.3
//! precedence order — explicit configuration unit, configuration
//! specification in the architecture, then the default rules, including
//! the *latest compiled architecture* drawn from the library usage
//! history.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use sim_kernel::{Insn, Program, SigId, Val};
use vhdl_sem::analyze::UnitLoader;
use vhdl_vif::{LibrarySet, VifNode, VifValue};

use crate::lower::{default_value, static_value, CgError, FnLower, LowerCtx, Storage};

/// Elaboration errors.
#[derive(Debug)]
pub enum ElabError {
    /// A unit is missing from the libraries.
    NotFound(String),
    /// Lowering failed.
    Cg(CgError),
    /// A binding could not be resolved.
    Binding(String),
}

impl std::fmt::Display for ElabError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElabError::NotFound(u) => write!(f, "unit not found: {u}"),
            ElabError::Cg(e) => write!(f, "code generation: {e}"),
            ElabError::Binding(m) => write!(f, "binding: {m}"),
        }
    }
}

impl std::error::Error for ElabError {}

impl From<CgError> for ElabError {
    fn from(e: CgError) -> Self {
        ElabError::Cg(e)
    }
}

/// A resolved component binding.
#[derive(Clone, Debug)]
struct CfgBind {
    /// `all`, `others`, or instance labels.
    insts: InstSel,
    /// Component name it applies to.
    comp: String,
    /// Bound entity name (empty = open: leave unbound).
    entity: String,
    /// Bound architecture name (empty = latest).
    arch: String,
}

#[derive(Clone, Debug)]
enum InstSel {
    All,
    Others,
    Names(Vec<String>),
}

impl InstSel {
    fn matches(&self, label: &str, already: bool) -> bool {
        match self {
            InstSel::All => true,
            InstSel::Others => !already,
            InstSel::Names(ns) => ns.iter().any(|n| n == label),
        }
    }
}

/// Elaborates `entity(arch)` into a runnable program. `arch = None` uses
/// the latest compiled architecture (the default-binding rule).
pub fn elaborate(
    libs: &Rc<LibrarySet>,
    entity: &str,
    arch: Option<&str>,
) -> Result<Program, ElabError> {
    let _t = ag_harness::trace::span("elaborate");
    let mut e = Elab::new(libs);
    e.collect_pkg_subprogs();
    let arch_name = match arch {
        Some(a) => a.to_string(),
        None => libs
            .latest_architecture(entity)
            .ok_or_else(|| ElabError::NotFound(format!("architecture of {entity}")))?,
    };
    e.instantiate(
        entity,
        &arch_name,
        entity,
        &HashMap::new(),
        &HashMap::new(),
        &[],
    )?;
    // Elaboration-time static sensitivity: computed once here so every
    // simulator built from this program (server re-runs, batch workers)
    // skips the kernel's fallback code walk.
    e.program.finalize_sensitivity();
    Ok(e.program)
}

/// Elaborates via a configuration unit.
pub fn elaborate_config(libs: &Rc<LibrarySet>, config: &str) -> Result<Program, ElabError> {
    let _t = ag_harness::trace::span("elaborate");
    let cfg = libs
        .load_unit("work", &format!("config.{config}"))
        .ok_or_else(|| ElabError::NotFound(format!("configuration {config}")))?;
    let entity = cfg.str_field("entity_name").unwrap_or("").to_string();
    let arch = cfg.str_field("arch_name").unwrap_or("").to_string();
    let mut e = Elab::new(libs);
    e.collect_pkg_subprogs();
    let binds: Vec<CfgBind> = cfg
        .list_field("bindings")
        .iter()
        .filter_map(|b| b.as_node())
        .map(|b| decode_cfgbind(b))
        .collect();
    e.instantiate(
        &entity,
        &arch,
        &entity,
        &HashMap::new(),
        &HashMap::new(),
        &binds,
    )?;
    e.program.finalize_sensitivity();
    Ok(e.program)
}

fn decode_cfgbind(b: &VifNode) -> CfgBind {
    let comp = b.str_field("comp").unwrap_or("").to_string();
    let insts = decode_insts(b.field("insts"));
    let (entity, arch) = decode_binding(b.field("binding"));
    CfgBind {
        insts,
        comp,
        entity,
        arch,
    }
}

fn decode_insts(v: Option<&VifValue>) -> InstSel {
    let Some(VifValue::List(parts)) = v else {
        return InstSel::All;
    };
    match parts.first().and_then(|v| v.as_str()) {
        Some("others") => InstSel::Others,
        Some("all") => InstSel::All,
        Some("ids") => {
            let names = match parts.get(1) {
                Some(VifValue::List(ids)) => ids
                    .iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect(),
                _ => Vec::new(),
            };
            InstSel::Names(names)
        }
        _ => InstSel::All,
    }
}

/// Decodes a binding-indication bundle (`["entity", name-strings, arch,
/// maps]` / `["config", …]` / `["open"]` / `["default"]`).
fn decode_binding(v: Option<&VifValue>) -> (String, String) {
    let Some(VifValue::List(parts)) = v else {
        return (String::new(), String::new());
    };
    match parts.first().and_then(|v| v.as_str()) {
        Some("entity") => {
            let name = match parts.get(1) {
                Some(VifValue::List(segs)) => segs
                    .iter()
                    .filter_map(|v| v.as_str())
                    .filter(|s| *s != "." && *s != "work")
                    .next_back()
                    .unwrap_or("")
                    .to_string(),
                _ => String::new(),
            };
            let arch = parts
                .get(2)
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string();
            (name, arch)
        }
        _ => (String::new(), String::new()),
    }
}

struct Elab<'a> {
    libs: &'a Rc<LibrarySet>,
    ctx: LowerCtx,
    program: Program,
}

impl<'a> Elab<'a> {
    fn new(libs: &'a Rc<LibrarySet>) -> Elab<'a> {
        Elab {
            libs,
            ctx: LowerCtx::new(),
            program: Program::default(),
        }
    }

    /// Indexes every subprogram in every package of the work library (and
    /// their bodies) so calls can be compiled on demand.
    fn collect_pkg_subprogs(&mut self) {
        let mut seen = std::collections::HashSet::new();
        let keys: Vec<String> = self
            .libs
            .work()
            .history()
            .into_iter()
            .filter(|k| seen.insert(k.clone()))
            .collect();
        for key in keys {
            if !(key.starts_with("pkg.") || key.starts_with("pkgbody.")) {
                continue;
            }
            if let Some(unit) = self.libs.load_unit("work", &key) {
                for d in unit.list_field("decls") {
                    if let Some(n) = d.as_node() {
                        if n.kind_sym() == vhdl_vif::kinds::subprog() {
                            self.ctx.add_subprog(&Rc::clone(n));
                        }
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn instantiate(
        &mut self,
        entity_name: &str,
        arch_name: &str,
        path: &str,
        port_actuals: &HashMap<String, SigId>,
        generic_actuals: &HashMap<String, Val>,
        cfg_binds: &[CfgBind],
    ) -> Result<(), ElabError> {
        // Each instance gets its own storage scope: the same architecture
        // instantiated twice binds its objects to different signals, and
        // position-derived uids from different units must not clash.
        let saved_storage = self.ctx.storage.clone();
        let result = self.instantiate_scoped(
            entity_name,
            arch_name,
            path,
            port_actuals,
            generic_actuals,
            cfg_binds,
        );
        self.ctx.storage = saved_storage;
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn instantiate_scoped(
        &mut self,
        entity_name: &str,
        arch_name: &str,
        path: &str,
        port_actuals: &HashMap<String, SigId>,
        generic_actuals: &HashMap<String, Val>,
        cfg_binds: &[CfgBind],
    ) -> Result<(), ElabError> {
        let entity = self
            .libs
            .load_unit("work", &format!("entity.{entity_name}"))
            .ok_or_else(|| ElabError::NotFound(format!("entity {entity_name}")))?;
        let arch = self
            .libs
            .load_unit("work", &format!("arch.{entity_name}.{arch_name}"))
            .ok_or_else(|| {
                ElabError::NotFound(format!("architecture {entity_name}({arch_name})"))
            })?;
        // Record the region scope for the Name Server hierarchy.
        self.program.regions.push(path.to_string());

        // Generics: actual, or default initializer.
        for g in entity.list_field("generics") {
            let Some(gn) = g.as_node() else { continue };
            let name = gn.name().unwrap_or("?");
            let uid = gn.str_field("uid").unwrap_or("?").to_string();
            let v = match generic_actuals.get(name) {
                Some(v) => v.clone(),
                None => match gn.node_field("init") {
                    Some(init) => static_value(&self.ctx, init)?,
                    None => {
                        return Err(ElabError::Binding(format!(
                            "generic `{name}` of {path} has no value"
                        )))
                    }
                },
            };
            self.ctx.storage.insert(uid, Storage::Const(v));
        }
        // Ports: bind to actuals or fresh local signals.
        for p in entity.list_field("ports") {
            let Some(pn) = p.as_node() else { continue };
            let name = pn.name().unwrap_or("?");
            let uid = pn.str_field("uid").unwrap_or("?").to_string();
            let sig = match port_actuals.get(name) {
                Some(s) => *s,
                None => {
                    let ty = pn.node_field("ty").expect("typed port");
                    let init = match pn.node_field("init") {
                        Some(i) => static_value(&self.ctx, i)?,
                        None => default_value(ty),
                    };
                    self.program.add_signal(format!("{path}.{name}"), init)
                }
            };
            self.ctx.storage.insert(uid, Storage::Signal(sig));
        }
        // Declarations of the entity and architecture.
        for d in entity
            .list_field("decls")
            .iter()
            .chain(arch.list_field("decls"))
        {
            let Some(dn) = d.as_node() else { continue };
            self.declare(dn, path)?;
        }
        // Configuration specs local to the architecture.
        let mut local_binds: Vec<CfgBind> = Vec::new();
        for c in arch.list_field("cfgs") {
            if let VifValue::List(parts) = c {
                let insts = decode_insts(parts.first());
                let comp = match parts.get(1) {
                    Some(VifValue::List(segs)) => segs
                        .iter()
                        .filter_map(|v| v.as_str())
                        .filter(|s| *s != ".")
                        .next_back()
                        .unwrap_or("")
                        .to_string(),
                    _ => String::new(),
                };
                let (entity, arch) = decode_binding(parts.get(2));
                local_binds.push(CfgBind {
                    insts,
                    comp,
                    entity,
                    arch,
                });
            }
        }
        // Concurrent statements.
        let mut bound_insts: Vec<String> = Vec::new();
        let concs: Vec<Rc<VifNode>> = arch
            .list_field("concs")
            .iter()
            .filter_map(|v| v.as_node().cloned())
            .collect();
        for conc in concs {
            self.conc(&conc, path, cfg_binds, &local_binds, &mut bound_insts)?;
        }
        Ok(())
    }

    /// Declares one architecture/entity/block declaration at `path`.
    fn declare(&mut self, dn: &Rc<VifNode>, path: &str) -> Result<(), ElabError> {
        match dn.kind() {
            "obj" if dn.str_field("class") == Some("signal") => {
                let ty = dn.node_field("ty").expect("typed signal");
                let init = match dn.node_field("init") {
                    Some(i) => static_value(&self.ctx, i)?,
                    None => default_value(ty),
                };
                let name = dn.name().unwrap_or("?");
                let sig = self.program.add_signal(format!("{path}.{name}"), init);
                // Resolution function from the subtype.
                if let Some(res) = vhdl_sem::types::resolution_of(ty) {
                    let uid = res.str_field("uid").unwrap_or("?").to_string();
                    self.ctx.add_subprog(&res);
                    let mut fl = FnLower::new(&mut self.ctx, &mut self.program, 1);
                    let f = fl.compile_subprog(&uid)?;
                    self.program.signals[sig.0 as usize].resolution = Some(f);
                }
                self.ctx.storage.insert(
                    dn.str_field("uid").unwrap_or("?").to_string(),
                    Storage::Signal(sig),
                );
            }
            "subprog" => self.ctx.add_subprog(dn),
            _ => {}
        }
        Ok(())
    }

    fn conc(
        &mut self,
        conc: &Rc<VifNode>,
        path: &str,
        cfg_binds: &[CfgBind],
        local_binds: &[CfgBind],
        bound: &mut Vec<String>,
    ) -> Result<(), ElabError> {
        match conc.kind() {
            "process" => self.lower_process(conc, path)?,
            "block" => {
                // Guard signal + guard-update process, then nested
                // concurrency.
                let bpath = format!("{path}.{}", conc.name().unwrap_or("blk"));
                self.program.regions.push(bpath.clone());
                if let (Some(gobj), Some(gexpr)) =
                    (conc.node_field("guard_sig"), conc.node_field("guard_expr"))
                {
                    let sig = self
                        .program
                        .add_signal(format!("{bpath}.guard"), Val::Int(0));
                    self.ctx.storage.insert(
                        gobj.str_field("uid").unwrap_or("?").to_string(),
                        Storage::Signal(sig),
                    );
                    self.lower_guard_process(&bpath, sig, gexpr)?;
                }
                for d in conc.list_field("decls") {
                    if let Some(dn) = d.as_node() {
                        self.declare(dn, &bpath)?;
                    }
                }
                let mut inner_bound = Vec::new();
                let inner: Vec<Rc<VifNode>> = conc
                    .list_field("concs")
                    .iter()
                    .filter_map(|v| v.as_node().cloned())
                    .collect();
                for c in inner {
                    self.conc(&c, &bpath, cfg_binds, local_binds, &mut inner_bound)?;
                }
            }
            "inst" => {
                let label = conc.name().unwrap_or("u").to_string();
                let comp = conc.node_field("comp").expect("component");
                let comp_name = comp.name().unwrap_or("?").to_string();
                // Binding precedence: configuration unit, then local spec,
                // then defaults (§3.3).
                let find = |binds: &[CfgBind]| -> Option<(String, String)> {
                    binds
                        .iter()
                        .find(|b| b.comp == comp_name && b.insts.matches(&label, false))
                        .map(|b| (b.entity.clone(), b.arch.clone()))
                };
                let (entity, arch) = find(cfg_binds)
                    .or_else(|| find(local_binds))
                    .unwrap_or_default();
                let entity = if entity.is_empty() {
                    comp_name.clone()
                } else {
                    entity
                };
                let arch = if arch.is_empty() {
                    self.libs.latest_architecture(&entity).ok_or_else(|| {
                        ElabError::Binding(format!(
                            "no architecture for `{entity}` (instance {path}.{label})"
                        ))
                    })?
                } else {
                    arch
                };
                bound.push(label.clone());
                // Map actuals.
                let mut ports = HashMap::new();
                let mut generics = HashMap::new();
                for a in conc.list_field("port_map") {
                    let Some(an) = a.as_node() else { continue };
                    let formal = an.str_field("formal").unwrap_or("?").to_string();
                    if let Some(actual) = an.node_field("actual") {
                        let sig = self.signal_of_actual(actual).ok_or_else(|| {
                            ElabError::Binding(format!(
                                "port `{formal}` of {path}.{label}: actual is not a signal"
                            ))
                        })?;
                        ports.insert(formal, sig);
                    }
                }
                for a in conc.list_field("generic_map") {
                    let Some(an) = a.as_node() else { continue };
                    let formal = an.str_field("formal").unwrap_or("?").to_string();
                    if let Some(actual) = an.node_field("actual") {
                        generics.insert(formal, static_value(&self.ctx, actual)?);
                    }
                }
                let child_path = format!("{path}.{label}");
                self.instantiate(&entity, &arch, &child_path, &ports, &generics, cfg_binds)?;
            }
            k => {
                return Err(ElabError::Cg(CgError::Unsupported(format!(
                    "concurrent {k}"
                ))))
            }
        }
        Ok(())
    }

    fn signal_of_actual(&self, actual: &VifNode) -> Option<SigId> {
        if actual.kind() != "e.ref" {
            return None;
        }
        let uid = actual.node_field("obj")?.str_field("uid")?;
        match self.ctx.storage.get(uid) {
            Some(Storage::Signal(s)) => Some(*s),
            _ => None,
        }
    }

    fn lower_process(&mut self, proc: &Rc<VifNode>, path: &str) -> Result<(), ElabError> {
        let name = format!("{path}.{}", proc.name().unwrap_or("proc"));
        let mut fl = FnLower::new(&mut self.ctx, &mut self.program, 0);
        // Declarations: variables get slots + init code; nested subprograms
        // register for on-demand compilation.
        for d in proc.list_field("decls") {
            let Some(dn) = d.as_node() else { continue };
            match dn.kind() {
                "obj" => {
                    let slot = fl.alloc(dn.str_field("uid").unwrap_or("?"));
                    fl.lower_var_init(&Rc::clone(dn), slot)?;
                }
                "subprog" => fl.ctx.add_subprog(&Rc::clone(dn)),
                _ => {}
            }
        }
        let body_start = fl.code.len() as u32;
        for s in proc.list_field("body") {
            if let Some(sn) = s.as_node() {
                fl.stmt(sn)?;
            }
        }
        // The process statement list repeats forever.
        fl.code.push(Insn::Jump(body_start));
        let (code, n_locals) = (fl.code, fl.next_slot);
        self.program.add_process(name, n_locals, code);
        Ok(())
    }

    /// The implicit process maintaining a block's GUARD signal.
    fn lower_guard_process(
        &mut self,
        path: &str,
        sig: SigId,
        expr: &Rc<VifNode>,
    ) -> Result<(), ElabError> {
        let mut fl = FnLower::new(&mut self.ctx, &mut self.program, 0);
        let mut sens = Vec::new();
        crate::lower::collect_signals(&mut fl, expr, &mut sens)?;
        sens.sort();
        sens.dedup();
        fl.expr(expr)?;
        fl.code.push(Insn::PushInt(-1));
        fl.code.push(Insn::Sched {
            sig,
            transport: false,
        });
        fl.code.push(Insn::Wait {
            sens: Arc::new(sens),
            with_timeout: false,
        });
        fl.code.push(Insn::Pop);
        fl.code.push(Insn::Jump(0));
        let (code, n_locals) = (fl.code, fl.next_slot);
        self.program
            .add_process(format!("{path}.guardproc"), n_locals, code);
        Ok(())
    }
}
