//! Lowering: typed IR (`e.*` / `s.*` VIF nodes) → kernel instructions.
//!
//! This is the code-generation half the paper still had to solve even
//! though it emitted C: up-level references via static links, waveform
//! scheduling, the wait-until loop, and aggregate expansion.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use sim_kernel::{FnDecl, FnId, Insn, Op, Program, SigAttr, SigId, Val, VarAddr};
use vhdl_sem::types::{self, Dir};
use vhdl_vif::VifNode;

/// Code-generation errors.
#[derive(Clone, Debug)]
pub enum CgError {
    /// A construct outside the supported lowering subset.
    Unsupported(String),
    /// A referenced object has no storage (analyzer/codegen mismatch).
    Unmapped(String),
    /// A value that must be static is not.
    NotStatic(String),
}

impl std::fmt::Display for CgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CgError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
            CgError::Unmapped(m) => write!(f, "no storage for {m}"),
            CgError::NotStatic(m) => write!(f, "not static: {m}"),
        }
    }
}

impl std::error::Error for CgError {}

/// Where an object lives at run time.
#[derive(Clone, Debug)]
pub enum Storage {
    /// A kernel signal.
    Signal(SigId),
    /// A frame variable at a lexical level.
    Var {
        /// Owner's lexical level (0 = process).
        level: u16,
        /// Slot within the frame.
        slot: u16,
    },
    /// A compile-time constant (generic or folded constant).
    Const(Val),
}

/// Shared lowering context for one elaborated design.
pub struct LowerCtx {
    /// Object uid → storage.
    pub storage: HashMap<String, Storage>,
    /// Subprogram uid → node (bodied version preferred).
    pub subprogs: HashMap<String, Rc<VifNode>>,
    /// Subprogram uid → compiled function.
    pub compiled: HashMap<String, FnId>,
}

impl LowerCtx {
    /// Empty context.
    pub fn new() -> LowerCtx {
        LowerCtx {
            storage: HashMap::new(),
            subprogs: HashMap::new(),
            compiled: HashMap::new(),
        }
    }

    /// Registers a subprogram node, preferring ones with bodies.
    pub fn add_subprog(&mut self, node: &Rc<VifNode>) {
        let Some(uid) = node.str_field("uid") else {
            return;
        };
        let replace = match self.subprogs.get(uid) {
            Some(old) => old.field("body").is_none() && node.field("body").is_some(),
            None => true,
        };
        if replace {
            self.subprogs.insert(uid.to_string(), Rc::clone(node));
        }
    }
}

impl Default for LowerCtx {
    fn default() -> Self {
        Self::new()
    }
}

/// The default initial value of a type (leftmost enum literal, left bound
/// of a range, elementwise for composites).
pub fn default_value(ty: &types::Ty) -> Val {
    let b = types::base_type(ty);
    match b.kind() {
        "ty.enum" => Val::Int(types::scalar_bounds(ty).map_or(0, |(lo, _, _)| lo)),
        "ty.int" | "ty.phys" => Val::Int(types::scalar_bounds(ty).map_or(0, |(l, _, _)| l)),
        "ty.real" => Val::Real(0.0),
        "ty.array" => match types::array_bounds(ty) {
            Some((l, r, dir)) => {
                let n = types::range_length(l, r, dir).max(0) as usize;
                let elem = types::elem_type(ty)
                    .map(|e| default_value(&e))
                    .unwrap_or(Val::Int(0));
                Val::Arr(sim_kernel::ArrVal {
                    left: l,
                    dir: vdir(dir),
                    data: Arc::new(vec![elem; n]),
                })
            }
            None => Val::arr(0, sim_kernel::VDir::To, vec![]),
        },
        "ty.record" => {
            let fields = b
                .list_field("elems")
                .iter()
                .filter_map(|v| v.as_node())
                .map(|e| {
                    e.node_field("ty")
                        .map(|t| default_value(t))
                        .unwrap_or(Val::Int(0))
                })
                .collect();
            Val::Rec(Arc::new(fields))
        }
        _ => Val::Int(0),
    }
}

fn vdir(d: Dir) -> sim_kernel::VDir {
    match d {
        Dir::To => sim_kernel::VDir::To,
        Dir::Downto => sim_kernel::VDir::Downto,
    }
}

/// Statically evaluates an expression IR to a [`Val`] using the constant
/// environment (for initial values, generics, aggregate choices).
pub fn static_value(ctx: &LowerCtx, ir: &Rc<VifNode>) -> Result<Val, CgError> {
    match ir.kind() {
        "e.const" => {
            if let Some(i) = ir.int_field("ival") {
                return Ok(Val::Int(i));
            }
            if let Some(vhdl_vif::VifValue::Real(r)) = ir.field("rval") {
                return Ok(Val::Real(*r));
            }
            let ty = vhdl_sem::ir::ty_of(ir);
            let (left, dir) = types::array_bounds(&ty)
                .map(|(l, _, d)| (l, vdir(d)))
                .unwrap_or((0, sim_kernel::VDir::To));
            let data: Vec<Val> = ir
                .list_field("aval")
                .iter()
                .filter_map(|v| v.as_int().map(Val::Int))
                .collect();
            Ok(Val::Arr(sim_kernel::ArrVal {
                left,
                dir,
                data: Arc::new(data),
            }))
        }
        "e.ref" => {
            let obj = ir.node_field("obj").expect("ref has obj");
            let uid = obj.str_field("uid").unwrap_or("?");
            match ctx.storage.get(uid) {
                Some(Storage::Const(v)) => Ok(v.clone()),
                _ => match obj.node_field("init") {
                    Some(init) if obj.str_field("class") == Some("constant") => {
                        static_value(ctx, init)
                    }
                    _ => Err(CgError::NotStatic(format!(
                        "reference to `{}`",
                        obj.name().unwrap_or("?")
                    ))),
                },
            }
        }
        "e.call" => {
            let code = ir
                .str_field("builtin")
                .ok_or_else(|| CgError::NotStatic("user call in static context".into()))?;
            let op =
                Op::decode(code).ok_or_else(|| CgError::Unsupported(format!("builtin {code}")))?;
            let args: Vec<Val> = ir
                .list_field("args")
                .iter()
                .filter_map(|v| v.as_node())
                .map(|a| static_value(ctx, a))
                .collect::<Result<_, _>>()?;
            let r = match op.arity() {
                1 => sim_kernel::rts::unop(op, &args[0]),
                _ => sim_kernel::rts::binop(op, &args[0], &args[1]),
            };
            r.map_err(|e| CgError::NotStatic(format!("static eval failed: {e}")))
        }
        "e.conv" => static_value(ctx, ir.node_field("arg").expect("conv arg")),
        "e.agg" => {
            let ty = vhdl_sem::ir::ty_of(ir);
            expand_aggregate_static(ctx, ir, &ty)
        }
        k => Err(CgError::NotStatic(format!("{k} in static context"))),
    }
}

/// Expands a static aggregate to a concrete value.
fn expand_aggregate_static(
    ctx: &LowerCtx,
    agg: &Rc<VifNode>,
    ty: &types::Ty,
) -> Result<Val, CgError> {
    if types::is_record(ty) {
        let fields = agg
            .list_field("elems")
            .iter()
            .filter_map(|v| v.as_node())
            .map(|e| static_value(ctx, e))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Val::Rec(Arc::new(fields)));
    }
    let (l, r, dir) = types::array_bounds(ty)
        .ok_or_else(|| CgError::NotStatic("aggregate for unconstrained array".into()))?;
    let n = types::range_length(l, r, dir).max(0) as usize;
    let mut data: Vec<Option<Val>> = vec![None; n];
    let off = |i: i64| -> Option<usize> {
        let o = match dir {
            Dir::To => i - l,
            Dir::Downto => l - i,
        };
        (o >= 0 && (o as usize) < n).then_some(o as usize)
    };
    for (i, e) in agg.list_field("elems").iter().enumerate() {
        if let Some(node) = e.as_node() {
            if i < n {
                data[i] = Some(static_value(ctx, node)?);
            }
        }
    }
    for nv in agg.list_field("named") {
        let Some(nn) = nv.as_node() else { continue };
        let (lo, hi) = (
            nn.int_field("lo").unwrap_or(0),
            nn.int_field("hi").unwrap_or(0),
        );
        let v = static_value(ctx, nn.node_field("value").expect("named value"))?;
        for i in lo..=hi {
            if let Some(o) = off(i) {
                data[o] = Some(v.clone());
            }
        }
    }
    let others = agg
        .node_field("others")
        .map(|o| static_value(ctx, o))
        .transpose()?;
    let data: Vec<Val> = data
        .into_iter()
        .map(|s| s.or_else(|| others.clone()).unwrap_or(Val::Int(0)))
        .collect();
    Ok(Val::Arr(sim_kernel::ArrVal {
        left: l,
        dir: vdir(dir),
        data: Arc::new(data),
    }))
}

/// Lowers one process or subprogram body.
pub struct FnLower<'c> {
    /// Shared design context.
    pub ctx: &'c mut LowerCtx,
    /// Program being built (functions appended on demand).
    pub program: &'c mut sim_kernel::Program,
    /// Lexical level of the code being lowered (0 = process).
    pub level: u16,
    /// Local slot assignment for this frame.
    pub slots: HashMap<String, u16>,
    /// Next free slot.
    pub next_slot: u16,
    /// Emitted code.
    pub code: Vec<Insn>,
    /// Patch lists for `exit`/`next` of enclosing loops.
    loops: Vec<LoopPatches>,
}

struct LoopPatches {
    exits: Vec<usize>,
    nexts: Vec<usize>,
}

impl<'c> FnLower<'c> {
    /// Creates a lowering for a frame at `level`.
    pub fn new(
        ctx: &'c mut LowerCtx,
        program: &'c mut sim_kernel::Program,
        level: u16,
    ) -> FnLower<'c> {
        FnLower {
            ctx,
            program,
            level,
            slots: HashMap::new(),
            next_slot: 0,
            code: Vec::new(),
            loops: Vec::new(),
        }
    }

    /// Allocates a slot for an object uid at this level.
    pub fn alloc(&mut self, uid: &str) -> u16 {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.slots.insert(uid.to_string(), slot);
        self.ctx.storage.insert(
            uid.to_string(),
            Storage::Var {
                level: self.level,
                slot,
            },
        );
        slot
    }

    fn emit(&mut self, i: Insn) {
        self.code.push(i);
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    /// Resolves storage for an object, looking constants up by folding
    /// initializers on demand.
    fn storage_of(&mut self, obj: &Rc<VifNode>) -> Result<Storage, CgError> {
        let uid = obj.str_field("uid").unwrap_or("?").to_string();
        if let Some(s) = self.ctx.storage.get(&uid) {
            return Ok(s.clone());
        }
        if obj.str_field("class") == Some("constant") {
            if let Some(init) = obj.node_field("init") {
                let v = static_value(self.ctx, init)?;
                self.ctx.storage.insert(uid, Storage::Const(v.clone()));
                return Ok(Storage::Const(v));
            }
        }
        Err(CgError::Unmapped(format!(
            "{} `{}` ({uid})",
            obj.str_field("class").unwrap_or("object"),
            obj.name().unwrap_or("?")
        )))
    }

    /// Lowers an expression: emits code leaving its value on the stack.
    pub fn expr(&mut self, ir: &Rc<VifNode>) -> Result<(), CgError> {
        match ir.kind() {
            "e.const" => {
                let v = static_value(self.ctx, ir)?;
                match v {
                    Val::Int(i) => self.emit(Insn::PushInt(i)),
                    Val::Real(r) => self.emit(Insn::PushReal(r)),
                    other => self.emit(Insn::PushConst(other)),
                }
            }
            "e.ref" => {
                let obj = Rc::clone(ir.node_field("obj").expect("ref has obj"));
                match self.storage_of(&obj)? {
                    Storage::Signal(s) => self.emit(Insn::LoadSig(s)),
                    Storage::Var { level, slot } => {
                        let depth = (self.level - level) as u8;
                        self.emit(Insn::LoadVar(VarAddr { depth, slot }));
                    }
                    Storage::Const(v) => match v {
                        Val::Int(i) => self.emit(Insn::PushInt(i)),
                        Val::Real(r) => self.emit(Insn::PushReal(r)),
                        other => self.emit(Insn::PushConst(other)),
                    },
                }
            }
            "e.index" => {
                self.expr(ir.node_field("base").expect("index base"))?;
                self.expr(ir.node_field("idx").expect("index idx"))?;
                self.emit(Insn::Index);
            }
            "e.slice" => {
                self.expr(ir.node_field("base").expect("slice base"))?;
                self.expr(ir.node_field("lo").expect("slice lo"))?;
                self.expr(ir.node_field("hi").expect("slice hi"))?;
                let dir = Dir::decode(ir.int_field("dir").unwrap_or(0));
                self.emit(Insn::Slice(vdir(dir)));
            }
            "e.field" => {
                self.expr(ir.node_field("base").expect("field base"))?;
                self.emit(Insn::Field(ir.int_field("pos").unwrap_or(0) as u16));
            }
            "e.call" => {
                for a in ir.list_field("args") {
                    if let Some(n) = a.as_node() {
                        self.expr(n)?;
                    }
                }
                match ir.str_field("builtin") {
                    Some(code) => {
                        let op = Op::decode(code)
                            .ok_or_else(|| CgError::Unsupported(format!("builtin {code}")))?;
                        if op.arity() == 1 {
                            self.emit(Insn::Unop(op));
                        } else {
                            self.emit(Insn::Binop(op));
                        }
                    }
                    None => {
                        let uid = ir.str_field("sub_uid").unwrap_or("?").to_string();
                        let f = self.compile_subprog(&uid)?;
                        self.emit(Insn::Call(f));
                    }
                }
            }
            "e.conv" => {
                let arg = ir.node_field("arg").expect("conv arg");
                self.expr(arg)?;
                let from = types::base_type(&vhdl_sem::ir::ty_of(arg));
                let to = types::base_type(&vhdl_sem::ir::ty_of(ir));
                match (from.kind(), to.kind()) {
                    ("ty.int", "ty.real") => self.emit(Insn::Unop(Op::ToReal)),
                    ("ty.real", "ty.int") => self.emit(Insn::Unop(Op::ToInt)),
                    _ => {}
                }
            }
            "e.attr" => {
                let attr = ir.str_field("attr").unwrap_or("?");
                let base = ir
                    .node_field("base")
                    .ok_or_else(|| CgError::Unsupported(format!("attribute `{attr}`")))?;
                match attr {
                    "event" | "active" | "last_value" => {
                        let sig = self.signal_of(base)?;
                        let kind = match attr {
                            "event" => SigAttr::Event,
                            "active" => SigAttr::Active,
                            _ => SigAttr::LastValue,
                        };
                        self.emit(Insn::LoadSigAttr(sig, kind));
                    }
                    "length" | "left" | "right" | "low" | "high" => {
                        // Dynamic array bounds: evaluate the prefix value.
                        self.expr(base)?;
                        let kind = match attr {
                            "length" => sim_kernel::ArrAttrKind::Length,
                            "left" => sim_kernel::ArrAttrKind::Left,
                            "right" => sim_kernel::ArrAttrKind::Right,
                            "low" => sim_kernel::ArrAttrKind::Low,
                            _ => sim_kernel::ArrAttrKind::High,
                        };
                        self.emit(Insn::ArrAttr(kind));
                    }
                    other => return Err(CgError::Unsupported(format!("attribute `{other}`"))),
                }
            }
            "e.agg" => {
                // Static aggregates become constants; dynamic ones expand
                // element by element.
                if let Ok(v) = static_value(self.ctx, ir) {
                    self.emit(Insn::PushConst(v));
                } else {
                    self.dynamic_aggregate(ir)?;
                }
            }
            "e.error" => {
                return Err(CgError::Unsupported(
                    "analysis error survived to codegen".into(),
                ))
            }
            k => return Err(CgError::Unsupported(format!("expression {k}"))),
        }
        Ok(())
    }

    fn dynamic_aggregate(&mut self, ir: &Rc<VifNode>) -> Result<(), CgError> {
        let ty = vhdl_sem::ir::ty_of(ir);
        if types::is_record(&ty) {
            let elems = ir.list_field("elems");
            for e in elems {
                if let Some(n) = e.as_node() {
                    self.expr(n)?;
                }
            }
            self.emit(Insn::MakeRec {
                n: elems.len() as u16,
            });
            return Ok(());
        }
        let (l, r, dir) = types::array_bounds(&ty)
            .ok_or_else(|| CgError::Unsupported("unconstrained aggregate".into()))?;
        let n = types::range_length(l, r, dir).max(0) as usize;
        if n > 4096 {
            return Err(CgError::Unsupported("aggregate larger than 4096".into()));
        }
        // Build per-position expressions: positional first, then named,
        // then others.
        let mut at: Vec<Option<Rc<VifNode>>> = vec![None; n];
        for (i, e) in ir.list_field("elems").iter().enumerate() {
            if let (Some(node), true) = (e.as_node(), i < n) {
                at[i] = Some(Rc::clone(node));
            }
        }
        let off = |i: i64| -> Option<usize> {
            let o = match dir {
                Dir::To => i - l,
                Dir::Downto => l - i,
            };
            (o >= 0 && (o as usize) < n).then_some(o as usize)
        };
        for nv in ir.list_field("named") {
            let Some(nn) = nv.as_node() else { continue };
            let v = Rc::clone(nn.node_field("value").expect("named value"));
            for i in nn.int_field("lo").unwrap_or(0)..=nn.int_field("hi").unwrap_or(0) {
                if let Some(o) = off(i) {
                    at[o] = Some(Rc::clone(&v));
                }
            }
        }
        let others = ir.node_field("others").cloned();
        for slot in at {
            match slot.or_else(|| others.clone()) {
                Some(e) => self.expr(&e)?,
                None => return Err(CgError::Unsupported("incomplete aggregate".into())),
            }
        }
        self.emit(Insn::MakeArr {
            n: n as u16,
            left: l,
            dir: vdir(dir),
        });
        Ok(())
    }

    /// Resolves the signal a target/prefix IR refers to (whole-signal).
    fn signal_of(&mut self, ir: &Rc<VifNode>) -> Result<SigId, CgError> {
        match ir.kind() {
            "e.ref" => {
                let obj = Rc::clone(ir.node_field("obj").expect("ref"));
                match self.storage_of(&obj)? {
                    Storage::Signal(s) => Ok(s),
                    _ => Err(CgError::Unsupported("prefix is not a signal".into())),
                }
            }
            _ => Err(CgError::Unsupported(
                "composite signal prefix in this position".into(),
            )),
        }
    }

    /// Compiles a subprogram on demand, returning its function id.
    pub fn compile_subprog(&mut self, uid: &str) -> Result<FnId, CgError> {
        if let Some(f) = self.ctx.compiled.get(uid) {
            return Ok(*f);
        }
        let node = self
            .ctx
            .subprogs
            .get(uid)
            .cloned()
            .ok_or_else(|| CgError::Unmapped(format!("subprogram {uid}")))?;
        if node.field("body").is_none() {
            return Err(CgError::Unmapped(format!(
                "no body for subprogram `{}`",
                node.name().unwrap_or("?")
            )));
        }
        // Reserve the id first so recursion terminates.
        let placeholder = self.program.add_function(FnDecl {
            name: node.name().unwrap_or("?").to_string(),
            n_params: 0,
            n_locals: 0,
            code: Arc::new(Vec::new()),
            level: node.int_field("level").unwrap_or(1) as u16,
        });
        self.ctx.compiled.insert(uid.to_string(), placeholder);

        let level = node.int_field("level").unwrap_or(1) as u16;
        let mut sub = FnLower::new(self.ctx, self.program, level);
        // Parameters occupy the first slots.
        let params = vhdl_sem::decl::subprog_params(&node);
        for p in &params {
            sub.alloc(p.str_field("uid").unwrap_or("?"));
        }
        // Locals with initializers.
        for l in node.list_field("locals") {
            let Some(ln) = l.as_node() else { continue };
            if ln.kind_sym() == vhdl_vif::kinds::obj() {
                let slot = sub.alloc(ln.str_field("uid").unwrap_or("?"));
                sub.lower_var_init(ln, slot)?;
            } else if ln.kind_sym() == vhdl_vif::kinds::subprog() {
                sub.ctx.add_subprog(&Rc::clone(ln));
            }
        }
        for s in node.list_field("body") {
            if let Some(sn) = s.as_node() {
                sub.stmt(sn)?;
            }
        }
        let (code, n_locals) = (sub.code, sub.next_slot);
        let decl = &mut self.program.functions[placeholder.0 as usize];
        decl.code = Arc::new(code);
        decl.n_params = params.len() as u16;
        decl.n_locals = n_locals;
        Ok(placeholder)
    }

    /// Emits initialization for a variable slot.
    pub fn lower_var_init(&mut self, obj: &Rc<VifNode>, slot: u16) -> Result<(), CgError> {
        match obj.node_field("init") {
            Some(init) => self.expr(&Rc::clone(init))?,
            None => {
                let ty = vhdl_sem::decl::obj_ty(obj).expect("typed obj");
                self.emit(Insn::PushConst(default_value(&ty)));
            }
        }
        self.emit(Insn::StoreVar(VarAddr { depth: 0, slot }));
        Ok(())
    }

    /// Lowers a statement.
    pub fn stmt(&mut self, s: &Rc<VifNode>) -> Result<(), CgError> {
        match s.kind() {
            "s.assign_var" => {
                let target = s.node_field("target").expect("target");
                let value = Rc::clone(s.node_field("value").expect("value"));
                match target.kind() {
                    "e.ref" => {
                        let obj = Rc::clone(target.node_field("obj").expect("ref"));
                        self.expr(&value)?;
                        self.range_check(&vhdl_sem::decl::obj_ty(&obj).expect("ty"));
                        match self.storage_of(&obj)? {
                            Storage::Var { level, slot } => {
                                let depth = (self.level - level) as u8;
                                self.emit(Insn::StoreVar(VarAddr { depth, slot }));
                            }
                            _ => return Err(CgError::Unsupported("assign to non-variable".into())),
                        }
                    }
                    "e.index" => {
                        let base = target.node_field("base").expect("base");
                        let obj = Rc::clone(
                            base.node_field("obj")
                                .ok_or_else(|| CgError::Unsupported("deep target".into()))?,
                        );
                        self.expr(target.node_field("idx").expect("idx"))?;
                        self.expr(&value)?;
                        match self.storage_of(&obj)? {
                            Storage::Var { level, slot } => {
                                let depth = (self.level - level) as u8;
                                self.emit(Insn::StoreVarIndex(VarAddr { depth, slot }));
                            }
                            _ => return Err(CgError::Unsupported("assign to non-variable".into())),
                        }
                    }
                    "e.field" => {
                        let base = target.node_field("base").expect("base");
                        let obj = Rc::clone(
                            base.node_field("obj")
                                .ok_or_else(|| CgError::Unsupported("deep target".into()))?,
                        );
                        self.expr(&value)?;
                        let field = target.int_field("pos").unwrap_or(0) as u16;
                        match self.storage_of(&obj)? {
                            Storage::Var { level, slot } => {
                                let depth = (self.level - level) as u8;
                                self.emit(Insn::StoreVarField(VarAddr { depth, slot }, field));
                            }
                            _ => return Err(CgError::Unsupported("assign to non-variable".into())),
                        }
                    }
                    k => return Err(CgError::Unsupported(format!("variable target {k}"))),
                }
            }
            "s.assign_sig" => {
                let target = s.node_field("target").expect("target");
                let transport = s.field("transport") == Some(&vhdl_vif::VifValue::Bool(true));
                for (wi, w) in s.list_field("waveform").iter().enumerate() {
                    let Some(wn) = w.as_node() else { continue };
                    // Only the first waveform element preempts; the rest
                    // extend the projected output waveform (LRM §8.3).
                    let transport = transport || wi > 0;
                    let value = Rc::clone(wn.node_field("value").expect("wv value"));
                    let delay = wn.node_field("delay").cloned();
                    match target.kind() {
                        "e.ref" => {
                            let sig = self.signal_of(target)?;
                            self.expr(&value)?;
                            self.push_delay(delay.as_ref())?;
                            self.emit(Insn::Sched { sig, transport });
                        }
                        "e.index" => {
                            let base = target.node_field("base").expect("base");
                            let sig = self.signal_of(base)?;
                            self.expr(target.node_field("idx").expect("idx"))?;
                            self.expr(&value)?;
                            self.push_delay(delay.as_ref())?;
                            self.emit(Insn::SchedIndex { sig, transport });
                        }
                        k => return Err(CgError::Unsupported(format!("signal target {k}"))),
                    }
                }
            }
            "s.if" => {
                self.expr(s.node_field("cond").expect("cond"))?;
                let jf_at = self.code.len();
                self.emit(Insn::JumpIfFalse(0));
                for st in s.list_field("then") {
                    if let Some(n) = st.as_node() {
                        self.stmt(n)?;
                    }
                }
                let j_end = self.code.len();
                self.emit(Insn::Jump(0));
                let else_at = self.here();
                patch(&mut self.code, jf_at, else_at);
                for st in s.list_field("else") {
                    if let Some(n) = st.as_node() {
                        self.stmt(n)?;
                    }
                }
                let end = self.here();
                patch(&mut self.code, j_end, end);
            }
            "s.case" => self.lower_case(s)?,
            "s.loop" => self.lower_loop(s)?,
            "s.next" | "s.exit" => {
                let is_exit = s.kind_sym() == vhdl_vif::kinds::s_exit();
                let skip_at = match s.node_field("cond") {
                    Some(c) => {
                        self.expr(&Rc::clone(c))?;
                        let at = self.code.len();
                        self.emit(Insn::JumpIfFalse(0));
                        Some(at)
                    }
                    None => None,
                };
                let lp = self
                    .loops
                    .last_mut()
                    .ok_or_else(|| CgError::Unsupported("next/exit outside a loop".into()))?;
                let at = self.code.len();
                if is_exit {
                    lp.exits.push(at);
                } else {
                    lp.nexts.push(at);
                }
                self.emit(Insn::Jump(0));
                if let Some(at) = skip_at {
                    let here = self.here();
                    patch(&mut self.code, at, here);
                }
            }
            "s.wait" => self.lower_wait(s)?,
            "s.assert" => {
                self.expr(s.node_field("cond").expect("cond"))?;
                match s.node_field("report") {
                    Some(r) => self.expr(&Rc::clone(r))?,
                    None => {
                        let msg: Vec<Val> = "Assertion violation."
                            .chars()
                            .map(|c| Val::Int(c as i64 - 32))
                            .collect();
                        self.emit(Insn::PushConst(Val::arr(1, sim_kernel::VDir::To, msg)));
                    }
                }
                match s.node_field("severity") {
                    Some(sv) => self.expr(&Rc::clone(sv))?,
                    None => self.emit(Insn::PushInt(2)),
                }
                self.emit(Insn::Assert);
            }
            "s.call" => {
                self.expr(s.node_field("call").expect("call"))?;
                // Procedures leave nothing on the stack.
            }
            "s.return" => {
                let has_value = match s.node_field("value") {
                    Some(v) => {
                        self.expr(&Rc::clone(v))?;
                        true
                    }
                    None => false,
                };
                self.emit(Insn::Ret { has_value });
            }
            "s.null" => {}
            k => return Err(CgError::Unsupported(format!("statement {k}"))),
        }
        Ok(())
    }

    fn push_delay(&mut self, delay: Option<&Rc<VifNode>>) -> Result<(), CgError> {
        match delay {
            Some(d) => self.expr(d)?,
            None => self.emit(Insn::PushInt(-1)),
        }
        Ok(())
    }

    fn range_check(&mut self, ty: &types::Ty) {
        if types::is_discrete(ty) || types::base_type(ty).kind_sym() == vhdl_vif::kinds::ty_phys() {
            if let Some((lo, hi, dir)) = types::scalar_bounds(ty) {
                let (lo, hi) = match dir {
                    Dir::To => (lo, hi),
                    Dir::Downto => (hi, lo),
                };
                // Skip the degenerate full ranges of the base types.
                if lo > i32::MIN as i64 || hi < i32::MAX as i64 {
                    self.emit(Insn::RangeCheck { lo, hi });
                }
            }
        }
    }

    fn lower_case(&mut self, s: &Rc<VifNode>) -> Result<(), CgError> {
        // Evaluate the selector into a scratch slot.
        let scratch = self.next_slot;
        self.next_slot += 1;
        self.expr(s.node_field("sel").expect("sel"))?;
        self.emit(Insn::StoreVar(VarAddr {
            depth: 0,
            slot: scratch,
        }));
        let mut end_jumps = Vec::new();
        for alt in s.list_field("alts") {
            let Some(an) = alt.as_node() else { continue };
            // Match tests: one per choice, OR-ed by jumping into the body.
            let mut into_body = Vec::new();
            let mut next_choice: Option<usize> = None;
            let choices = an.list_field("choices");
            let is_others = choices.iter().any(|c| {
                c.as_node()
                    .is_some_and(|n| n.kind_sym() == vhdl_vif::kinds::ch_others())
            });
            if !is_others {
                for (ci, c) in choices.iter().enumerate() {
                    let Some(cn) = c.as_node() else { continue };
                    if let Some(at) = next_choice.take() {
                        let here = self.here();
                        patch(&mut self.code, at, here);
                    }
                    match cn.kind() {
                        "ch.val" => {
                            self.emit(Insn::LoadVar(VarAddr {
                                depth: 0,
                                slot: scratch,
                            }));
                            self.emit(Insn::PushInt(cn.int_field("val").unwrap_or(0)));
                            self.emit(Insn::Binop(Op::Eq));
                        }
                        "ch.range" => {
                            let lo = cn.int_field("lo").unwrap_or(0);
                            let hi = cn.int_field("hi").unwrap_or(0);
                            self.emit(Insn::LoadVar(VarAddr {
                                depth: 0,
                                slot: scratch,
                            }));
                            self.emit(Insn::PushInt(lo));
                            self.emit(Insn::Binop(Op::Ge));
                            self.emit(Insn::LoadVar(VarAddr {
                                depth: 0,
                                slot: scratch,
                            }));
                            self.emit(Insn::PushInt(hi));
                            self.emit(Insn::Binop(Op::Le));
                            self.emit(Insn::Binop(Op::And));
                        }
                        k => return Err(CgError::Unsupported(format!("choice {k}"))),
                    }
                    if ci + 1 < choices.len() {
                        // On false, try the next choice; on true, fall into
                        // a jump to the body.
                        let at = self.code.len();
                        self.emit(Insn::JumpIfFalse(0));
                        next_choice = Some(at);
                        let at = self.code.len();
                        into_body.push(at);
                        self.emit(Insn::Jump(0));
                    } else {
                        // Last choice: on false, skip the body.
                        let at = self.code.len();
                        self.emit(Insn::JumpIfFalse(0));
                        next_choice = Some(at);
                    }
                }
                for at in into_body {
                    let here = self.here();
                    patch(&mut self.code, at, here);
                }
            }
            for st in an.list_field("body") {
                if let Some(n) = st.as_node() {
                    self.stmt(n)?;
                }
            }
            let at = self.code.len();
            end_jumps.push(at);
            self.emit(Insn::Jump(0));
            if let Some(at) = next_choice {
                let here = self.here();
                patch(&mut self.code, at, here);
            }
        }
        let end = self.here();
        for at in end_jumps {
            patch(&mut self.code, at, end);
        }
        Ok(())
    }

    fn lower_loop(&mut self, s: &Rc<VifNode>) -> Result<(), CgError> {
        let kind = s.str_field("kind").unwrap_or("forever");
        match kind {
            "forever" | "while" => {
                let start = self.here();
                self.loops.push(LoopPatches {
                    exits: Vec::new(),
                    nexts: Vec::new(),
                });
                let cond_jump = if kind == "while" {
                    self.expr(s.node_field("cond").expect("cond"))?;
                    let at = self.code.len();
                    self.emit(Insn::JumpIfFalse(0));
                    Some(at)
                } else {
                    None
                };
                for st in s.list_field("body") {
                    if let Some(n) = st.as_node() {
                        self.stmt(n)?;
                    }
                }
                self.emit(Insn::Jump(start));
                let end = self.here();
                if let Some(at) = cond_jump {
                    patch(&mut self.code, at, end);
                }
                let lp = self.loops.pop().expect("pushed above");
                for at in lp.exits {
                    patch(&mut self.code, at, end);
                }
                for at in lp.nexts {
                    patch(&mut self.code, at, start);
                }
            }
            "for" => {
                let var = s.node_field("var").expect("loop var");
                let range = s.node_field("cond").expect("loop range");
                let dir = Dir::decode(range.int_field("dir").unwrap_or(0));
                let slot = self.alloc(var.str_field("uid").unwrap_or("?"));
                let bound = self.next_slot;
                self.next_slot += 1;
                // var := left; bound := right.
                self.expr(range.node_field("left").expect("left"))?;
                self.emit(Insn::StoreVar(VarAddr { depth: 0, slot }));
                self.expr(range.node_field("right").expect("right"))?;
                self.emit(Insn::StoreVar(VarAddr {
                    depth: 0,
                    slot: bound,
                }));
                // loop: if var beyond bound → end
                let start = self.here();
                self.loops.push(LoopPatches {
                    exits: Vec::new(),
                    nexts: Vec::new(),
                });
                self.emit(Insn::LoadVar(VarAddr { depth: 0, slot }));
                self.emit(Insn::LoadVar(VarAddr {
                    depth: 0,
                    slot: bound,
                }));
                self.emit(Insn::Binop(match dir {
                    Dir::To => Op::Le,
                    Dir::Downto => Op::Ge,
                }));
                let at_end = self.code.len();
                self.emit(Insn::JumpIfFalse(0));
                for st in s.list_field("body") {
                    if let Some(n) = st.as_node() {
                        self.stmt(n)?;
                    }
                }
                // Increment. (`next` jumps here via LoopPatches.start set
                // to the check — approximation: next re-checks without
                // increment would loop forever, so point start at the
                // increment instead.)
                let incr = self.here();
                self.emit(Insn::LoadVar(VarAddr { depth: 0, slot }));
                self.emit(Insn::PushInt(1));
                self.emit(Insn::Binop(match dir {
                    Dir::To => Op::Add,
                    Dir::Downto => Op::Sub,
                }));
                self.emit(Insn::StoreVar(VarAddr { depth: 0, slot }));
                self.emit(Insn::Jump(start));
                let end = self.here();
                patch(&mut self.code, at_end, end);
                let lp = self.loops.pop().expect("pushed above");
                for at in lp.exits {
                    patch(&mut self.code, at, end);
                }
                // `next` in a for-loop proceeds to the increment.
                for at in lp.nexts {
                    patch(&mut self.code, at, incr);
                }
            }
            k => return Err(CgError::Unsupported(format!("loop kind {k}"))),
        }
        Ok(())
    }

    fn lower_wait(&mut self, s: &Rc<VifNode>) -> Result<(), CgError> {
        let mut sens: Vec<SigId> = Vec::new();
        for sv in s.list_field("sens") {
            if let Some(n) = sv.as_node() {
                sens.push(self.signal_of_deep(n)?);
            }
        }
        let cond = s.node_field("cond").cloned();
        // `wait until c` without an explicit sensitivity waits on the
        // signals of c.
        if sens.is_empty() {
            if let Some(c) = &cond {
                collect_signals(self, c, &mut sens)?;
            }
        }
        sens.sort();
        sens.dedup();
        let sens = Arc::new(sens);
        let timeout = s.node_field("timeout").cloned();
        let start = self.here();
        if let Some(t) = &timeout {
            self.expr(t)?;
        }
        self.emit(Insn::Wait {
            sens: Arc::clone(&sens),
            with_timeout: timeout.is_some(),
        });
        match cond {
            None => self.emit(Insn::Pop),
            Some(c) => {
                // timed_out on stack: if timed out, proceed; otherwise
                // re-check the condition and re-suspend when false.
                self.emit(Insn::Unop(Op::Not));
                let to_end = self.code.len();
                self.emit(Insn::JumpIfFalse(0));
                self.expr(&c)?;
                self.emit(Insn::JumpIfFalse(start));
                let end = self.here();
                patch(&mut self.code, to_end, end);
            }
        }
        Ok(())
    }

    /// Signal of a sensitivity entry (whole signal even for indexed
    /// prefixes).
    fn signal_of_deep(&mut self, ir: &Rc<VifNode>) -> Result<SigId, CgError> {
        match ir.kind() {
            "e.ref" => self.signal_of(ir),
            "e.index" | "e.slice" | "e.field" => {
                self.signal_of_deep(ir.node_field("base").expect("base"))
            }
            k => Err(CgError::Unsupported(format!("sensitivity {k}"))),
        }
    }
}

fn patch(code: &mut [Insn], at: usize, target: u32) {
    match &mut code[at] {
        Insn::Jump(t) | Insn::JumpIfFalse(t) => *t = target,
        _ => unreachable!("patching a non-jump"),
    }
}

/// Collects signals read by an expression (for implicit wait
/// sensitivities).
pub fn collect_signals(
    fl: &mut FnLower<'_>,
    ir: &Rc<VifNode>,
    out: &mut Vec<SigId>,
) -> Result<(), CgError> {
    if ir.kind_sym() == vhdl_vif::kinds::e_ref() {
        let obj = ir.node_field("obj").expect("ref");
        if obj.str_field("class") == Some("signal") {
            if let Ok(Storage::Signal(s)) = fl.storage_of(&Rc::clone(obj)) {
                out.push(s);
            }
        }
        return Ok(());
    }
    for (_, v) in ir.fields() {
        collect_signals_value(fl, v, out)?;
    }
    Ok(())
}

/// Control-flow summary of a lowered [`Program`]: basic-block counts
/// over every process and subprogram body, computed by the same leader
/// rule the kernel's compiled backend uses (entry, every jump target,
/// and the instruction after any control transfer start a block).
/// Reported under `vhdlc --trace-phases` so generated-code size can be
/// read at block granularity, not just instruction counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CfgStats {
    /// Process bodies summarized.
    pub processes: usize,
    /// Subprogram bodies summarized.
    pub functions: usize,
    /// Total instructions across all bodies.
    pub insns: usize,
    /// Total basic blocks across all bodies.
    pub blocks: usize,
    /// Longest single block, in instructions.
    pub max_block_len: usize,
}

/// Summarizes the control-flow graphs of every body in `p`.
pub fn cfg_stats(p: &Program) -> CfgStats {
    let mut st = CfgStats {
        processes: p.processes.len(),
        functions: p.functions.len(),
        ..CfgStats::default()
    };
    let bodies = p
        .processes
        .iter()
        .map(|pr| &pr.code[..])
        .chain(p.functions.iter().map(|f| &f.code[..]));
    for code in bodies {
        st.insns += code.len();
        let mut leader = vec![false; code.len() + 1];
        leader[0] = true;
        for (pc, insn) in code.iter().enumerate() {
            match insn {
                Insn::Jump(t) | Insn::JumpIfFalse(t) => {
                    leader[(*t as usize).min(code.len())] = true;
                    leader[pc + 1] = true;
                }
                Insn::Wait { .. } | Insn::Call(_) | Insn::Ret { .. } | Insn::Halt => {
                    leader[pc + 1] = true;
                }
                _ => {}
            }
        }
        let starts: Vec<usize> = (0..code.len()).filter(|&pc| leader[pc]).collect();
        st.blocks += starts.len();
        for (i, &s) in starts.iter().enumerate() {
            let end = starts.get(i + 1).copied().unwrap_or(code.len());
            st.max_block_len = st.max_block_len.max(end - s);
        }
    }
    st
}

fn collect_signals_value(
    fl: &mut FnLower<'_>,
    v: &vhdl_vif::VifValue,
    out: &mut Vec<SigId>,
) -> Result<(), CgError> {
    match v {
        vhdl_vif::VifValue::Node(n) if vhdl_vif::kinds::is_expr(n.kind_sym()) => {
            collect_signals(fl, n, out)
        }
        vhdl_vif::VifValue::List(l) => {
            for v in l.iter() {
                collect_signals_value(fl, v, out)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod cfg_tests {
    use super::*;

    #[test]
    fn cfg_stats_counts_oscillator_blocks() {
        let mut p = Program::default();
        let s = p.add_signal("clk", Val::Int(0));
        p.add_process(
            "osc",
            0,
            vec![
                Insn::LoadSig(s),
                Insn::Unop(Op::Not),
                Insn::PushInt(5),
                Insn::Sched {
                    sig: s,
                    transport: false,
                },
                Insn::Wait {
                    sens: Arc::new(vec![s]),
                    with_timeout: false,
                },
                Insn::Pop,
                Insn::Jump(0),
            ],
        );
        let st = cfg_stats(&p);
        assert_eq!(st.processes, 1);
        assert_eq!(st.functions, 0);
        assert_eq!(st.insns, 7);
        // Entry..Wait and resume..Jump: two blocks.
        assert_eq!(st.blocks, 2);
        assert_eq!(st.max_block_len, 5);
    }
}
