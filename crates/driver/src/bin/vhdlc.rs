//! `vhdlc` — the command-line compiler/simulator.
//!
//! ```text
//! vhdlc [--work DIR] [--jobs N] [--incremental]
//!       [--elab ENTITY[:ARCH]] [--config NAME]
//!       [--run TIME] [--backend interp|compiled] [--sim-jobs N] [--vcd FILE]
//!       [--emit-c FILE] [--stats] [--trace-phases] FILE...
//! ```
//!
//! Compiles each file into the work library (in order), optionally
//! elaborates a top unit, optionally simulates it. `--jobs N` switches to
//! batch mode: all files are dependency-staged together and analyzed
//! across N worker threads (`--jobs 0` = one per CPU), with identical
//! output for every N. `--incremental` skips units whose source and
//! dependency VIF are unchanged since the last compile into the same
//! `--work` library. `--backend compiled` runs the simulation on the
//! kernel's block-compiled backend instead of the instruction
//! interpreter (identical observable behavior, reported by the
//! `compiled_blocks`/`fallback_procs` counters under `--stats`).
//! `--sim-jobs N` executes each delta cycle's woken processes across N
//! kernel worker threads (`--sim-jobs 0` = one per CPU); VCD, stats,
//! and Name-Server counters are byte-identical at every count.
//! `--trace-phases` prints a per-phase
//! time/allocation table of the Fig. 1 pipeline (lex → principal AG →
//! exprEval cascade → VIF → elaboration/codegen → kernel) after the run.

use std::process::ExitCode;

use sim_kernel::{io::Vcd, Backend, Time};
use vhdl_driver::Compiler;

/// Counting allocator so `--trace-phases` can attribute heap traffic to
/// pipeline phases (it forwards to the system allocator; the counters are
/// two relaxed atomics, negligible against allocation cost).
#[global_allocator]
static ALLOC: ag_harness::alloc::CountingAlloc = ag_harness::alloc::CountingAlloc;

struct Args {
    work: Option<String>,
    jobs: Option<usize>,
    incremental: bool,
    elab: Option<(String, Option<String>)>,
    config: Option<String>,
    run_until: Option<Time>,
    backend: Backend,
    sim_jobs: usize,
    vcd: Option<String>,
    emit_c: Option<String>,
    stats: bool,
    trace_phases: bool,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        work: None,
        jobs: None,
        incremental: false,
        elab: None,
        config: None,
        run_until: None,
        backend: Backend::default(),
        sim_jobs: 1,
        vcd: None,
        emit_c: None,
        stats: false,
        trace_phases: false,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut grab = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--work" => out.work = Some(grab("--work")?),
            "--jobs" => {
                let n: usize = grab("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs needs a worker count".to_string())?;
                out.jobs = Some(if n == 0 {
                    std::thread::available_parallelism().map_or(1, |p| p.get())
                } else {
                    n
                });
            }
            "--incremental" => out.incremental = true,
            "--elab" => {
                let v = grab("--elab")?;
                let (e, a) = match v.split_once(':') {
                    Some((e, a)) => (e.to_string(), Some(a.to_string())),
                    None => (v, None),
                };
                out.elab = Some((e, a));
            }
            "--config" => out.config = Some(grab("--config")?),
            "--run" => {
                // VHDL-style time literal (`100ns`, `2.5us`, `1sec`); a
                // bare number keeps the historical nanosecond meaning.
                out.run_until =
                    Some(Time::parse(&grab("--run")?).map_err(|e| format!("--run: {e}"))?)
            }
            "--backend" => {
                out.backend = grab("--backend")?
                    .parse()
                    .map_err(|e: String| format!("--backend: {e}"))?
            }
            "--sim-jobs" => {
                let n: usize = grab("--sim-jobs")?
                    .parse()
                    .map_err(|_| "--sim-jobs needs a worker count".to_string())?;
                // 0 = one per CPU, like --jobs. Output is byte-identical
                // at any count; this only changes who executes a cycle.
                out.sim_jobs = if n == 0 {
                    std::thread::available_parallelism().map_or(1, |p| p.get())
                } else {
                    n
                };
            }
            "--vcd" => out.vcd = Some(grab("--vcd")?),
            "--emit-c" => out.emit_c = Some(grab("--emit-c")?),
            "--stats" => out.stats = true,
            "--trace-phases" => out.trace_phases = true,
            "--help" | "-h" => {
                println!(
                    "usage: vhdlc [--work DIR] [--jobs N] [--incremental] \
                     [--elab ENTITY[:ARCH]] [--config NAME] [--run TIME] \
                     [--backend interp|compiled] [--sim-jobs N] [--vcd FILE] \
                     [--emit-c FILE] [--stats] [--trace-phases] FILE..."
                );
                std::process::exit(0);
            }
            f if !f.starts_with('-') => out.files.push(f.to_string()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("vhdlc: {e}");
            return ExitCode::from(2);
        }
    };
    if args.trace_phases {
        ag_harness::trace::set_enabled(true);
    }
    let compiler = match &args.work {
        Some(dir) => match Compiler::on_disk(std::path::Path::new(dir)) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("vhdlc: cannot open work library: {e}");
                return ExitCode::from(2);
            }
        },
        None => Compiler::in_memory(),
    };

    let mut failed = false;
    let mut phases = vhdl_driver::PhaseTimes::default();
    if args.jobs.is_some() || args.incremental {
        // Batch mode: all files staged together, order-independent.
        let mut files = Vec::new();
        for f in &args.files {
            match std::fs::read_to_string(f) {
                Ok(s) => files.push((f.clone(), s)),
                Err(e) => {
                    eprintln!("vhdlc: {f}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        let opts = vhdl_driver::batch::BatchOptions {
            jobs: args.jobs.unwrap_or(1),
            incremental: args.incremental,
        };
        let r = compiler.compile_batch(&files, opts);
        let names: Vec<String> = files.iter().map(|(n, _)| n.clone()).collect();
        eprint!("{}", r.rendered_msgs(&names));
        failed = !r.ok();
        if args.stats {
            eprintln!(
                "batch: {} units in {} waves on {} workers, {} lines, wall {:?}, \
                 cache hit {} miss {} cold {}, vif read {} B written {} B",
                r.units.len(),
                r.waves,
                r.jobs,
                r.lines,
                r.wall,
                r.cache.hits,
                r.cache.misses,
                r.cache.cold,
                r.traffic.bytes_read,
                r.traffic.bytes_written
            );
        }
        let p = r.phases;
        phases.parse += p.parse;
        phases.attr_eval += p.attr_eval;
        phases.vif_read += p.vif_read;
        phases.vif_write += p.vif_write;
    } else {
        for f in &args.files {
            let src = match std::fs::read_to_string(f) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("vhdlc: {f}: {e}");
                    return ExitCode::from(2);
                }
            };
            match compiler.compile(&src) {
                Ok(r) => {
                    for m in r.msgs().to_vec() {
                        eprintln!("{f}:{m}");
                    }
                    if !r.ok() {
                        failed = true;
                    }
                    if args.stats {
                        eprintln!(
                            "{f}: {} lines, {:.0} lines/min, vif read {} B written {} B",
                            r.lines,
                            r.lines_per_minute(),
                            r.traffic.bytes_read,
                            r.traffic.bytes_written
                        );
                    }
                    let p = r.phases;
                    phases.parse += p.parse;
                    phases.attr_eval += p.attr_eval;
                    phases.vif_read += p.vif_read;
                    phases.vif_write += p.vif_write;
                }
                Err(e) => {
                    eprintln!("{f}: {e}");
                    failed = true;
                }
            }
        }
    }
    if failed {
        return ExitCode::from(1);
    }

    let program = if let Some(cfg) = &args.config {
        match compiler.elaborate_config(cfg) {
            Ok((p, c)) => Some((p, c)),
            Err(e) => {
                eprintln!("vhdlc: {e}");
                return ExitCode::from(1);
            }
        }
    } else if let Some((entity, arch)) = &args.elab {
        match compiler.elaborate(entity, arch.as_deref(), Some(&mut phases)) {
            Ok((p, c)) => Some((p, c)),
            Err(e) => {
                eprintln!("vhdlc: {e}");
                return ExitCode::from(1);
            }
        }
    } else {
        None
    };

    if args.stats {
        eprintln!(
            "phases: parse {:?} | attr-eval {:?} | vif-read {:?} | vif-write {:?} | codegen {:?} | backend {:?}",
            phases.parse, phases.attr_eval, phases.vif_read, phases.vif_write, phases.codegen,
            phases.backend
        );
        let vb = vhdl_vif::vifb_stats();
        eprintln!(
            "vifb: {} cache hits, {} misses, {} decodes, {} encodes, {} text parses",
            vb.cache_hits, vb.cache_misses, vb.decodes, vb.encodes, vb.text_parses
        );
    }
    if args.trace_phases {
        let vb = vhdl_vif::vifb_stats();
        ag_harness::trace::counter("vifb-cache-hit", vb.cache_hits);
        ag_harness::trace::counter("vifb-cache-miss", vb.cache_misses);
        ag_harness::trace::counter("vifb-decode", vb.decodes);
        ag_harness::trace::counter("vifb-encode", vb.encodes);
        ag_harness::trace::counter("vifb-text-parse", vb.text_parses);
    }

    if let Some((program, c_text)) = program {
        if let Some(path) = &args.emit_c {
            if let Err(e) = std::fs::write(path, &c_text) {
                eprintln!("vhdlc: {path}: {e}");
                return ExitCode::from(2);
            }
        }
        if args.trace_phases {
            let cfg = vhdl_codegen::cfg_stats(&program);
            ag_harness::trace::counter("codegen-cfg-blocks", cfg.blocks as u64);
            ag_harness::trace::counter("codegen-cfg-insns", cfg.insns as u64);
            ag_harness::trace::counter("codegen-cfg-max-block", cfg.max_block_len as u64);
        }
        if let Some(deadline) = args.run_until {
            let vcd = std::cell::RefCell::new(Vcd::new("1fs"));
            let mut sim = sim_kernel::Simulator::new(program);
            sim.set_backend(args.backend);
            sim.set_jobs(args.sim_jobs);
            if args.vcd.is_some() {
                let vcd_ref = &vcd;
                sim.observe(Box::new(move |t, sig, name, v| {
                    vcd_ref.borrow_mut().change(t, sig, name, v);
                }));
            }
            match sim.run_until(deadline) {
                Ok(()) => {
                    for r in sim.reports() {
                        let sev = ["note", "warning", "error", "failure"]
                            [r.severity.clamp(0, 3) as usize];
                        println!("{} {sev}: {}", r.time, r.text);
                    }
                    if args.stats {
                        let st = sim.stats();
                        eprintln!(
                            "sim: {} cycles ({} delta), {} events, {} transactions",
                            st.cycles, st.delta_cycles, st.events, st.transactions
                        );
                        eprintln!(
                            "sched: {} calendar ops, {} procs woken, {} signals scanned",
                            st.calendar_ops, st.woken_procs, st.scanned_signals
                        );
                        eprintln!(
                            "backend: {}, {} compiled_blocks, {} fallback_procs",
                            sim.backend(),
                            st.compiled_blocks,
                            st.fallback_procs
                        );
                    }
                }
                Err(e) => {
                    eprintln!("vhdlc: simulation: {e}");
                    return ExitCode::from(1);
                }
            }
            if args.trace_phases {
                let st = sim.stats();
                ag_harness::trace::counter("sched-calendar-ops", st.calendar_ops);
                ag_harness::trace::counter("sched-woken-procs", st.woken_procs);
                ag_harness::trace::counter("sched-scanned-signals", st.scanned_signals);
                ag_harness::trace::counter("backend-compiled-blocks", st.compiled_blocks);
                ag_harness::trace::counter("backend-fallback-procs", st.fallback_procs);
            }
            if let Some(path) = &args.vcd {
                let text = vcd.borrow().finish();
                if let Err(e) = std::fs::write(path, text) {
                    eprintln!("vhdlc: {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }

    if args.trace_phases {
        let interner = ag_intern::stats();
        ag_harness::trace::counter("interner-symbols", interner.symbols);
        ag_harness::trace::counter("interner-bytes", interner.bytes);
        ag_harness::trace::counter("interner-hits", interner.hits);
        eprint!("{}", ag_harness::trace::report().render());
    }
    ExitCode::SUCCESS
}
