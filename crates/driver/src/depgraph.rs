//! The design-unit dependency graph behind batch compilation.
//!
//! The paper's §2 architecture makes the VIF the separate-compilation
//! interchange format: a unit's analysis needs only the *VIF* of the units
//! it references, never their source. That is exactly the property a batch
//! scheduler needs — the graph of "which unit's VIF does this unit read"
//! is extracted here from **parsed but unanalyzed** units (token-level
//! patterns over the CST leaves), topologically staged into waves, and
//! executed by [`crate::batch`] with every wave's units analyzed in
//! parallel.
//!
//! Dependencies that name no unit in the batch fall back to a library
//! lookup: a unit already analyzed into the work library satisfies the
//! edge without scheduling anything (and contributes its VIF-text hash to
//! the dependent's incremental stamp). Names found in neither place add no
//! edge — analysis itself reports undefined references, exactly as the
//! sequential driver would.

use vhdl_syntax::{Pos, SrcTok, TokenKind};

/// Metadata of one parsed, not-yet-analyzed design unit.
#[derive(Clone, Debug)]
pub struct UnitMeta {
    /// Index of the source file in the batch's input order.
    pub file: usize,
    /// Index of the unit within its file.
    pub unit_in_file: usize,
    /// Best-effort library key (`entity.x`, `arch.x.rtl`, `pkg.p`,
    /// `pkgbody.p`, `config.c`); empty when the header shape is
    /// unrecognizable (analysis will diagnose it).
    pub key: String,
    /// Resolved dependency keys, sorted and deduplicated: units of this
    /// batch plus units satisfied from the library.
    pub deps: Vec<String>,
    /// FNV-1a hash of the unit's token run (kind + spelling) — the source
    /// half of the incremental stamp. Whitespace and comments don't lex,
    /// so touching only those leaves the hash unchanged.
    pub src_hash: u64,
    /// Position of the unit's first token (for diagnostics).
    pub pos: Pos,
}

/// The staged graph: units, wave assignment, and any dependency cycles.
#[derive(Debug)]
pub struct DepGraph {
    /// One entry per unit, in batch input order.
    pub units: Vec<UnitMeta>,
    /// Batch-internal dependency edges: `edges[i]` lists unit indices that
    /// must be committed before unit `i` is analyzed.
    pub edges: Vec<Vec<usize>>,
    /// Wave partition: `waves[w]` holds unit indices (ascending, i.e.
    /// input order) whose dependencies all lie in waves `< w`.
    pub waves: Vec<Vec<usize>>,
    /// Units trapped in dependency cycles, with a rendered cycle path per
    /// group (they are never scheduled; the driver turns each group into a
    /// diagnostic).
    pub cycles: Vec<(Vec<usize>, String)>,
}

/// 64-bit FNV-1a over a byte stream (same constants as
/// `ag_harness::rng::fnv1a`, here fed incrementally).
pub fn fnv1a_bytes(h: u64, bytes: &[u8]) -> u64 {
    let mut h = if h == 0 { 0xcbf2_9ce4_8422_2325 } else { h };
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Signature of a batch input set: file names and sources, separated and
/// length-framed so adjacent entries can't alias. Keys the driver's batch
/// plan cache — two calls with equal signatures parsed the same inputs.
pub fn files_signature(files: &[(String, String)]) -> u64 {
    let mut h = fnv1a_bytes(0, &(files.len() as u64).to_le_bytes());
    for (name, src) in files {
        h = fnv1a_bytes(h, &(name.len() as u64).to_le_bytes());
        h = fnv1a_bytes(h, name.as_bytes());
        h = fnv1a_bytes(h, &(src.len() as u64).to_le_bytes());
        h = fnv1a_bytes(h, src.as_bytes());
    }
    h
}

/// Hash of a unit's token run: every token's kind name and spelling,
/// separated so adjacent tokens can't alias.
pub fn src_hash(toks: &[SrcTok]) -> u64 {
    let mut h = 0u64;
    for t in toks {
        h = fnv1a_bytes(h, t.kind.name().as_bytes());
        h = fnv1a_bytes(h, &[0x1f]);
        h = fnv1a_bytes(h, t.text.as_str().as_bytes());
        h = fnv1a_bytes(h, &[0x1e]);
    }
    h
}

/// Skips a context clause (`library ...;` / `use ...;` runs) and returns
/// the index of the unit header keyword.
fn skip_context_clause(toks: &[SrcTok]) -> usize {
    let mut i = 0;
    while i < toks.len() && matches!(toks[i].kind, TokenKind::KwLibrary | TokenKind::KwUse) {
        while i < toks.len() && toks[i].kind != TokenKind::Semi {
            i += 1;
        }
        i += 1; // past the ';'
    }
    i
}

fn ident(toks: &[SrcTok], i: usize) -> Option<&str> {
    toks.get(i)
        .filter(|t| t.kind == TokenKind::Id)
        .map(|t| t.text.as_str())
}

/// Best-effort library key of a parsed unit, from its header tokens. The
/// same keys [`vhdl_sem::analyze::unit_key`] derives after analysis —
/// deriving them *before* analysis is what lets the scheduler know what a
/// unit will provide.
pub fn header_key(toks: &[SrcTok]) -> String {
    let i = skip_context_clause(toks);
    match toks.get(i).map(|t| t.kind) {
        Some(TokenKind::KwEntity) => match ident(toks, i + 1) {
            Some(name) => format!("entity.{name}"),
            None => String::new(),
        },
        Some(TokenKind::KwArchitecture) => {
            match (
                ident(toks, i + 1),
                toks.get(i + 2).map(|t| t.kind),
                ident(toks, i + 3),
            ) {
                (Some(arch), Some(TokenKind::KwOf), Some(entity)) => {
                    format!("arch.{entity}.{arch}")
                }
                _ => String::new(),
            }
        }
        Some(TokenKind::KwPackage) => {
            if toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::KwBody) {
                match ident(toks, i + 2) {
                    Some(name) => format!("pkgbody.{name}"),
                    None => String::new(),
                }
            } else {
                match ident(toks, i + 1) {
                    Some(name) => format!("pkg.{name}"),
                    None => String::new(),
                }
            }
        }
        Some(TokenKind::KwConfiguration) => match ident(toks, i + 1) {
            Some(name) => format!("config.{name}"),
            None => String::new(),
        },
        _ => String::new(),
    }
}

/// Candidate dependency keys a unit's token run names, *before* any
/// resolution against the batch or library:
///
/// - `architecture a of e` / `configuration c of e` → `entity.e`
/// - `package body p` → `pkg.p`
/// - `use lib.p` (p ≠ `all`) → `pkg.p`
/// - `entity [lib.]e(a)` (direct binding indications) → `entity.e` and
///   `arch.e.a`
/// - any identifier spelling a package name → `pkg.<id>` (covers selected
///   names like `math.square`; filtered against known packages later)
pub fn candidate_deps(toks: &[SrcTok]) -> Vec<String> {
    let mut out = Vec::new();
    let header = skip_context_clause(toks);
    let mut i = 0;
    while i < toks.len() {
        match toks[i].kind {
            TokenKind::KwOf => {
                if let Some(e) = ident(toks, i + 1) {
                    out.push(format!("entity.{e}"));
                }
            }
            TokenKind::KwPackage if toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::KwBody) => {
                if let Some(p) = ident(toks, i + 2) {
                    out.push(format!("pkg.{p}"));
                }
            }
            TokenKind::KwUse => {
                // use <lib> . <name> [. ...] ;
                if let (Some(_lib), Some(TokenKind::Dot), Some(name)) = (
                    ident(toks, i + 1),
                    toks.get(i + 2).map(|t| t.kind),
                    ident(toks, i + 3),
                ) {
                    if name != "all" {
                        out.push(format!("pkg.{name}"));
                    }
                }
            }
            // `entity work.e(a)` in binding indications and direct
            // instantiation — but not this unit's own `entity e is` /
            // `end entity` header tokens.
            TokenKind::KwEntity
                if i != header && (i == 0 || toks[i - 1].kind != TokenKind::KwEnd) =>
            {
                let (e, after) = match (
                    ident(toks, i + 1),
                    toks.get(i + 2).map(|t| t.kind),
                    ident(toks, i + 3),
                ) {
                    (Some(_lib), Some(TokenKind::Dot), Some(e)) => (Some(e), i + 4),
                    (e, _, _) => (e, i + 2),
                };
                if let Some(e) = e {
                    out.push(format!("entity.{e}"));
                    if toks.get(after).map(|t| t.kind) == Some(TokenKind::LParen) {
                        if let (Some(a), Some(TokenKind::RParen)) =
                            (ident(toks, after + 1), toks.get(after + 2).map(|t| t.kind))
                        {
                            out.push(format!("arch.{e}.{a}"));
                        }
                    }
                }
            }
            // Any identifier that spells a package name (selected names,
            // plain calls of use-d subprograms); resolved later.
            TokenKind::Id => out.push(format!("pkg.{}", toks[i].text.as_str())),
            _ => {}
        }
        i += 1;
    }
    out
}

/// Builds the staged dependency graph for one batch.
///
/// `units` holds, per unit in input order, `(file, unit_in_file, tokens)`.
/// `in_library` answers whether a key is already satisfied by the library
/// universe (the missing-unit fallback).
pub fn build(units: &[(usize, usize, Vec<SrcTok>)], in_library: &dyn Fn(&str) -> bool) -> DepGraph {
    let metas_raw: Vec<(String, Vec<String>, u64, Pos)> = units
        .iter()
        .map(|(_, _, toks)| {
            (
                header_key(toks),
                candidate_deps(toks),
                src_hash(toks),
                toks.first().map(|t| t.pos).unwrap_or_default(),
            )
        })
        .collect();

    // What the batch provides: key → unit indices, in input order.
    let mut providers: std::collections::HashMap<&str, Vec<usize>> =
        std::collections::HashMap::new();
    for (i, (key, _, _, _)) in metas_raw.iter().enumerate() {
        if !key.is_empty() {
            providers.entry(key.as_str()).or_default().push(i);
        }
    }

    let mut metas = Vec::with_capacity(units.len());
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); units.len()];
    for (i, (key, cands, hash, pos)) in metas_raw.iter().enumerate() {
        let mut deps: Vec<String> = Vec::new();
        for cand in cands {
            if cand == key {
                continue;
            }
            if let Some(ps) = providers.get(cand.as_str()) {
                deps.push(cand.clone());
                edges[i].extend(ps.iter().copied().filter(|&p| p != i));
            } else if in_library(cand) {
                // Missing-unit fallback: satisfied by an already-compiled
                // library unit; no edge, but it still stamps the unit.
                deps.push(cand.clone());
            }
        }
        deps.sort();
        deps.dedup();
        metas.push(UnitMeta {
            file: units[i].0,
            unit_in_file: units[i].1,
            key: key.clone(),
            deps,
            src_hash: *hash,
            pos: *pos,
        });
    }

    // Serialization chains keep the library history deterministic:
    // recompiles of the same key, and the architectures of one entity
    // (whose relative history order decides §3.3 default binding), commit
    // in input order.
    let mut chains: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for (i, m) in metas.iter().enumerate() {
        if m.key.is_empty() {
            continue;
        }
        let class = match m.key.split_once('.') {
            Some(("arch", rest)) => match rest.split_once('.') {
                Some((entity, _)) => format!("archof.{entity}"),
                None => m.key.clone(),
            },
            _ => m.key.clone(),
        };
        if let Some(&prev) = chains.get(&class) {
            edges[i].push(prev);
        }
        chains.insert(class, i);
    }
    for e in &mut edges {
        e.sort_unstable();
        e.dedup();
    }

    // Wave = longest dependency path; cycle members get no wave.
    const UNVISITED: i64 = -1;
    const VISITING: i64 = -2;
    const CYCLIC: i64 = -3;
    let mut depth = vec![UNVISITED; metas.len()];
    let mut cycles: Vec<(Vec<usize>, String)> = Vec::new();
    fn visit(
        i: usize,
        edges: &[Vec<usize>],
        metas: &[UnitMeta],
        depth: &mut [i64],
        cycles: &mut Vec<(Vec<usize>, String)>,
        stack: &mut Vec<usize>,
    ) -> i64 {
        match depth[i] {
            VISITING => {
                // Found a cycle: everything on the stack from `i` on.
                let start = stack.iter().rposition(|&s| s == i).unwrap_or(0);
                let members: Vec<usize> = stack[start..].to_vec();
                let mut path: Vec<&str> = members.iter().map(|&m| metas[m].key.as_str()).collect();
                path.push(metas[i].key.as_str());
                for &m in &members {
                    depth[m] = CYCLIC;
                }
                cycles.push((members, path.join(" -> ")));
                return CYCLIC;
            }
            UNVISITED => {}
            d => return d,
        }
        depth[i] = VISITING;
        stack.push(i);
        let mut d = 0i64;
        let mut cyclic = false;
        for &p in &edges[i] {
            match visit(p, edges, metas, depth, cycles, stack) {
                CYCLIC => cyclic = true,
                pd => d = d.max(pd + 1),
            }
        }
        stack.pop();
        if depth[i] == CYCLIC || cyclic {
            // Either this unit was marked as a cycle member while its
            // children were visited, or it depends on one: exclude it from
            // scheduling (analysis of dependents would see no VIF anyway).
            if depth[i] != CYCLIC {
                depth[i] = CYCLIC;
                cycles.last_mut().expect("a cycle was recorded").0.push(i);
            }
            return CYCLIC;
        }
        depth[i] = d;
        d
    }
    for i in 0..metas.len() {
        let mut stack = Vec::new();
        visit(i, &edges, &metas, &mut depth, &mut cycles, &mut stack);
    }

    let max_depth = depth
        .iter()
        .copied()
        .filter(|&d| d >= 0)
        .max()
        .unwrap_or(-1);
    let mut waves: Vec<Vec<usize>> = vec![Vec::new(); (max_depth + 1) as usize];
    for (i, &d) in depth.iter().enumerate() {
        if d >= 0 {
            waves[d as usize].push(i);
        }
    }

    DepGraph {
        units: metas,
        edges,
        waves,
        cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vhdl_sem::analyze::collect_toks;
    use vhdl_sem::env::EnvKind;

    fn toks_of(src: &str) -> Vec<(usize, usize, Vec<SrcTok>)> {
        let an = vhdl_sem::analyze::Analyzer::new(EnvKind::Tree);
        let units = an.parse_units(src).expect("parses");
        units
            .iter()
            .enumerate()
            .map(|(u, cst)| {
                let mut t = Vec::new();
                collect_toks(cst, &mut t);
                (0, u, t)
            })
            .collect()
    }

    const DESIGN: &str = "
        package consts is
          constant k : integer := 3;
        end consts;
        entity e is port (q : out integer); end e;
        use work.consts.all;
        architecture rtl of e is
        begin
          q <= k;
        end rtl;
    ";

    #[test]
    fn keys_and_edges_from_headers() {
        let units = toks_of(DESIGN);
        let g = build(&units, &|_| false);
        let keys: Vec<&str> = g.units.iter().map(|m| m.key.as_str()).collect();
        assert_eq!(keys, ["pkg.consts", "entity.e", "arch.e.rtl"]);
        assert!(g.cycles.is_empty());
        // pkg and entity are independent (wave 0); the arch needs both.
        assert_eq!(g.waves, vec![vec![0, 1], vec![2]]);
        assert_eq!(g.units[2].deps, vec!["entity.e", "pkg.consts"]);
    }

    #[test]
    fn out_of_order_input_is_staged_correctly() {
        // Architecture first, entity last: sequential compilation would
        // fail, the scheduler reorders.
        let units = toks_of(
            "architecture rtl of e is begin q <= 1; end rtl;
             entity e is port (q : out integer); end e;",
        );
        let g = build(&units, &|_| false);
        assert_eq!(g.waves, vec![vec![1], vec![0]]);
    }

    #[test]
    fn library_fallback_and_missing_units() {
        let units = toks_of(
            "use work.oldpkg.all;
             entity e is port (q : out integer); end e;",
        );
        // `oldpkg` is not in the batch; with a library hit it becomes a
        // stamped dependency without an edge…
        let g = build(&units, &|k| k == "pkg.oldpkg");
        assert_eq!(g.units[0].deps, vec!["pkg.oldpkg"]);
        assert_eq!(g.waves, vec![vec![0]]);
        // …and with no library hit it is simply not a dependency (analysis
        // will report the undefined name).
        let g = build(&units, &|_| false);
        assert!(g.units[0].deps.is_empty());
    }

    #[test]
    fn cycle_is_reported_not_hung() {
        let units = toks_of(
            "use work.b.all;
             package a is constant x : integer := 1; end a;
             use work.a.all;
             package b is constant y : integer := 2; end b;",
        );
        let g = build(&units, &|_| false);
        assert_eq!(g.cycles.len(), 1);
        let (members, path) = &g.cycles[0];
        assert_eq!(members.len(), 2);
        assert!(path.contains("pkg.a") && path.contains("pkg.b"), "{path}");
        assert!(g.waves.iter().all(|w| w.is_empty()));
    }

    #[test]
    fn architectures_of_one_entity_serialize_in_input_order() {
        let units = toks_of(
            "entity e is end e;
             architecture a1 of e is begin end a1;
             architecture a2 of e is begin end a2;",
        );
        let g = build(&units, &|_| false);
        // a2 must land in a later wave than a1 so the history's
        // latest-architecture answer matches sequential compilation.
        let wave_of = |i: usize| g.waves.iter().position(|w| w.contains(&i)).unwrap();
        assert!(wave_of(2) > wave_of(1));
        assert!(wave_of(1) > wave_of(0));
    }

    #[test]
    fn src_hash_ignores_whitespace_only_changes() {
        let a = toks_of("entity e is end e;");
        let b = toks_of("entity   e  is\n\n  end e ;  -- comment");
        assert_eq!(a[0].2.len(), b[0].2.len());
        assert_eq!(src_hash(&a[0].2), src_hash(&b[0].2));
        let c = toks_of("entity f is end f;");
        assert_ne!(src_hash(&a[0].2), src_hash(&c[0].2));
    }

    #[test]
    fn direct_binding_indication_adds_entity_and_arch_deps() {
        let units = toks_of(
            "entity inv is port (i : in bit; o : out bit); end inv;
             architecture fast of inv is begin o <= not i; end fast;
             entity pair is end pair;
             architecture s of pair is
               component inv port (i : in bit; o : out bit); end component;
               signal a, b : bit := '0';
               for u1 : inv use entity work.inv(fast);
             begin
               u1 : inv port map (i => a, o => b);
             end s;",
        );
        let g = build(&units, &|_| false);
        let arch = &g.units[3];
        assert!(
            arch.deps.contains(&"entity.inv".to_string()),
            "{:?}",
            arch.deps
        );
        assert!(
            arch.deps.contains(&"arch.inv.fast".to_string()),
            "{:?}",
            arch.deps
        );
        let wave_of = |i: usize| g.waves.iter().position(|w| w.contains(&i)).unwrap();
        assert!(wave_of(3) > wave_of(1));
    }
}
