//! The compiler driver: files → units → analysis → VIF → code generation,
//! with the per-phase timing instrumentation behind the paper's §2.2
//! performance discussion (lines/minute, VIF read/write share, attribute
//! evaluation share, backend share).

pub mod batch;
pub mod depgraph;

use std::cell::RefCell;
use std::rc::Rc;
use std::time::{Duration, Instant};

use sim_kernel::{Program, Simulator};
use vhdl_sem::analyze::{AnalyzedUnit, Analyzer, UnitLoader};
use vhdl_sem::env::EnvKind;
use vhdl_sem::msg::Msgs;
use vhdl_syntax::FrontError;
use vhdl_vif::{Library, LibrarySet, VifNode, VifTraffic};

/// Wall-clock time spent per compiler phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Scanning + LALR parsing.
    pub parse: Duration,
    /// Attribute evaluation (analysis minus VIF reading).
    pub attr_eval: Duration,
    /// Reading (and fixing up) foreign VIF.
    pub vif_read: Duration,
    /// Writing VIF for compiled units.
    pub vif_write: Duration,
    /// Elaboration + lowering to kernel programs.
    pub codegen: Duration,
    /// Emitting the C rendition (the "host C compile" stand-in).
    pub backend: Duration,
}

impl PhaseTimes {
    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.parse + self.attr_eval + self.vif_read + self.vif_write + self.codegen + self.backend
    }

    /// Percentage of the total for a phase duration.
    pub fn pct(&self, d: Duration) -> f64 {
        let t = self.total().as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            d.as_secs_f64() / t * 100.0
        }
    }
}

/// A loader wrapper that accumulates time spent reading VIF.
pub(crate) struct TimedLoader {
    pub(crate) inner: Rc<LibrarySet>,
    pub(crate) spent: Rc<RefCell<Duration>>,
}

impl UnitLoader for TimedLoader {
    fn load_unit(&self, lib: &str, key: &str) -> Option<Rc<VifNode>> {
        let t0 = Instant::now();
        let r = self.inner.load_unit(lib, key);
        *self.spent.borrow_mut() += t0.elapsed();
        r
    }

    fn latest_architecture(&self, entity: &str) -> Option<String> {
        self.inner.latest_architecture(entity)
    }

    fn unit_keys(&self, lib: &str) -> Vec<String> {
        self.inner.unit_keys(lib)
    }
}

/// Result of compiling one source file.
#[derive(Debug)]
pub struct CompileResult {
    /// Units in file order.
    pub units: Vec<AnalyzedUnit>,
    /// Phase timings.
    pub phases: PhaseTimes,
    /// Source lines compiled (non-blank, the paper's convention).
    pub lines: usize,
    /// VIF traffic during this compilation.
    pub traffic: VifTraffic,
}

impl CompileResult {
    /// All diagnostics.
    pub fn msgs(&self) -> Msgs {
        let mut m = Msgs::none();
        for u in &self.units {
            m = Msgs::concat(&m, &u.msgs);
        }
        m
    }

    /// `true` when every unit analyzed cleanly.
    pub fn ok(&self) -> bool {
        self.units.iter().all(|u| !u.msgs.has_errors())
    }

    /// Source lines per minute — the paper's headline throughput metric.
    pub fn lines_per_minute(&self) -> f64 {
        let secs = self.phases.total().as_secs_f64();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            self.lines as f64 / secs * 60.0
        }
    }
}

/// The compiler: an analyzer plus a library universe.
pub struct Compiler {
    /// The reusable analyzer (grammar tables + AGs).
    pub analyzer: Analyzer,
    /// Work + reference libraries.
    pub libs: Rc<LibrarySet>,
    /// Memoized batch front halves (parse trees + staged dep graphs); a
    /// warm [`Compiler::compile_batch`] over unchanged files and libraries
    /// skips parsing and graph staging entirely.
    pub plans: RefCell<batch::PlanCache>,
}

impl Compiler {
    /// An in-memory compiler (tests, benches).
    pub fn in_memory() -> Compiler {
        Compiler {
            analyzer: Analyzer::new(EnvKind::Tree),
            libs: Rc::new(LibrarySet::new(Rc::new(Library::in_memory("work")), vec![])),
            plans: RefCell::new(batch::PlanCache::default()),
        }
    }

    /// A compiler with the given environment representation (the E7
    /// ablation knob).
    pub fn with_env_kind(kind: EnvKind) -> Compiler {
        Compiler {
            analyzer: Analyzer::new(kind),
            libs: Rc::new(LibrarySet::new(Rc::new(Library::in_memory("work")), vec![])),
            plans: RefCell::new(batch::PlanCache::default()),
        }
    }

    /// A compiler over an on-disk work library.
    ///
    /// # Errors
    ///
    /// I/O errors opening the library.
    pub fn on_disk(dir: &std::path::Path) -> Result<Compiler, vhdl_vif::VifError> {
        Ok(Compiler {
            analyzer: Analyzer::new(EnvKind::Tree),
            libs: Rc::new(LibrarySet::new(
                Rc::new(Library::on_disk("work", dir)?),
                vec![],
            )),
            plans: RefCell::new(batch::PlanCache::default()),
        })
    }

    /// Compiles a source string: parse, analyze each unit, store passing
    /// units, with phase timing.
    ///
    /// # Errors
    ///
    /// Front-end (scan/parse) errors; semantic errors are carried per
    /// unit.
    pub fn compile(&self, src: &str) -> Result<CompileResult, FrontError> {
        let _t = ag_harness::trace::span("compile");
        let mut phases = PhaseTimes::default();
        self.libs.reset_traffic();
        let t0 = Instant::now();
        let units = {
            let _t = ag_harness::trace::span("parse");
            self.analyzer.parse_units(src)?
        };
        phases.parse = t0.elapsed();

        let read_spent = Rc::new(RefCell::new(Duration::ZERO));
        let loader = Rc::new(TimedLoader {
            inner: Rc::clone(&self.libs),
            spent: Rc::clone(&read_spent),
        });
        let mut out = Vec::new();
        for u in &units {
            let t0 = Instant::now();
            let au = self
                .analyzer
                .analyze_unit_with_loader(u, Rc::clone(&loader) as Rc<dyn UnitLoader>);
            let analysis = t0.elapsed();
            let read = std::mem::take(&mut *read_spent.borrow_mut());
            phases.vif_read += read;
            phases.attr_eval += analysis.saturating_sub(read);
            if !au.msgs.has_errors() && !au.key.is_empty() {
                let t0 = Instant::now();
                let _ = self.libs.work().put(&au.key, &au.node);
                phases.vif_write += t0.elapsed();
            }
            out.push(au);
        }
        let lines = src.lines().filter(|l| !l.trim().is_empty()).count();
        Ok(CompileResult {
            units: out,
            phases,
            lines,
            traffic: self.libs.traffic(),
        })
    }

    /// Elaborates `entity(arch)` (or latest architecture) and emits the C
    /// rendition, timing the codegen/backend phases into `phases`.
    ///
    /// # Errors
    ///
    /// Elaboration/lowering errors.
    pub fn elaborate(
        &self,
        entity: &str,
        arch: Option<&str>,
        phases: Option<&mut PhaseTimes>,
    ) -> Result<(Program, String), vhdl_codegen::ElabError> {
        let t0 = Instant::now();
        let program = vhdl_codegen::elaborate(&self.libs, entity, arch)?;
        let codegen = t0.elapsed();
        let t0 = Instant::now();
        let c = vhdl_codegen::emit_c(entity, &program);
        let backend = t0.elapsed();
        if let Some(p) = phases {
            p.codegen += codegen;
            p.backend += backend;
        }
        Ok((program, c))
    }

    /// Elaborates through a configuration unit.
    ///
    /// # Errors
    ///
    /// Elaboration/lowering errors.
    pub fn elaborate_config(
        &self,
        config: &str,
    ) -> Result<(Program, String), vhdl_codegen::ElabError> {
        let program = vhdl_codegen::elaborate_config(&self.libs, config)?;
        let c = vhdl_codegen::emit_c(config, &program);
        Ok((program, c))
    }

    /// One-stop helper: compile `src`, elaborate `entity`, and return a
    /// ready simulator.
    ///
    /// # Errors
    ///
    /// Returns the first front-end, semantic, or elaboration problem as a
    /// string (examples and tests want one error channel).
    pub fn simulate(&self, src: &str, entity: &str) -> Result<Simulator<'static>, String> {
        let r = self.compile(src).map_err(|e| e.to_string())?;
        if !r.ok() {
            return Err(r.msgs().to_string());
        }
        let (program, _) = self
            .elaborate(entity, None, None)
            .map_err(|e| e.to_string())?;
        Ok(Simulator::new(program))
    }
}

impl Default for Compiler {
    fn default() -> Self {
        Self::in_memory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_times_percentages() {
        let p = PhaseTimes {
            parse: Duration::from_millis(10),
            attr_eval: Duration::from_millis(30),
            vif_read: Duration::from_millis(40),
            vif_write: Duration::from_millis(10),
            codegen: Duration::from_millis(5),
            backend: Duration::from_millis(5),
        };
        assert_eq!(p.total(), Duration::from_millis(100));
        assert!((p.pct(p.vif_read) - 40.0).abs() < 1e-9);
    }
}
