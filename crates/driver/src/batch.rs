//! Parallel, incremental batch compilation over the VIF library.
//!
//! The paper's §2 architecture makes the VIF the only interface between
//! separately-compiled units, which licenses two things the sequential
//! driver never exploited:
//!
//! 1. **Parallelism.** Units whose VIF dependencies are already committed
//!    can be analyzed concurrently. The batch compiler stages the
//!    [`crate::depgraph`] into waves and runs each wave across a fixed
//!    pool of `std::thread` workers. Workers exchange only plain text with
//!    the coordinator (source in, VIF text + diagnostics out) — the
//!    `Rc`-based analyzer, environments, and VIF graphs never cross a
//!    thread boundary. Each worker rebuilds the work library from a
//!    [`LibrarySnapshot`] and receives the committed texts of every
//!    finished wave, so all units of a wave observe exactly the
//!    wave-start library state regardless of worker count — that is the
//!    determinism contract the property suite checks: `--jobs 1` and
//!    `--jobs N` produce byte-identical VIF and identical diagnostics.
//! 2. **Incrementality.** Each committed unit is stamped with a content
//!    hash of its source token run combined with the hashes of its
//!    dependencies' *VIF texts*. VIF text (not symbol ids or node
//!    addresses) is the hash input because it is the stable on-disk
//!    interchange form: interner ids differ between processes and between
//!    thread interleavings, the text never does. On a warm run a unit
//!    whose recomputed stamp matches its stored stamp is skipped; a
//!    changed package re-analyzes exactly its transitive dependents,
//!    because the dependents' stamps absorb the new VIF text hash — and a
//!    change that leaves a unit's VIF text identical (a comment, a
//!    body-local rename) cuts the invalidation off early.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use vhdl_sem::analyze::{collect_toks, Analyzer, UnitLoader};
use vhdl_sem::msg::{Msg, Severity};
use vhdl_syntax::{Cst, SrcTok};
use vhdl_vif::{encode_vifb, write_vif, Library, LibrarySet, LibrarySnapshot, VifTraffic};

use crate::depgraph::{self, fnv1a_bytes};
use crate::{Compiler, PhaseTimes, TimedLoader};

/// Options of one batch compilation.
#[derive(Clone, Copy, Debug)]
pub struct BatchOptions {
    /// Worker count; `<= 1` analyzes inline on the calling thread (same
    /// schedule, same commit order — the determinism baseline).
    pub jobs: usize,
    /// Skip units whose incremental stamp matches the library's.
    pub incremental: bool,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            jobs: 1,
            incremental: false,
        }
    }
}

/// Hit/miss/cold counters of the incremental cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Stamp present and equal: analysis skipped.
    pub hits: u64,
    /// Stamp present but stale (source or a dependency changed).
    pub misses: u64,
    /// No stamp recorded (never compiled, or last compile failed).
    pub cold: u64,
}

impl CacheStats {
    /// Units whose analysis was skipped.
    pub fn skipped(&self) -> u64 {
        self.hits
    }

    /// Units that were (re)analyzed.
    pub fn analyzed(&self) -> u64 {
        self.misses + self.cold
    }

    /// Hit rate over all scheduled units.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.analyzed();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Outcome of one design unit in a batch.
#[derive(Clone, Debug)]
pub struct BatchUnit {
    /// Input file index.
    pub file: usize,
    /// Unit index within the file.
    pub unit_in_file: usize,
    /// Library key (empty when the unit produced none).
    pub key: String,
    /// Wave the unit ran in; `None` for cycle members (never scheduled).
    pub wave: Option<usize>,
    /// `true` when the incremental stamp matched and analysis was skipped.
    pub skipped: bool,
    /// Diagnostics, in source order.
    pub msgs: Vec<Msg>,
    /// Cascade invocations while analyzing (0 when skipped).
    pub expr_evals: u64,
}

/// Result of one batch compilation.
#[derive(Debug)]
pub struct BatchResult {
    /// Per-unit outcomes, in input order.
    pub units: Vec<BatchUnit>,
    /// Files that failed to scan/parse: `(file index, error)`.
    pub front_errors: Vec<(usize, String)>,
    /// Aggregated phase times (CPU-summed across workers, so under
    /// `--jobs N` this can exceed wall-clock).
    pub phases: PhaseTimes,
    /// Incremental cache counters.
    pub cache: CacheStats,
    /// Number of waves executed.
    pub waves: usize,
    /// Worker count used.
    pub jobs: usize,
    /// Non-blank source lines across all files.
    pub lines: usize,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// VIF traffic on the coordinator's libraries during the batch.
    pub traffic: VifTraffic,
}

impl BatchResult {
    /// `true` when every file parsed and every unit analyzed cleanly.
    pub fn ok(&self) -> bool {
        self.front_errors.is_empty() && self.units.iter().all(|u| !has_errors(&u.msgs))
    }

    /// All diagnostics rendered with their file name, in input order —
    /// the byte-comparable form the determinism suite uses.
    pub fn rendered_msgs(&self, file_names: &[String]) -> String {
        let mut out = String::new();
        for (i, e) in &self.front_errors {
            out.push_str(&format!("{}: {e}\n", file_names[*i]));
        }
        for u in &self.units {
            for m in &u.msgs {
                out.push_str(&format!("{}:{m}\n", file_names[u.file]));
            }
        }
        out
    }
}

fn has_errors(msgs: &[Msg]) -> bool {
    msgs.iter().any(|m| m.severity == Severity::Error)
}

/// One scheduled analysis job.
#[derive(Clone, Copy, Debug)]
struct Job {
    global: usize,
    file: usize,
    unit_in_file: usize,
}

/// Coordinator → worker messages. Only text (and shared `Arc<str>` text)
/// crosses the boundary.
enum ToWorker {
    /// (Re)initialize for a new batch: fresh mirror library from the
    /// snapshot, new file set, cleared parse cache. The worker's analyzer
    /// survives across batches — that is the point of a long-lived pool.
    Batch {
        files: Arc<Vec<(String, String)>>,
        snapshot: LibrarySnapshot,
    },
    /// Start a wave: apply the texts (and VIFB sidecars) committed since
    /// the workers last synced, then drain the shared queue.
    Wave {
        puts: Vec<(String, Arc<str>, Option<Arc<[u8]>>)>,
        queue: Arc<Mutex<VecDeque<Job>>>,
    },
    /// Pool is shutting down.
    Done,
}

/// Worker → coordinator result of one job.
struct JobOut {
    global: usize,
    key: String,
    /// Serialized VIF when the unit analyzed cleanly.
    vif_text: Option<String>,
    /// VIFB sidecar of the same tree, stamped with the text's hash — the
    /// buffer is plain bytes (`Send`), so it ships across threads and is
    /// committed alongside the text.
    vifb: Option<Vec<u8>>,
    msgs: Vec<Msg>,
    expr_evals: u64,
    parse: Duration,
    attr_eval: Duration,
    vif_read: Duration,
    vif_write: Duration,
}

/// Analyzes one unit against `libs` and packages the outcome as the
/// Send-able `JobOut`. Shared by the worker loop and the inline
/// (`jobs <= 1`) path so both produce identical results.
fn run_job(analyzer: &Analyzer, libs: &Rc<LibrarySet>, unit: &Cst, global: usize) -> JobOut {
    let read_spent = Rc::new(RefCell::new(Duration::ZERO));
    let loader = Rc::new(TimedLoader {
        inner: Rc::clone(libs),
        spent: Rc::clone(&read_spent),
    });
    let t0 = Instant::now();
    let au = analyzer.analyze_unit_with_loader(unit, loader as Rc<dyn UnitLoader>);
    let analysis = t0.elapsed();
    let vif_read = *read_spent.borrow();
    let t0 = Instant::now();
    let produced = (!au.msgs.has_errors() && !au.key.is_empty()).then(|| {
        let text = write_vif(&au.node);
        let vifb = encode_vifb(&au.node, vhdl_vif::binary::fnv1a(0, text.as_bytes()));
        (text, vifb)
    });
    let vif_write = t0.elapsed();
    let (vif_text, vifb) = match produced {
        Some((t, b)) => (Some(t), Some(b)),
        None => (None, None),
    };
    JobOut {
        global,
        key: au.key,
        vif_text,
        vifb,
        msgs: au.msgs.to_vec(),
        expr_evals: au.expr_evals,
        parse: Duration::ZERO,
        attr_eval: analysis.saturating_sub(vif_read),
        vif_read,
        vif_write,
    }
}

/// A `JobOut` carrying only an internal-error diagnostic (worker-side
/// failures that must not wedge the coordinator).
fn job_error(global: usize, parse: Duration, what: String) -> JobOut {
    JobOut {
        global,
        key: String::new(),
        vif_text: None,
        vifb: None,
        msgs: vec![Msg::error(Default::default(), what)],
        expr_evals: 0,
        parse,
        attr_eval: Duration::ZERO,
        vif_read: Duration::ZERO,
        vif_write: Duration::ZERO,
    }
}

/// Renders a payload captured by `catch_unwind`.
fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The worker loop: parse lazily (cached per file), analyze against the
/// mirror library, ship text back. Everything it owns is thread-local and
/// survives across batches; a `Batch` message resets the mirror and the
/// parse cache, never the analyzer. A panicking job becomes an
/// internal-error diagnostic, not a dead worker — a wedged server worker
/// would starve every later wave.
fn worker_main(env_kind: vhdl_sem::env::EnvKind, rx: Receiver<ToWorker>, tx: Sender<JobOut>) {
    let analyzer = Analyzer::thread_shared(env_kind);
    let mut files: Arc<Vec<(String, String)>> = Arc::new(Vec::new());
    let mut work = Rc::new(Library::in_memory("work"));
    let mut libs = Rc::new(LibrarySet::new(Rc::clone(&work), vec![]));
    let mut csts: HashMap<usize, Result<Vec<Cst>, String>> = HashMap::new();
    while let Ok(msg) = rx.recv() {
        let queue = match msg {
            ToWorker::Done => break,
            ToWorker::Batch { files: f, snapshot } => {
                files = f;
                work = Rc::new(Library::from_snapshot(&snapshot));
                libs = Rc::new(LibrarySet::new(Rc::clone(&work), vec![]));
                csts.clear();
                continue;
            }
            ToWorker::Wave { puts, queue } => {
                for (k, text, vifb) in &puts {
                    let _ = match vifb {
                        Some(b) => work.put_text_with_vifb(k, text, b),
                        None => work.put_text(k, text),
                    };
                }
                queue
            }
        };
        loop {
            let job = queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .pop_front();
            let Some(job) = job else { break };
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut parse = Duration::ZERO;
                let units = csts.entry(job.file).or_insert_with(|| {
                    let t0 = Instant::now();
                    let r = analyzer
                        .parse_units(&files[job.file].1)
                        .map_err(|e| e.to_string());
                    parse = t0.elapsed();
                    r
                });
                match units {
                    Err(e) => job_error(
                        job.global,
                        parse,
                        format!("internal: file re-parse failed: {e}"),
                    ),
                    Ok(units) => match units.get(job.unit_in_file) {
                        None => job_error(
                            job.global,
                            parse,
                            "internal: unit index out of range".to_string(),
                        ),
                        Some(unit) => {
                            let mut out = run_job(&analyzer, &libs, unit, job.global);
                            out.parse = parse;
                            out
                        }
                    },
                }
            }))
            .unwrap_or_else(|p| {
                job_error(
                    job.global,
                    Duration::ZERO,
                    format!("internal: analysis panicked: {}", panic_text(p)),
                )
            });
            if tx.send(out).is_err() {
                return;
            }
        }
    }
}

/// A long-lived pool of analysis workers. One pool outlives many
/// [`Compiler::compile_batch_with`] calls: each batch re-initializes the
/// workers' mirror libraries (a `Batch` message) but reuses their
/// analyzers, whose predefined environments are expensive to rebuild. The
/// `vhdld` server keeps one pool per session and fans every `analyze`
/// request over it.
pub struct WorkerPool {
    env_kind: vhdl_sem::env::EnvKind,
    jobs: usize,
    worker_tx: Vec<Sender<ToWorker>>,
    result_rx: Receiver<JobOut>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `jobs` workers (at least one) for compilers using `env_kind`.
    pub fn new(env_kind: vhdl_sem::env::EnvKind, jobs: usize) -> WorkerPool {
        let jobs = jobs.max(1);
        let (result_tx, result_rx) = channel::<JobOut>();
        let mut worker_tx = Vec::with_capacity(jobs);
        let mut handles = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            let (tx, rx) = channel::<ToWorker>();
            worker_tx.push(tx);
            let out = result_tx.clone();
            handles.push(std::thread::spawn(move || worker_main(env_kind, rx, out)));
        }
        // The workers hold the only senders: if they all die, `recv`
        // disconnects instead of blocking forever.
        drop(result_tx);
        WorkerPool {
            env_kind,
            jobs,
            worker_tx,
            result_rx,
            handles,
        }
    }

    /// Worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    fn broadcast(&self, make: impl Fn() -> ToWorker) {
        for tx in &self.worker_tx {
            let _ = tx.send(make());
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.broadcast(|| ToWorker::Done);
        self.worker_tx.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The memoized front half of one batch: parsed trees, token runs, the
/// staged dependency graph, front errors, and the line count — everything
/// that is a pure function of the input files and the library contents.
/// Valid only for the exact `(files signature, library generation)` pair
/// it was built for; any `put` anywhere in the library set bumps the
/// generation sum and invalidates it.
struct BatchPlan {
    sig: u64,
    generation: u64,
    file_units: Rc<Vec<Vec<Cst>>>,
    unit_toks: Rc<Vec<(usize, usize, Vec<SrcTok>)>>,
    front_errors: Vec<(usize, String)>,
    graph: Rc<depgraph::DepGraph>,
    lines: usize,
}

/// How many recent batch plans a compiler keeps. The server replays one
/// file set per warm `analyze`; an editor ping-pongs among a few.
const PLAN_CACHE_CAP: usize = 4;

/// MRU cache of recent [`BatchPlan`]s. Held by [`Compiler`] so a warm
/// batch (same files, unchanged libraries) skips parsing, token
/// collection, and graph staging entirely and goes straight to stamping.
#[derive(Default)]
pub struct PlanCache {
    plans: Vec<Rc<BatchPlan>>,
}

impl PlanCache {
    fn lookup(&mut self, sig: u64, generation: u64) -> Option<Rc<BatchPlan>> {
        let i = self
            .plans
            .iter()
            .position(|p| p.sig == sig && p.generation == generation)?;
        let p = self.plans.remove(i);
        self.plans.insert(0, Rc::clone(&p));
        Some(p)
    }

    fn insert(&mut self, plan: Rc<BatchPlan>) {
        self.plans.retain(|p| p.sig != plan.sig);
        self.plans.insert(0, plan);
        self.plans.truncate(PLAN_CACHE_CAP);
    }
}

impl Compiler {
    /// Compiles a set of `(name, source)` files as one batch:
    /// dependency-staged, optionally parallel, optionally incremental.
    /// Files may arrive in any order — the wave schedule, not the file
    /// list, decides analysis order. Successful units are committed to the
    /// work library at wave barriers in input order, so the library
    /// history (and with it the §3.3 latest-compiled-architecture
    /// default-binding rule) is identical for every `jobs` value.
    pub fn compile_batch(&self, files: &[(String, String)], opts: BatchOptions) -> BatchResult {
        if opts.jobs > 1 {
            let pool = WorkerPool::new(self.analyzer.env_kind, opts.jobs);
            self.compile_batch_with(files, opts, Some(&pool))
        } else {
            self.compile_batch_with(files, opts, None)
        }
    }

    /// [`Compiler::compile_batch`] against an existing [`WorkerPool`]
    /// (`None` analyzes inline on the calling thread). The pool's
    /// environment kind must match the compiler's.
    pub fn compile_batch_with(
        &self,
        files: &[(String, String)],
        opts: BatchOptions,
        pool: Option<&WorkerPool>,
    ) -> BatchResult {
        let _t = ag_harness::trace::span("compile-batch");
        if let Some(p) = pool {
            assert_eq!(
                p.env_kind, self.analyzer.env_kind,
                "worker pool environment must match the compiler's"
            );
        }
        let wall0 = Instant::now();
        self.libs.reset_traffic();
        let mut phases = PhaseTimes::default();
        let work = Rc::clone(self.libs.work());

        // Plan lookup: a warm batch (same files, unchanged libraries)
        // reuses the parsed trees, token runs, and staged graph of the
        // previous run — the front half costs one signature hash.
        let sig = depgraph::files_signature(files);
        let plan = self.plans.borrow_mut().lookup(sig, self.libs.generation());
        let plan = match plan {
            Some(p) => p,
            None => {
                // Parse everything up front: unit extraction needs token
                // runs, and the inline path reuses the trees.
                let mut front_errors = Vec::new();
                let mut file_units: Vec<Vec<Cst>> = Vec::with_capacity(files.len());
                let t0 = Instant::now();
                for (i, (_, src)) in files.iter().enumerate() {
                    match self.analyzer.parse_units(src) {
                        Ok(us) => file_units.push(us),
                        Err(e) => {
                            front_errors.push((i, e.to_string()));
                            file_units.push(Vec::new());
                        }
                    }
                }
                phases.parse += t0.elapsed();

                let mut unit_toks = Vec::new();
                for (f, units) in file_units.iter().enumerate() {
                    for (u, cst) in units.iter().enumerate() {
                        let mut toks = Vec::new();
                        collect_toks(cst, &mut toks);
                        unit_toks.push((f, u, toks));
                    }
                }
                let graph = depgraph::build(&unit_toks, &|key| work.contains(key));
                Rc::new(BatchPlan {
                    sig,
                    generation: self.libs.generation(),
                    file_units: Rc::new(file_units),
                    unit_toks: Rc::new(unit_toks),
                    front_errors,
                    graph: Rc::new(graph),
                    lines: files
                        .iter()
                        .map(|(_, s)| s.lines().filter(|l| !l.trim().is_empty()).count())
                        .sum(),
                })
            }
        };
        let front_errors = plan.front_errors.clone();
        let file_units = Rc::clone(&plan.file_units);
        let mut graph = Rc::clone(&plan.graph);

        let mut out_units: Vec<BatchUnit> = Vec::new();
        // Cycle members become diagnostics, never jobs.
        for (members, path) in &graph.cycles {
            for &m in members {
                let meta = &graph.units[m];
                out_units.push(BatchUnit {
                    file: meta.file,
                    unit_in_file: meta.unit_in_file,
                    key: meta.key.clone(),
                    wave: None,
                    skipped: false,
                    msgs: vec![Msg::error(
                        meta.pos,
                        format!("dependency cycle among design units: {path}"),
                    )],
                    expr_evals: 0,
                });
            }
        }

        // The pool is engaged lazily, at the first wave that actually has
        // jobs: an all-hit warm batch never touches the pool at all (no
        // snapshot, no broadcasts — this is most of the warm-path win).
        // Engaging late is safe because the snapshot taken at engagement
        // time already contains every commit made so far.
        let jobs = pool.map(WorkerPool::jobs).unwrap_or(1);
        let mut pool_engaged = false;

        let mut cache = CacheStats::default();
        // Hash of each key's current VIF text, filled lazily from the
        // library (which memoizes per unit) and refreshed at every commit.
        let mut dep_hash: HashMap<String, u64> = HashMap::new();
        // Texts + sidecars committed since the workers last synced their
        // mirrors (accumulates across waves the pool never saw).
        let mut pending_delta: Vec<(String, Arc<str>, Option<Arc<[u8]>>)> = Vec::new();
        let mut committed_any = false;

        for (w, wave) in graph.waves.iter().enumerate() {
            // Stamp every unit of the wave against the current library
            // state and decide skip vs analyze.
            let mut jobs_list: Vec<(Job, u64)> = Vec::new();
            for &i in wave {
                let meta = &graph.units[i];
                let mut stamp = meta.src_hash;
                for dep in &meta.deps {
                    stamp = fnv1a_bytes(stamp, dep.as_bytes());
                    let dh = match dep_hash.get(dep) {
                        Some(&h) => Some(h),
                        None => work.text_hash(dep).ok().map(|h| {
                            dep_hash.insert(dep.clone(), h);
                            h
                        }),
                    };
                    match dh {
                        Some(h) => stamp = fnv1a_bytes(stamp, &h.to_le_bytes()),
                        None => stamp = fnv1a_bytes(stamp, b"?"),
                    }
                }
                if opts.incremental && work.stamp(&meta.key) == Some(stamp) {
                    cache.hits += 1;
                    out_units.push(BatchUnit {
                        file: meta.file,
                        unit_in_file: meta.unit_in_file,
                        key: meta.key.clone(),
                        wave: Some(w),
                        skipped: true,
                        msgs: Vec::new(),
                        expr_evals: 0,
                    });
                    continue;
                }
                match work.stamp(&meta.key) {
                    Some(_) => cache.misses += 1,
                    None => cache.cold += 1,
                }
                jobs_list.push((
                    Job {
                        global: i,
                        file: meta.file,
                        unit_in_file: meta.unit_in_file,
                    },
                    stamp,
                ));
            }
            let stamps: HashMap<usize, u64> =
                jobs_list.iter().map(|(j, s)| (j.global, *s)).collect();

            // Run the wave. An all-hit wave has nothing to run and — with
            // a pool — nothing to broadcast; commits it is owed travel in
            // `pending_delta` with the next real wave.
            let mut results: Vec<JobOut> = if jobs_list.is_empty() {
                Vec::new()
            } else if let Some(p) = pool {
                if !pool_engaged {
                    pool_engaged = true;
                    let files_arc: Arc<Vec<(String, String)>> = Arc::new(files.to_vec());
                    let snapshot = work.snapshot();
                    p.broadcast(|| ToWorker::Batch {
                        files: Arc::clone(&files_arc),
                        snapshot: snapshot.clone(),
                    });
                    // The snapshot already holds every commit so far.
                    pending_delta.clear();
                }
                let queue: Arc<Mutex<VecDeque<Job>>> =
                    Arc::new(Mutex::new(jobs_list.iter().map(|(j, _)| *j).collect()));
                let delta = std::mem::take(&mut pending_delta);
                p.broadcast(|| ToWorker::Wave {
                    puts: delta.clone(),
                    queue: Arc::clone(&queue),
                });
                let mut got: Vec<JobOut> = Vec::with_capacity(jobs_list.len());
                let mut missing: std::collections::HashSet<usize> =
                    jobs_list.iter().map(|(j, _)| j.global).collect();
                while got.len() < jobs_list.len() {
                    match p.result_rx.recv() {
                        Ok(out) => {
                            missing.remove(&out.global);
                            got.push(out);
                        }
                        Err(_) => {
                            // Every worker died. Turn the unfinished jobs
                            // into diagnostics instead of wedging the
                            // coordinator (and with it the server session).
                            for g in missing.drain() {
                                got.push(job_error(
                                    g,
                                    Duration::ZERO,
                                    "internal: worker pool disconnected".to_string(),
                                ));
                            }
                            break;
                        }
                    }
                }
                got
            } else {
                pending_delta.clear();
                jobs_list
                    .iter()
                    .map(|(job, _)| {
                        run_job(
                            &self.analyzer,
                            &self.libs,
                            &file_units[job.file][job.unit_in_file],
                            job.global,
                        )
                    })
                    .collect()
            };

            // Wave barrier: commit in input (global) order, stamp, record.
            results.sort_by_key(|r| r.global);
            for r in results {
                phases.parse += r.parse;
                phases.attr_eval += r.attr_eval;
                phases.vif_read += r.vif_read;
                phases.vif_write += r.vif_write;
                let JobOut {
                    global,
                    key,
                    vif_text,
                    vifb,
                    msgs,
                    expr_evals,
                    ..
                } = r;
                if let Some(text) = vif_text {
                    let vifb: Option<Arc<[u8]>> = vifb.map(Arc::from);
                    let t0 = Instant::now();
                    let committed = match &vifb {
                        Some(b) => work.put_text_with_vifb(&key, &text, b).is_ok(),
                        None => work.put_text(&key, &text).is_ok(),
                    };
                    phases.vif_write += t0.elapsed();
                    if committed {
                        committed_any = true;
                        if let Some(&stamp) = stamps.get(&global) {
                            let _ = work.set_stamp(&key, stamp);
                        }
                        dep_hash.insert(key.clone(), fnv1a_bytes(0, text.as_bytes()));
                        pending_delta.push((key.clone(), Arc::from(text.as_str()), vifb));
                    }
                }
                let meta = &graph.units[global];
                out_units.push(BatchUnit {
                    file: meta.file,
                    unit_in_file: meta.unit_in_file,
                    key,
                    wave: Some(w),
                    skipped: false,
                    msgs,
                    expr_evals,
                });
            }
        }

        out_units.sort_by_key(|u| (u.file, u.unit_in_file));
        ag_harness::trace::counter("batch-cache-hit", cache.hits);
        ag_harness::trace::counter("batch-cache-miss", cache.misses);
        ag_harness::trace::counter("batch-cache-cold", cache.cold);
        ag_harness::trace::counter("batch-waves", graph.waves.len() as u64);

        // Re-validate the plan for the library state this batch produced.
        // Commits changed the contents, so the staged graph is rebuilt
        // against them — the next warm run then stamps exactly as a fresh
        // front half would, without parsing anything.
        let waves = graph.waves.len();
        if committed_any {
            graph = Rc::new(depgraph::build(&plan.unit_toks, &|key| work.contains(key)));
        }
        self.plans.borrow_mut().insert(Rc::new(BatchPlan {
            sig,
            generation: self.libs.generation(),
            file_units,
            unit_toks: Rc::clone(&plan.unit_toks),
            front_errors: plan.front_errors.clone(),
            graph,
            lines: plan.lines,
        }));

        BatchResult {
            units: out_units,
            front_errors,
            phases,
            cache,
            waves,
            jobs,
            lines: plan.lines,
            wall: wall0.elapsed(),
            traffic: self.libs.traffic(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design() -> Vec<(String, String)> {
        // Deliberately out of dependency order: the architecture and the
        // dependent package precede what they depend on.
        vec![
            (
                "top.vhd".into(),
                "architecture rtl of e is\n\
                 signal s : bit;\n\
                 begin\n\
                 s <= '1';\n\
                 end rtl;\n"
                    .into(),
            ),
            ("ent.vhd".into(), "entity e is\nend e;\n".into()),
            (
                "pkg.vhd".into(),
                "package p is\nconstant width : integer := 8;\nend p;\n".into(),
            ),
        ]
    }

    fn vif_texts(c: &Compiler) -> Vec<(String, String)> {
        let work = c.libs.work();
        let mut keys: Vec<String> = work.history().iter().map(|k| k.to_string()).collect();
        keys.sort();
        keys.dedup();
        keys.into_iter()
            .map(|k| {
                let t = work.peek_raw(&k).expect("stored");
                (k, t)
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_library_state() {
        // The sequential baseline compiles in dependency order.
        let seq = Compiler::in_memory();
        let ordered = [
            "entity e is\nend e;\n",
            "architecture rtl of e is\nsignal s : bit;\nbegin\ns <= '1';\nend rtl;\n",
            "package p is\nconstant width : integer := 8;\nend p;\n",
        ];
        for src in ordered {
            let r = seq.compile(src).expect("parse");
            assert!(r.ok(), "{}", r.msgs());
        }

        let batch = Compiler::in_memory();
        let r = batch.compile_batch(&design(), BatchOptions::default());
        assert!(r.ok(), "{:?}", r.units);
        assert_eq!(r.units.len(), 3);
        let seq_texts = vif_texts(&seq);
        let batch_texts = vif_texts(&batch);
        assert_eq!(seq_texts, batch_texts);
    }

    #[test]
    fn parallel_batch_is_byte_identical_to_serial() {
        let c1 = Compiler::in_memory();
        let r1 = c1.compile_batch(&design(), BatchOptions::default());
        let c4 = Compiler::in_memory();
        let r4 = c4.compile_batch(
            &design(),
            BatchOptions {
                jobs: 4,
                incremental: false,
            },
        );
        assert!(r1.ok() && r4.ok());
        assert_eq!(r1.waves, r4.waves);
        assert_eq!(vif_texts(&c1), vif_texts(&c4));
        let names: Vec<String> = design().iter().map(|(n, _)| n.clone()).collect();
        assert_eq!(r1.rendered_msgs(&names), r4.rendered_msgs(&names));
    }

    #[test]
    fn warm_incremental_run_skips_everything() {
        let c = Compiler::in_memory();
        let opts = BatchOptions {
            jobs: 1,
            incremental: true,
        };
        let cold = c.compile_batch(&design(), opts);
        assert!(cold.ok());
        assert_eq!(cold.cache.hits, 0);
        assert_eq!(cold.cache.analyzed(), 3);
        let warm = c.compile_batch(&design(), opts);
        assert!(warm.ok());
        assert_eq!(warm.cache.hits, 3);
        assert_eq!(warm.cache.analyzed(), 0);
        assert!(warm.units.iter().all(|u| u.skipped));
    }

    #[test]
    fn touched_unit_invalidates_exactly_its_dependents() {
        let c = Compiler::in_memory();
        let opts = BatchOptions {
            jobs: 1,
            incremental: true,
        };
        let mut files = design();
        let cold = c.compile_batch(&files, opts);
        assert!(cold.ok());
        // Change the entity: the architecture depends on it, the package
        // does not.
        files[1].1 = "entity e is\nport (clk : in bit);\nend e;\n".into();
        let warm = c.compile_batch(&files, opts);
        assert!(warm.ok(), "{:?}", warm.units);
        assert_eq!(warm.cache.hits, 1, "only pkg.p should hit");
        assert_eq!(warm.cache.misses, 2, "entity + dependent arch re-analyze");
        let skipped: Vec<&str> = warm
            .units
            .iter()
            .filter(|u| u.skipped)
            .map(|u| u.key.as_str())
            .collect();
        assert_eq!(skipped, ["pkg.p"]);
    }

    #[test]
    fn pool_survives_across_batches() {
        // One pool, many batches against distinct compilers: mirrors are
        // re-initialized per batch, analyzers reused, results identical to
        // the serial baseline every time.
        let baseline = Compiler::in_memory();
        let rb = baseline.compile_batch(&design(), BatchOptions::default());
        assert!(rb.ok());
        let pool = WorkerPool::new(baseline.analyzer.env_kind, 3);
        for _ in 0..3 {
            let c = Compiler::in_memory();
            let r = c.compile_batch_with(
                &design(),
                BatchOptions {
                    jobs: 3,
                    incremental: false,
                },
                Some(&pool),
            );
            assert!(r.ok(), "{:?}", r.units);
            assert_eq!(vif_texts(&baseline), vif_texts(&c));
        }
    }

    #[test]
    fn warm_plan_hit_skips_parse_and_reprint() {
        let c = Compiler::in_memory();
        let opts = BatchOptions {
            jobs: 1,
            incremental: true,
        };
        let cold = c.compile_batch(&design(), opts);
        assert!(cold.ok());
        assert!(cold.phases.parse > Duration::ZERO);
        for _ in 0..2 {
            let warm = c.compile_batch(&design(), opts);
            assert!(warm.ok());
            assert_eq!(warm.cache.hits, 3);
            // Satellite: a hit reuses stored text/plan — no re-parse, no
            // re-print, no library writes on the warm path.
            assert_eq!(warm.phases.parse, Duration::ZERO, "plan hit must not parse");
            assert_eq!(
                warm.phases.vif_write,
                Duration::ZERO,
                "hits must not rebuild vif text"
            );
            assert_eq!(warm.traffic.units_written, 0);
        }
        // An edit invalidates the plan and re-analysis still works.
        let mut files = design();
        files[1].1 = "entity e is\nport (clk : in bit);\nend e;\n".into();
        let edited = c.compile_batch(&files, opts);
        assert!(edited.ok(), "{:?}", edited.units);
        assert!(edited.phases.parse > Duration::ZERO);
        assert_eq!(edited.cache.hits, 1);
        // Reverting replays the original inputs against a changed library:
        // the old plan is stale (generation moved), but correctness holds
        // and the units re-stamp.
        let reverted = c.compile_batch(&design(), opts);
        assert!(reverted.ok(), "{:?}", reverted.units);
        assert_eq!(reverted.cache.hits, 1, "only pkg.p survives the revert");
    }

    #[test]
    fn commits_carry_valid_vifb_sidecars() {
        for jobs in [1, 3] {
            let c = Compiler::in_memory();
            let r = c.compile_batch(
                &design(),
                BatchOptions {
                    jobs,
                    incremental: false,
                },
            );
            assert!(r.ok());
            let work = c.libs.work();
            for (key, text) in vif_texts(&c) {
                let vifb = work
                    .peek_vifb(&key)
                    .unwrap_or_else(|| panic!("jobs={jobs}: no sidecar for {key}"));
                let header = vhdl_vif::probe_vifb(&vifb).expect("valid sidecar");
                assert_eq!(
                    header.text_hash,
                    vhdl_vif::binary::fnv1a(0, text.as_bytes()),
                    "jobs={jobs}: sidecar must mirror the committed text of {key}"
                );
            }
        }
    }

    #[test]
    fn cycle_yields_diagnostics_not_hang() {
        let files = vec![
            ("a.vhd".into(), "use work.b;\npackage a is\nend a;\n".into()),
            ("b.vhd".into(), "use work.a;\npackage b is\nend b;\n".into()),
        ];
        let c = Compiler::in_memory();
        let r = c.compile_batch(&files, BatchOptions::default());
        assert!(!r.ok());
        assert_eq!(r.units.len(), 2);
        for u in &r.units {
            assert_eq!(u.wave, None);
            assert!(u.msgs[0].to_string().contains("dependency cycle"));
        }
    }
}
