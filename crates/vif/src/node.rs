//! VIF nodes: the applicative node graph.
//!
//! "The VIF is specified in the AG and created through attribute
//! evaluation. … once built, the VIF can not be changed" (§4.3). Nodes are
//! therefore immutable after construction and shared through [`Rc`] — new
//! information is expressed by building new nodes that link to old ones,
//! never by mutation.
//!
//! Kinds, node names, and field names are interned [`Symbol`]s: a node
//! carries three `u32`s where it used to carry three heap strings, kind
//! checks compare integers, and the accessors take `impl ToSym` so call
//! sites can pass either a symbol (free) or a string (interned on entry).
//! The *text* serialization ([`crate::text`]) still round-trips through
//! strings, so the on-disk interchange format is unchanged.

use std::fmt;
use std::rc::Rc;

use ag_intern::{Symbol, ToSym};

/// Tag of a VIF node — the "record type" from the VIF description.
///
/// Kept as an interned symbol rather than a closed enum so the schema can
/// grow the way the paper's declaratively-specified VIF did; the
/// well-known tags have typed constants in [`crate::kinds`].
pub type Kind = Symbol;

/// A field value inside a [`VifNode`].
#[derive(Clone, Debug, PartialEq)]
pub enum VifValue {
    /// Absent / null.
    Nil,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer (also used for enum positions and physical values).
    Int(i64),
    /// IEEE double (VHDL `REAL`).
    Real(f64),
    /// String (names, literals).
    Str(Rc<str>),
    /// Link to another node (shared — this is what makes the VIF a graph).
    Node(Rc<VifNode>),
    /// Ordered list.
    List(Rc<Vec<VifValue>>),
    /// A *foreign reference* to a separately-compiled unit, as
    /// `library.unit_key`. Written to disk as a reference; resolved into a
    /// [`VifValue::Node`] when read back ("fixup").
    Foreign(Rc<str>),
}

impl VifValue {
    /// Convenience: string value.
    pub fn str(s: impl Into<Rc<str>>) -> VifValue {
        VifValue::Str(s.into())
    }

    /// Convenience: node value.
    pub fn node(n: Rc<VifNode>) -> VifValue {
        VifValue::Node(n)
    }

    /// Convenience: list value.
    pub fn list(items: Vec<VifValue>) -> VifValue {
        VifValue::List(Rc::new(items))
    }

    /// As integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            VifValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// As string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            VifValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As node, if it is one.
    pub fn as_node(&self) -> Option<&Rc<VifNode>> {
        match self {
            VifValue::Node(n) => Some(n),
            _ => None,
        }
    }

    /// As list, if it is one.
    pub fn as_list(&self) -> Option<&[VifValue]> {
        match self {
            VifValue::List(l) => Some(l),
            _ => None,
        }
    }
}

/// An immutable VIF node: kind, optional name, ordered fields. Kind,
/// name, and field names are interned symbols.
#[derive(Clone, Debug, PartialEq)]
pub struct VifNode {
    kind: Symbol,
    name: Option<Symbol>,
    fields: Vec<(Symbol, VifValue)>,
}

impl VifNode {
    /// Starts building a node of `kind`.
    pub fn build(kind: impl ToSym) -> VifBuilder {
        VifBuilder {
            kind: kind.to_sym(),
            name: None,
            fields: Vec::new(),
        }
    }

    /// The node's kind tag as text.
    pub fn kind(&self) -> &'static str {
        self.kind.as_str()
    }

    /// The node's kind tag as a symbol — integer-comparable against the
    /// [`crate::kinds`] constants.
    pub fn kind_sym(&self) -> Symbol {
        self.kind
    }

    /// The node's name, if named.
    pub fn name(&self) -> Option<&'static str> {
        self.name.map(Symbol::as_str)
    }

    /// The node's name symbol, if named — the form environment keys want.
    pub fn name_sym(&self) -> Option<Symbol> {
        self.name
    }

    /// All fields in declaration order.
    pub fn fields(&self) -> &[(Symbol, VifValue)] {
        &self.fields
    }

    /// Looks up a field by name.
    pub fn field(&self, name: impl ToSym) -> Option<&VifValue> {
        let name = name.to_sym();
        self.fields.iter().find(|(n, _)| *n == name).map(|(_, v)| v)
    }

    /// Field as node, or `None`.
    pub fn node_field(&self, name: impl ToSym) -> Option<&Rc<VifNode>> {
        self.field(name).and_then(VifValue::as_node)
    }

    /// Field as list, or an empty slice.
    pub fn list_field(&self, name: impl ToSym) -> &[VifValue] {
        self.field(name).and_then(VifValue::as_list).unwrap_or(&[])
    }

    /// Field as string.
    pub fn str_field(&self, name: impl ToSym) -> Option<&str> {
        self.field(name).and_then(VifValue::as_str)
    }

    /// Field as integer.
    pub fn int_field(&self, name: impl ToSym) -> Option<i64> {
        self.field(name).and_then(VifValue::as_int)
    }

    /// Number of nodes reachable from this one (counting shared nodes
    /// once) — used by the VIF-traffic experiments.
    pub fn reachable_size(self: &Rc<Self>) -> usize {
        let mut seen = std::collections::HashSet::new();
        fn walk(n: &Rc<VifNode>, seen: &mut std::collections::HashSet<*const VifNode>) {
            if !seen.insert(Rc::as_ptr(n)) {
                return;
            }
            for (_, v) in n.fields() {
                walk_value(v, seen);
            }
        }
        fn walk_value(v: &VifValue, seen: &mut std::collections::HashSet<*const VifNode>) {
            match v {
                VifValue::Node(n) => walk(n, seen),
                VifValue::List(l) => {
                    for v in l.iter() {
                        walk_value(v, seen);
                    }
                }
                _ => {}
            }
        }
        walk(self, &mut seen);
        seen.len()
    }
}

impl fmt::Display for VifNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}", self.kind)?;
        if let Some(n) = self.name() {
            write!(f, " {n:?}")?;
        }
        write!(f, " …)")
    }
}

/// Builder for [`VifNode`] (nodes are immutable once built).
pub struct VifBuilder {
    kind: Symbol,
    name: Option<Symbol>,
    fields: Vec<(Symbol, VifValue)>,
}

impl VifBuilder {
    /// Names the node.
    pub fn name(mut self, name: impl ToSym) -> Self {
        self.name = Some(name.to_sym());
        self
    }

    /// Adds a field.
    pub fn field(mut self, name: impl ToSym, value: VifValue) -> Self {
        self.fields.push((name.to_sym(), value));
        self
    }

    /// Adds a string field.
    pub fn str_field(self, name: impl ToSym, v: impl Into<Rc<str>>) -> Self {
        self.field(name, VifValue::Str(v.into()))
    }

    /// Adds an integer field.
    pub fn int_field(self, name: impl ToSym, v: i64) -> Self {
        self.field(name, VifValue::Int(v))
    }

    /// Adds a node field.
    pub fn node_field(self, name: impl ToSym, v: Rc<VifNode>) -> Self {
        self.field(name, VifValue::Node(v))
    }

    /// Adds a list field.
    pub fn list_field(self, name: impl ToSym, v: Vec<VifValue>) -> Self {
        self.field(name, VifValue::list(v))
    }

    /// Finishes the node.
    pub fn done(self) -> Rc<VifNode> {
        Rc::new(VifNode {
            kind: self.kind,
            name: self.name,
            fields: self.fields,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let ty = VifNode::build("type").name("integer").done();
        let obj = VifNode::build("signal")
            .name("clk")
            .node_field("type", Rc::clone(&ty))
            .int_field("line", 12)
            .str_field("mode", "in")
            .list_field("drivers", vec![VifValue::Int(1), VifValue::Int(2)])
            .field("missing_ok", VifValue::Nil)
            .done();
        assert_eq!(obj.kind(), "signal");
        assert_eq!(obj.kind_sym(), crate::kinds::signal());
        assert_eq!(obj.name(), Some("clk"));
        assert_eq!(obj.name_sym(), Some(Symbol::intern("clk")));
        assert_eq!(obj.int_field("line"), Some(12));
        assert_eq!(obj.str_field("mode"), Some("in"));
        assert_eq!(obj.node_field("type").unwrap().name(), Some("integer"));
        assert_eq!(obj.list_field("drivers").len(), 2);
        assert_eq!(obj.list_field("nonexistent").len(), 0);
        assert_eq!(obj.field("missing_ok"), Some(&VifValue::Nil));
        assert_eq!(obj.field("really_missing"), None);
        assert_eq!(obj.fields().len(), 5);
        // Symbol keys hit the same fields as strings.
        assert_eq!(obj.int_field(Symbol::intern("line")), Some(12));
    }

    #[test]
    fn reachable_counts_shared_once() {
        let shared = VifNode::build("type").name("bit").done();
        let a = VifNode::build("a")
            .node_field("t", Rc::clone(&shared))
            .done();
        let b = VifNode::build("b")
            .node_field("t", Rc::clone(&shared))
            .node_field("a", Rc::clone(&a))
            .list_field("xs", vec![VifValue::Node(Rc::clone(&shared))])
            .done();
        assert_eq!(b.reachable_size(), 3); // b, a, shared
    }

    #[test]
    fn value_accessors() {
        assert_eq!(VifValue::Int(3).as_int(), Some(3));
        assert_eq!(VifValue::str("x").as_str(), Some("x"));
        assert_eq!(VifValue::Bool(true).as_int(), None);
        let n = VifNode::build("k").done();
        assert!(VifValue::node(Rc::clone(&n)).as_node().is_some());
        assert!(VifValue::list(vec![]).as_list().is_some());
        assert_eq!(format!("{n}"), "(k …)");
    }
}
