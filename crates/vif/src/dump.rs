//! Human-readable VIF dump — "used for both debugging and documentation"
//! (§2.2).

use std::collections::HashSet;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::node::{VifNode, VifValue};

/// Pretty-prints a node graph as an indented outline. Shared nodes are
/// printed once and referenced as `^<kind> "<name>"` afterwards.
pub fn dump(root: &Rc<VifNode>) -> String {
    let mut out = String::new();
    let mut seen = HashSet::new();
    dump_node(root, 0, &mut out, &mut seen);
    out
}

fn dump_node(n: &Rc<VifNode>, indent: usize, out: &mut String, seen: &mut HashSet<*const VifNode>) {
    let pad = "  ".repeat(indent);
    if !seen.insert(Rc::as_ptr(n)) {
        let _ = writeln!(out, "{pad}^{} {:?}", n.kind(), n.name().unwrap_or(""));
        return;
    }
    match n.name() {
        Some(name) => {
            let _ = writeln!(out, "{pad}{} {name:?}", n.kind());
        }
        None => {
            let _ = writeln!(out, "{pad}{}", n.kind());
        }
    }
    for (fname, v) in n.fields() {
        let _ = write!(out, "{pad}  .{fname} = ");
        dump_value(v, indent + 1, out, seen);
    }
}

fn dump_value(v: &VifValue, indent: usize, out: &mut String, seen: &mut HashSet<*const VifNode>) {
    match v {
        VifValue::Nil => out.push_str("nil\n"),
        VifValue::Bool(b) => {
            let _ = writeln!(out, "{b}");
        }
        VifValue::Int(i) => {
            let _ = writeln!(out, "{i}");
        }
        VifValue::Real(r) => {
            let _ = writeln!(out, "{r}");
        }
        VifValue::Str(s) => {
            let _ = writeln!(out, "{s:?}");
        }
        VifValue::Foreign(r) => {
            let _ = writeln!(out, "@{r}");
        }
        VifValue::Node(n) => {
            out.push('\n');
            dump_node(n, indent + 1, out, seen);
        }
        VifValue::List(items) => {
            let _ = writeln!(out, "[{}]", items.len());
            for item in items.iter() {
                let pad = "  ".repeat(indent + 1);
                let _ = write!(out, "{pad}- ");
                dump_value(item, indent + 1, out, seen);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_shows_structure_and_sharing() {
        let ty = VifNode::build("type").name("bit").done();
        let root = VifNode::build("entity")
            .name("e")
            .node_field("t1", Rc::clone(&ty))
            .node_field("t2", Rc::clone(&ty))
            .int_field("line", 3)
            .list_field("xs", vec![VifValue::Int(1)])
            .done();
        let d = dump(&root);
        assert!(d.contains("entity \"e\""));
        assert!(d.contains(".line = 3"));
        assert!(d.contains("type \"bit\""));
        assert!(d.contains("^type"), "second occurrence is a backreference");
        assert!(d.contains("[1]"));
    }
}
