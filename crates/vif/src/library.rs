//! Design libraries: named collections of separately-compiled units.
//!
//! The compiler "accepts … a working library where the successfully
//! compiled units are placed and a reference library which can be
//! referenced … but not updated" (§2). A [`Library`] stores one VIF file
//! per unit plus a **usage history** — the compilation order — because the
//! default-binding rules depend on "the latest compiled architecture for
//! that entity" (§3.3), which makes configuration defaults dependent on
//! library history.

use std::cell::RefCell;
use std::collections::HashMap;
use std::path::PathBuf;
use std::rc::Rc;

use crate::node::VifNode;
use crate::text::{read_vif, write_vif, VifError};

/// Key of a unit within a library: `"entity.<name>"`, `"arch.<entity>.<name>"`,
/// `"pkg.<name>"`, `"pkgbody.<name>"`, or `"config.<name>"`.
pub type UnitKey = String;

/// Cumulative VIF traffic statistics (for the phase-breakdown experiments).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VifTraffic {
    /// Bytes of VIF text written.
    pub bytes_written: u64,
    /// Bytes of VIF text read.
    pub bytes_read: u64,
    /// Units written.
    pub units_written: u64,
    /// Units read (including those pulled in by nested foreign references).
    pub units_read: u64,
}

enum Backend {
    Memory(RefCell<HashMap<UnitKey, String>>),
    Disk(PathBuf),
}

/// One design library.
pub struct Library {
    name: String,
    backend: Backend,
    /// Compilation order (usage history), oldest first.
    history: RefCell<Vec<UnitKey>>,
    traffic: RefCell<VifTraffic>,
    /// Cache of resolved units (cleared never — units are immutable; a
    /// recompile replaces the entry).
    cache: RefCell<HashMap<UnitKey, Rc<VifNode>>>,
    /// Caching toggle: the paper's compiler re-read foreign VIF per
    /// compilation; disabling the cache reproduces that cost model for the
    /// performance experiments.
    cache_enabled: std::cell::Cell<bool>,
}

impl Library {
    /// Creates an in-memory library (tests, benches).
    pub fn in_memory(name: &str) -> Library {
        Library {
            name: name.to_string(),
            backend: Backend::Memory(RefCell::new(HashMap::new())),
            history: RefCell::new(Vec::new()),
            traffic: RefCell::new(VifTraffic::default()),
            cache: RefCell::new(HashMap::new()),
            cache_enabled: std::cell::Cell::new(true),
        }
    }

    /// Opens (or creates) an on-disk library rooted at `dir`.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory or reading the history file.
    pub fn on_disk(name: &str, dir: impl Into<PathBuf>) -> Result<Library, VifError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let history_path = dir.join("history");
        let history = if history_path.exists() {
            std::fs::read_to_string(&history_path)?
                .lines()
                .map(str::to_string)
                .collect()
        } else {
            Vec::new()
        };
        Ok(Library {
            name: name.to_string(),
            backend: Backend::Disk(dir),
            history: RefCell::new(history),
            traffic: RefCell::new(VifTraffic::default()),
            cache: RefCell::new(HashMap::new()),
            cache_enabled: std::cell::Cell::new(true),
        })
    }

    /// The library's logical name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stores a unit (replacing any previous version) and appends it to the
    /// usage history.
    ///
    /// # Errors
    ///
    /// I/O errors on disk-backed libraries.
    pub fn put(&self, key: &str, node: &Rc<VifNode>) -> Result<(), VifError> {
        let text = write_vif(node);
        {
            let mut t = self.traffic.borrow_mut();
            t.bytes_written += text.len() as u64;
            t.units_written += 1;
        }
        match &self.backend {
            Backend::Memory(m) => {
                m.borrow_mut().insert(key.to_string(), text);
            }
            Backend::Disk(dir) => {
                std::fs::write(dir.join(format!("{}.vif", sanitize(key))), text)?;
            }
        }
        self.cache.borrow_mut().remove(key);
        self.history.borrow_mut().push(key.to_string());
        if let Backend::Disk(dir) = &self.backend {
            std::fs::write(dir.join("history"), self.history.borrow().join("\n"))?;
        }
        Ok(())
    }

    /// Raw VIF text of a unit.
    ///
    /// # Errors
    ///
    /// [`VifError::MissingUnit`] if absent; I/O errors on disk.
    pub fn raw(&self, key: &str) -> Result<String, VifError> {
        let text = match &self.backend {
            Backend::Memory(m) => m
                .borrow()
                .get(key)
                .cloned()
                .ok_or_else(|| VifError::MissingUnit(format!("{}.{key}", self.name)))?,
            Backend::Disk(dir) => {
                let path = dir.join(format!("{}.vif", sanitize(key)));
                if !path.exists() {
                    return Err(VifError::MissingUnit(format!("{}.{key}", self.name)));
                }
                std::fs::read_to_string(path)?
            }
        };
        {
            let mut t = self.traffic.borrow_mut();
            t.bytes_read += text.len() as u64;
            t.units_read += 1;
        }
        Ok(text)
    }

    /// `true` if the unit exists.
    pub fn contains(&self, key: &str) -> bool {
        match &self.backend {
            Backend::Memory(m) => m.borrow().contains_key(key),
            Backend::Disk(dir) => dir.join(format!("{}.vif", sanitize(key))).exists(),
        }
    }

    /// All unit keys, in usage-history order (duplicates possible when a
    /// unit was recompiled; the last occurrence is the current one).
    pub fn history(&self) -> Vec<UnitKey> {
        self.history.borrow().clone()
    }

    /// The **latest compiled architecture** for `entity` — the paper's
    /// §3.3 default-binding rule. Returns the architecture name.
    pub fn latest_architecture(&self, entity: &str) -> Option<String> {
        let prefix = format!("arch.{entity}.");
        self.history
            .borrow()
            .iter()
            .rev()
            .find(|k| k.starts_with(&prefix))
            .map(|k| k[prefix.len()..].to_string())
    }

    /// Cumulative VIF traffic so far.
    pub fn traffic(&self) -> VifTraffic {
        *self.traffic.borrow()
    }

    /// Resets the traffic counters (between benchmark phases).
    pub fn reset_traffic(&self) {
        *self.traffic.borrow_mut() = VifTraffic::default();
    }

    /// Enables/disables the unit cache (see the performance experiments).
    pub fn set_cache_enabled(&self, on: bool) {
        self.cache_enabled.set(on);
        if !on {
            self.cache.borrow_mut().clear();
        }
    }

    fn cache_get(&self, key: &str) -> Option<Rc<VifNode>> {
        if !self.cache_enabled.get() {
            return None;
        }
        self.cache.borrow().get(key).cloned()
    }

    fn cache_put(&self, key: &str, node: Rc<VifNode>) {
        self.cache.borrow_mut().insert(key.to_string(), node);
    }
}

fn sanitize(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// The library universe of one compilation: a writable work library plus
/// read-only reference libraries, addressed by logical name. The name
/// `"work"` always denotes the work library.
pub struct LibrarySet {
    work: Rc<Library>,
    refs: Vec<Rc<Library>>,
}

impl LibrarySet {
    /// Creates a set from a work library and reference libraries.
    pub fn new(work: Rc<Library>, refs: Vec<Rc<Library>>) -> LibrarySet {
        LibrarySet { work, refs }
    }

    /// The writable work library.
    pub fn work(&self) -> &Rc<Library> {
        &self.work
    }

    /// Looks up a library by logical name (`"work"` or a reference
    /// library's name).
    pub fn library(&self, name: &str) -> Option<&Rc<Library>> {
        if name == "work" || name == self.work.name() {
            return Some(&self.work);
        }
        self.refs.iter().find(|l| l.name() == name)
    }

    /// Loads a unit by full reference `lib.unit_key`, resolving nested
    /// foreign references recursively (the §2.2 "fix-up" step). Results are
    /// cached per library.
    ///
    /// # Errors
    ///
    /// [`VifError::MissingUnit`]/[`VifError::Unresolved`] for dangling
    /// references; syntax errors for corrupt files.
    pub fn load(&self, full_ref: &str) -> Result<Rc<VifNode>, VifError> {
        let (lib_name, key) = full_ref
            .split_once('.')
            .ok_or_else(|| VifError::Unresolved(full_ref.to_string()))?;
        let lib = self
            .library(lib_name)
            .ok_or_else(|| VifError::Unresolved(format!("no library `{lib_name}`")))?;
        if let Some(hit) = lib.cache_get(key) {
            return Ok(hit);
        }
        let text = lib.raw(key)?;
        let node = read_vif(&text, &mut |nested| self.load(nested))?;
        lib.cache_put(key, Rc::clone(&node));
        Ok(node)
    }

    /// Total VIF traffic across all libraries.
    pub fn traffic(&self) -> VifTraffic {
        let mut t = self.work.traffic();
        for l in &self.refs {
            let lt = l.traffic();
            t.bytes_read += lt.bytes_read;
            t.bytes_written += lt.bytes_written;
            t.units_read += lt.units_read;
            t.units_written += lt.units_written;
        }
        t
    }

    /// Resets all traffic counters.
    pub fn reset_traffic(&self) {
        self.work.reset_traffic();
        for l in &self.refs {
            l.reset_traffic();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{VifNode, VifValue};

    fn unit(name: &str) -> Rc<VifNode> {
        VifNode::build("entity").name(name).done()
    }

    #[test]
    fn memory_put_get_history() {
        let lib = Library::in_memory("work");
        lib.put("entity.e", &unit("e")).unwrap();
        lib.put("arch.e.rtl", &unit("rtl")).unwrap();
        lib.put("arch.e.fast", &unit("fast")).unwrap();
        assert!(lib.contains("entity.e"));
        assert!(!lib.contains("entity.zzz"));
        assert_eq!(lib.history().len(), 3);
        assert_eq!(lib.latest_architecture("e"), Some("fast".to_string()));
        // Recompiling rtl makes it latest — the §3.3 nondeterminism.
        lib.put("arch.e.rtl", &unit("rtl")).unwrap();
        assert_eq!(lib.latest_architecture("e"), Some("rtl".to_string()));
        assert_eq!(lib.latest_architecture("other"), None);
    }

    #[test]
    fn library_set_resolves_nested_foreign_refs() {
        let work = Rc::new(Library::in_memory("work"));
        let lib2 = Rc::new(Library::in_memory("ieee"));
        // ieee.pkg.base is a leaf; work.pkg.mid references it; work.entity.top
        // references mid — loading top must pull in all three.
        lib2.put("pkg.base", &unit("base")).unwrap();
        let mid = VifNode::build("package")
            .name("mid")
            .field("uses", VifValue::Foreign("ieee.pkg.base".into()))
            .done();
        work.put("pkg.mid", &mid).unwrap();
        let top = VifNode::build("entity")
            .name("top")
            .field("uses", VifValue::Foreign("work.pkg.mid".into()))
            .done();
        work.put("entity.top", &top).unwrap();

        let set = LibrarySet::new(Rc::clone(&work), vec![Rc::clone(&lib2)]);
        let loaded = set.load("work.entity.top").unwrap();
        let mid = loaded.node_field("uses").unwrap();
        let base = mid.node_field("uses").unwrap();
        assert_eq!(base.name(), Some("base"));
        let t = set.traffic();
        assert_eq!(t.units_read, 3);
        assert!(t.bytes_read > 0);

        // Second load hits the cache: no extra reads.
        set.load("work.entity.top").unwrap();
        assert_eq!(set.traffic().units_read, 3);
    }

    #[test]
    fn missing_unit_error() {
        let set = LibrarySet::new(Rc::new(Library::in_memory("work")), vec![]);
        assert!(matches!(
            set.load("work.entity.nope").unwrap_err(),
            VifError::MissingUnit(_)
        ));
        assert!(set.load("nolib.entity.e").is_err());
        assert!(set.load("badref").is_err());
    }

    #[test]
    fn disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("viftest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let lib = Library::on_disk("work", &dir).unwrap();
            lib.put("entity.e", &unit("e")).unwrap();
            lib.put("arch.e.rtl", &unit("rtl")).unwrap();
        }
        {
            let lib = Rc::new(Library::on_disk("work", &dir).unwrap());
            assert!(lib.contains("entity.e"));
            assert_eq!(lib.latest_architecture("e"), Some("rtl".to_string()));
            let set = LibrarySet::new(lib, vec![]);
            let e = set.load("work.entity.e").unwrap();
            assert_eq!(e.name(), Some("e"));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn traffic_reset() {
        let lib = Library::in_memory("work");
        lib.put("entity.e", &unit("e")).unwrap();
        assert!(lib.traffic().bytes_written > 0);
        lib.reset_traffic();
        assert_eq!(lib.traffic(), VifTraffic::default());
    }
}
