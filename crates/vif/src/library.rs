//! Design libraries: named collections of separately-compiled units.
//!
//! The compiler "accepts … a working library where the successfully
//! compiled units are placed and a reference library which can be
//! referenced … but not updated" (§2). A [`Library`] stores one VIF file
//! per unit plus a **usage history** — the compilation order — because the
//! default-binding rules depend on "the latest compiled architecture for
//! that entity" (§3.3), which makes configuration defaults dependent on
//! library history.
//!
//! Alongside the canonical VIF *text* every unit may carry a **VIFB
//! sidecar** (see [`crate::binary`]): the same tree in the flat binary
//! encoding, stamped with the FNV-1a hash of the text it mirrors. Text
//! remains the interchange format and the golden oracle; the sidecar is a
//! pure accelerator. A sidecar whose embedded hash does not match the
//! current text (stale file, torn write) is ignored and re-encoded from
//! text on the next load, so a wrong sidecar can cost time but never
//! correctness.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::Arc;

use crate::binary::{self, decode_vifb, encode_vifb, probe_vifb};
use crate::node::VifNode;
use crate::text::{read_vif, read_vif_unresolved, scan_foreign_refs, write_vif, VifError};

/// Key of a unit within a library: `"entity.<name>"`, `"arch.<entity>.<name>"`,
/// `"pkg.<name>"`, `"pkgbody.<name>"`, or `"config.<name>"`.
pub type UnitKey = String;

/// Foreign-reference chains (and the content-hash recursion that mirrors
/// them) deeper than this are reported as errors rather than followed —
/// a hand-made cyclic library must not hang the loader.
const MAX_LOAD_DEPTH: usize = 64;

/// Cumulative VIF traffic statistics (for the phase-breakdown experiments).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VifTraffic {
    /// Bytes of VIF text written.
    pub bytes_written: u64,
    /// Bytes of VIF text read.
    pub bytes_read: u64,
    /// Units written.
    pub units_written: u64,
    /// Units read (including those pulled in by nested foreign references).
    pub units_read: u64,
}

enum Backend {
    Memory(RefCell<HashMap<UnitKey, Arc<str>>>),
    Disk(PathBuf),
}

/// Per-unit facts derived from the current text, memoized until the unit
/// is recompiled: the text hash (which keys the sidecar validity check)
/// and the foreign references in first-occurrence order (which feed the
/// deep content hash).
#[derive(Clone)]
struct Fingerprint {
    text_hash: u64,
    foreigns: Rc<[Rc<str>]>,
}

/// A thread-transferable image of a library: unit texts plus the usage
/// history, in history order. Unit texts are shared `Arc<str>` — taking a
/// snapshot of an in-memory library copies no text, and cloning a snapshot
/// (the batch compiler ships one per worker, each rebuilding a mirror with
/// [`Library::from_snapshot`]; the server forks one per session workspace)
/// only bumps reference counts. VIFB sidecars travel the same way as
/// shared `Arc<[u8]>` buffers, so worker mirrors decode binary instead of
/// re-lexing text.
#[derive(Clone, Debug)]
pub struct LibrarySnapshot {
    /// Library logical name.
    pub name: String,
    /// Usage history, oldest first (duplicates preserved).
    pub history: Vec<UnitKey>,
    /// Current VIF text per distinct unit key (shared, copy-on-write).
    pub units: Vec<(UnitKey, Arc<str>)>,
    /// Incremental stamps at snapshot time, so a forked workspace's
    /// first analyze of unchanged text is a cache hit.
    pub stamps: Vec<(UnitKey, u64)>,
    /// VIFB sidecars for the units that have one (shared buffers).
    pub vifbs: Vec<(UnitKey, Arc<[u8]>)>,
}

/// One design library.
pub struct Library {
    name: String,
    backend: Backend,
    /// Compilation order (usage history), oldest first.
    history: RefCell<Vec<UnitKey>>,
    traffic: RefCell<VifTraffic>,
    /// Cache of resolved units (cleared never — units are immutable; a
    /// recompile replaces the entry).
    cache: RefCell<HashMap<UnitKey, Rc<VifNode>>>,
    /// Caching toggle: the paper's compiler re-read foreign VIF per
    /// compilation; disabling the cache reproduces that cost model for the
    /// performance experiments (and also bypasses the structural cache).
    cache_enabled: Cell<bool>,
    /// Incremental-compilation stamps: content hash of the source tokens
    /// combined with the hashes of the dependency VIF texts at the time
    /// the unit was last analyzed. A unit whose recomputed stamp matches
    /// needs no re-analysis.
    stamps: RefCell<HashMap<UnitKey, u64>>,
    /// In-memory VIFB sidecars (disk libraries keep them in `<unit>.vifb`
    /// files instead).
    vifbs: RefCell<HashMap<UnitKey, Arc<[u8]>>>,
    /// Memoized per-unit fingerprints (cleared on recompile).
    fingerprints: RefCell<HashMap<UnitKey, Fingerprint>>,
    /// Memoized deep content hashes, tagged with the library-set
    /// generation sum they were computed under (stale tags recompute).
    content_hashes: RefCell<HashMap<UnitKey, (u64, u64)>>,
    /// Bumped on every successful store; generation sums only grow, which
    /// is what makes the content-hash memo tag sound.
    generation: Cell<u64>,
}

impl Library {
    /// Creates an in-memory library (tests, benches).
    pub fn in_memory(name: &str) -> Library {
        Library {
            name: name.to_string(),
            backend: Backend::Memory(RefCell::new(HashMap::new())),
            history: RefCell::new(Vec::new()),
            traffic: RefCell::new(VifTraffic::default()),
            cache: RefCell::new(HashMap::new()),
            cache_enabled: Cell::new(true),
            stamps: RefCell::new(HashMap::new()),
            vifbs: RefCell::new(HashMap::new()),
            fingerprints: RefCell::new(HashMap::new()),
            content_hashes: RefCell::new(HashMap::new()),
            generation: Cell::new(0),
        }
    }

    /// Rebuilds an in-memory library from a [`LibrarySnapshot`] — the
    /// worker-side mirror of the batch compiler.
    pub fn from_snapshot(snap: &LibrarySnapshot) -> Library {
        let lib = Library::in_memory(&snap.name);
        {
            let mut m = match &lib.backend {
                Backend::Memory(m) => m.borrow_mut(),
                Backend::Disk(_) => unreachable!("in_memory"),
            };
            for (k, text) in &snap.units {
                m.insert(k.clone(), Arc::clone(text));
            }
        }
        *lib.history.borrow_mut() = snap.history.clone();
        *lib.stamps.borrow_mut() = snap.stamps.iter().cloned().collect();
        *lib.vifbs.borrow_mut() = snap
            .vifbs
            .iter()
            .map(|(k, b)| (k.clone(), Arc::clone(b)))
            .collect();
        lib.generation.set(snap.units.len() as u64);
        lib
    }

    /// Captures the library's current contents as plain text (no traffic
    /// is counted; snapshots are a scheduling mechanism, not VIF reads).
    pub fn snapshot(&self) -> LibrarySnapshot {
        let history = self.history.borrow().clone();
        let mut seen = std::collections::HashSet::new();
        let mut units = Vec::new();
        let mut vifbs = Vec::new();
        for k in &history {
            if !seen.insert(k.clone()) {
                continue;
            }
            if let Ok(text) = self.peek_shared(k) {
                units.push((k.clone(), text));
                if let Some(b) = self.peek_vifb(k) {
                    vifbs.push((k.clone(), b));
                }
            }
        }
        let mut stamps: Vec<(UnitKey, u64)> = self
            .stamps
            .borrow()
            .iter()
            .map(|(k, &s)| (k.clone(), s))
            .collect();
        stamps.sort();
        LibrarySnapshot {
            name: self.name.clone(),
            history,
            units,
            stamps,
            vifbs,
        }
    }

    /// Opens (or creates) an on-disk library rooted at `dir`.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory or reading the history file.
    pub fn on_disk(name: &str, dir: impl Into<PathBuf>) -> Result<Library, VifError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let history_path = dir.join("history");
        let history = if history_path.exists() {
            std::fs::read_to_string(&history_path)?
                .lines()
                .map(str::to_string)
                .collect()
        } else {
            Vec::new()
        };
        let stamps_path = dir.join("stamps");
        let mut stamps = HashMap::new();
        if stamps_path.exists() {
            for line in std::fs::read_to_string(&stamps_path)?.lines() {
                if let Some((key, hex)) = line.rsplit_once(' ') {
                    if let Ok(h) = u64::from_str_radix(hex, 16) {
                        stamps.insert(key.to_string(), h);
                    }
                }
            }
        }
        Ok(Library {
            name: name.to_string(),
            backend: Backend::Disk(dir),
            history: RefCell::new(history),
            traffic: RefCell::new(VifTraffic::default()),
            cache: RefCell::new(HashMap::new()),
            cache_enabled: Cell::new(true),
            stamps: RefCell::new(stamps),
            vifbs: RefCell::new(HashMap::new()),
            fingerprints: RefCell::new(HashMap::new()),
            content_hashes: RefCell::new(HashMap::new()),
            generation: Cell::new(0),
        })
    }

    /// The library's logical name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Monotonic store counter: bumped on every successful `put*`. The
    /// [`LibrarySet`] sums these to tag content-hash memos; any change to
    /// any library in the set strictly increases the sum.
    pub fn generation(&self) -> u64 {
        self.generation.get()
    }

    /// Stores a unit (replacing any previous version) and appends it to the
    /// usage history.
    ///
    /// # Errors
    ///
    /// I/O errors on disk-backed libraries.
    pub fn put(&self, key: &str, node: &Rc<VifNode>) -> Result<(), VifError> {
        let text = write_vif(node);
        // Encoding straight from the tree matches encoding a reparse of
        // the text (the canonicality property), so the sidecar is valid
        // for the exact bytes being stored.
        let vifb = crate::binary::encode_vifb(node, crate::binary::fnv1a(0, text.as_bytes()));
        self.put_text_with_vifb(key, &text, &vifb)
    }

    /// Stores a unit from its already-serialized VIF text. This is the
    /// primitive `put` builds on; the batch compiler also uses it directly
    /// so the committed bytes are exactly the worker-produced bytes.
    ///
    /// Any existing VIFB sidecar for the unit is dropped (it mirrors text
    /// that no longer exists); the next load re-encodes one. Use
    /// [`Library::put_text_with_vifb`] to install text and sidecar
    /// together.
    ///
    /// The store is atomic: on disk the text is written to a temp file and
    /// renamed over the unit file, and no in-memory state (cache, history,
    /// traffic, stamps) changes unless the write succeeded — a failed
    /// `put` followed by [`Library::raw`] still sees the old version.
    ///
    /// # Errors
    ///
    /// I/O errors on disk-backed libraries.
    pub fn put_text(&self, key: &str, text: &str) -> Result<(), VifError> {
        self.store(key, text, None)
    }

    /// Stores a unit's VIF text together with its VIFB sidecar (produced
    /// by the same worker that printed the text). The text store has the
    /// same atomicity guarantees as [`Library::put_text`]; the sidecar
    /// write is best-effort — a lost sidecar is re-encoded on next load,
    /// and a wrong one is rejected by its embedded text hash.
    ///
    /// # Errors
    ///
    /// I/O errors on disk-backed libraries (for the text store).
    pub fn put_text_with_vifb(&self, key: &str, text: &str, vifb: &[u8]) -> Result<(), VifError> {
        self.store(key, text, Some(vifb))
    }

    fn store(&self, key: &str, text: &str, vifb: Option<&[u8]>) -> Result<(), VifError> {
        match &self.backend {
            Backend::Memory(m) => {
                m.borrow_mut().insert(key.to_string(), Arc::from(text));
            }
            Backend::Disk(dir) => {
                let path = dir.join(format!("{}.vif", sanitize(key)));
                let tmp = dir.join(format!("{}.vif.tmp", sanitize(key)));
                if let Err(e) = std::fs::write(&tmp, text) {
                    let _ = std::fs::remove_file(&tmp);
                    return Err(e.into());
                }
                if let Err(e) = std::fs::rename(&tmp, &path) {
                    let _ = std::fs::remove_file(&tmp);
                    return Err(e.into());
                }
            }
        }
        match vifb {
            Some(b) => self.store_vifb_sidecar(key, b),
            None => self.drop_vifb(key),
        }
        {
            let mut t = self.traffic.borrow_mut();
            t.bytes_written += text.len() as u64;
            t.units_written += 1;
        }
        self.cache.borrow_mut().remove(key);
        self.fingerprints.borrow_mut().remove(key);
        self.content_hashes.borrow_mut().remove(key);
        self.generation.set(self.generation.get() + 1);
        // A recompile invalidates any stamp from the previous analysis;
        // the incremental driver re-stamps after a successful commit.
        self.stamps.borrow_mut().remove(key);
        self.history.borrow_mut().push(key.to_string());
        if let Backend::Disk(dir) = &self.backend {
            if let Err(e) = write_atomic(dir, "history", &self.history.borrow().join("\n")) {
                self.history.borrow_mut().pop();
                return Err(e);
            }
        }
        Ok(())
    }

    /// Installs (or repairs) the VIFB sidecar for a unit. Best-effort:
    /// disk write failures are swallowed — the sidecar is an accelerator,
    /// never load-bearing.
    fn store_vifb_sidecar(&self, key: &str, vifb: &[u8]) {
        match &self.backend {
            Backend::Memory(_) => {
                self.vifbs
                    .borrow_mut()
                    .insert(key.to_string(), Arc::from(vifb));
            }
            Backend::Disk(dir) => {
                let path = dir.join(format!("{}.vifb", sanitize(key)));
                let tmp = dir.join(format!("{}.vifb.tmp", sanitize(key)));
                if std::fs::write(&tmp, vifb).is_ok() && std::fs::rename(&tmp, &path).is_err() {
                    let _ = std::fs::remove_file(&tmp);
                }
            }
        }
    }

    fn drop_vifb(&self, key: &str) {
        match &self.backend {
            Backend::Memory(_) => {
                self.vifbs.borrow_mut().remove(key);
            }
            Backend::Disk(dir) => {
                let _ = std::fs::remove_file(dir.join(format!("{}.vifb", sanitize(key))));
            }
        }
    }

    /// The unit's VIFB sidecar bytes, if present (no traffic is counted;
    /// no validity check — callers verify the embedded text hash).
    pub fn peek_vifb(&self, key: &str) -> Option<Arc<[u8]>> {
        match &self.backend {
            Backend::Memory(_) => self.vifbs.borrow().get(key).cloned(),
            Backend::Disk(dir) => {
                if let Some(b) = self.vifbs.borrow().get(key) {
                    return Some(Arc::clone(b));
                }
                let bytes = std::fs::read(dir.join(format!("{}.vifb", sanitize(key)))).ok()?;
                let shared: Arc<[u8]> = Arc::from(bytes);
                self.vifbs
                    .borrow_mut()
                    .insert(key.to_string(), Arc::clone(&shared));
                Some(shared)
            }
        }
    }

    /// The unit's incremental stamp, if one was recorded.
    pub fn stamp(&self, key: &str) -> Option<u64> {
        self.stamps.borrow().get(key).copied()
    }

    /// Records the unit's incremental stamp (persisted for on-disk
    /// libraries).
    ///
    /// # Errors
    ///
    /// I/O errors persisting the stamp file.
    pub fn set_stamp(&self, key: &str, stamp: u64) -> Result<(), VifError> {
        self.stamps.borrow_mut().insert(key.to_string(), stamp);
        if let Backend::Disk(dir) = &self.backend {
            let mut lines: Vec<String> = self
                .stamps
                .borrow()
                .iter()
                .map(|(k, v)| format!("{k} {v:x}"))
                .collect();
            lines.sort();
            write_atomic(dir, "stamps", &lines.join("\n"))?;
        }
        Ok(())
    }

    /// Raw VIF text without touching the traffic counters (snapshots and
    /// stamp hashing are bookkeeping, not compilation VIF traffic).
    ///
    /// # Errors
    ///
    /// [`VifError::MissingUnit`] if absent; I/O errors on disk.
    pub fn peek_raw(&self, key: &str) -> Result<String, VifError> {
        self.peek_shared(key).map(|t| t.to_string())
    }

    /// Like [`Library::peek_raw`] but returns the shared text. For
    /// in-memory libraries this is a reference-count bump, not a copy —
    /// the server relies on this to fork session workspaces cheaply.
    ///
    /// # Errors
    ///
    /// [`VifError::MissingUnit`] if absent; I/O errors on disk.
    pub fn peek_shared(&self, key: &str) -> Result<Arc<str>, VifError> {
        match &self.backend {
            Backend::Memory(m) => m
                .borrow()
                .get(key)
                .cloned()
                .ok_or_else(|| VifError::MissingUnit(format!("{}.{key}", self.name))),
            Backend::Disk(dir) => {
                let path = dir.join(format!("{}.vif", sanitize(key)));
                if !path.exists() {
                    return Err(VifError::MissingUnit(format!("{}.{key}", self.name)));
                }
                Ok(Arc::from(std::fs::read_to_string(path)?.as_str()))
            }
        }
    }

    /// FNV-1a hash of the unit's current VIF text (memoized until the
    /// unit is recompiled). This is the hash a valid sidecar embeds, and
    /// the per-dependency ingredient of incremental stamps — the batch
    /// driver uses it instead of re-reading and re-hashing dep text.
    ///
    /// # Errors
    ///
    /// [`VifError::MissingUnit`] if absent; I/O errors on disk.
    pub fn text_hash(&self, key: &str) -> Result<u64, VifError> {
        Ok(self.fingerprint(key)?.text_hash)
    }

    fn fingerprint(&self, key: &str) -> Result<Fingerprint, VifError> {
        if let Some(fp) = self.fingerprints.borrow().get(key) {
            return Ok(fp.clone());
        }
        let text = self.peek_shared(key)?;
        let fp = Fingerprint {
            text_hash: binary::fnv1a(0, text.as_bytes()),
            foreigns: scan_foreign_refs(&text).into(),
        };
        self.fingerprints
            .borrow_mut()
            .insert(key.to_string(), fp.clone());
        Ok(fp)
    }

    fn content_hash_memo(&self, key: &str, gen_tag: u64) -> Option<u64> {
        match self.content_hashes.borrow().get(key) {
            Some(&(tag, h)) if tag == gen_tag => Some(h),
            _ => None,
        }
    }

    fn set_content_hash_memo(&self, key: &str, gen_tag: u64, h: u64) {
        self.content_hashes
            .borrow_mut()
            .insert(key.to_string(), (gen_tag, h));
    }

    /// Raw VIF text of a unit.
    ///
    /// # Errors
    ///
    /// [`VifError::MissingUnit`] if absent; I/O errors on disk.
    pub fn raw(&self, key: &str) -> Result<String, VifError> {
        self.raw_shared(key).map(|t| t.to_string())
    }

    /// Like [`Library::raw`] but returns the shared text (traffic is
    /// counted; in-memory libraries copy nothing).
    ///
    /// # Errors
    ///
    /// [`VifError::MissingUnit`] if absent; I/O errors on disk.
    pub fn raw_shared(&self, key: &str) -> Result<Arc<str>, VifError> {
        let text = self.peek_shared(key)?;
        {
            let mut t = self.traffic.borrow_mut();
            t.bytes_read += text.len() as u64;
            t.units_read += 1;
        }
        Ok(text)
    }

    /// `true` if the unit exists.
    pub fn contains(&self, key: &str) -> bool {
        match &self.backend {
            Backend::Memory(m) => m.borrow().contains_key(key),
            Backend::Disk(dir) => dir.join(format!("{}.vif", sanitize(key))).exists(),
        }
    }

    /// All unit keys, in usage-history order (duplicates possible when a
    /// unit was recompiled; the last occurrence is the current one).
    pub fn history(&self) -> Vec<UnitKey> {
        self.history.borrow().clone()
    }

    /// The **latest compiled architecture** for `entity` — the paper's
    /// §3.3 default-binding rule. Returns the architecture name.
    pub fn latest_architecture(&self, entity: &str) -> Option<String> {
        let prefix = format!("arch.{entity}.");
        self.history
            .borrow()
            .iter()
            .rev()
            .find(|k| k.starts_with(&prefix))
            .map(|k| k[prefix.len()..].to_string())
    }

    /// Cumulative VIF traffic so far.
    pub fn traffic(&self) -> VifTraffic {
        *self.traffic.borrow()
    }

    /// Resets the traffic counters (between benchmark phases).
    pub fn reset_traffic(&self) {
        *self.traffic.borrow_mut() = VifTraffic::default();
    }

    /// Enables/disables the unit cache (see the performance experiments).
    /// Disabling also bypasses the shared structural cache and the VIFB
    /// fast path, reproducing the paper's re-read-foreign-VIF cost model.
    pub fn set_cache_enabled(&self, on: bool) {
        self.cache_enabled.set(on);
        if !on {
            self.cache.borrow_mut().clear();
        }
    }

    fn cache_on(&self) -> bool {
        self.cache_enabled.get()
    }

    fn cache_get(&self, key: &str) -> Option<Rc<VifNode>> {
        if !self.cache_enabled.get() {
            return None;
        }
        self.cache.borrow().get(key).cloned()
    }

    fn cache_put(&self, key: &str, node: Rc<VifNode>) {
        self.cache.borrow_mut().insert(key.to_string(), node);
    }
}

/// Writes `name` under `dir` atomically: temp file + rename, temp removed
/// on failure.
fn write_atomic(dir: &std::path::Path, name: &str, text: &str) -> Result<(), VifError> {
    let tmp = dir.join(format!("{name}.tmp"));
    if let Err(e) = std::fs::write(&tmp, text) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    if let Err(e) = std::fs::rename(&tmp, dir.join(name)) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}

fn sanitize(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// The library universe of one compilation: a writable work library plus
/// read-only reference libraries, addressed by logical name. The name
/// `"work"` always denotes the work library.
pub struct LibrarySet {
    work: Rc<Library>,
    refs: Vec<Rc<Library>>,
}

impl LibrarySet {
    /// Creates a set from a work library and reference libraries.
    pub fn new(work: Rc<Library>, refs: Vec<Rc<Library>>) -> LibrarySet {
        LibrarySet { work, refs }
    }

    /// The writable work library.
    pub fn work(&self) -> &Rc<Library> {
        &self.work
    }

    /// Looks up a library by logical name (`"work"` or a reference
    /// library's name).
    pub fn library(&self, name: &str) -> Option<&Rc<Library>> {
        if name == "work" || name == self.work.name() {
            return Some(&self.work);
        }
        self.refs.iter().find(|l| l.name() == name)
    }

    /// Sum of all member libraries' store generations. Strictly increases
    /// on any `put` anywhere in the set, which makes it a sound staleness
    /// tag for anything derived from library contents (content-hash
    /// memos here, batch plans in the driver).
    pub fn generation(&self) -> u64 {
        let mut g = self.work.generation();
        for l in &self.refs {
            g += l.generation();
        }
        g
    }

    /// Loads a unit by full reference `lib.unit_key`, resolving nested
    /// foreign references recursively (the §2.2 "fix-up" step). Results are
    /// cached per library, and — when caching is enabled — shared across
    /// libraries, sessions, and batch-worker mirrors on the same thread
    /// through the structural [`NodeCache`](crate::binary), keyed by the
    /// unit's deep content hash. Structural misses decode the VIFB
    /// sidecar when a valid one exists and only fall back to text (then
    /// re-encode the sidecar) when it doesn't.
    ///
    /// # Errors
    ///
    /// [`VifError::MissingUnit`]/[`VifError::Unresolved`] for dangling
    /// references; syntax errors for corrupt files, wrapped in
    /// [`VifError::InUnit`] naming the offending unit.
    pub fn load(&self, full_ref: &str) -> Result<Rc<VifNode>, VifError> {
        self.load_at(full_ref, 0)
    }

    fn load_at(&self, full_ref: &str, depth: usize) -> Result<Rc<VifNode>, VifError> {
        if depth > MAX_LOAD_DEPTH {
            return Err(VifError::Unresolved(format!(
                "reference chain deeper than {MAX_LOAD_DEPTH} at `{full_ref}` (cycle?)"
            )));
        }
        let (lib_name, key) = full_ref
            .split_once('.')
            .ok_or_else(|| VifError::Unresolved(full_ref.to_string()))?;
        let lib = self
            .library(lib_name)
            .ok_or_else(|| VifError::Unresolved(format!("no library `{lib_name}`")))?;
        if let Some(hit) = lib.cache_get(key) {
            return Ok(hit);
        }
        // Every load is VIF traffic, structural hit or not — the traffic
        // counters measure interchange volume, not parse effort.
        let text = lib.raw_shared(key)?;
        let unit_name = || format!("{}.{key}", lib.name());

        if !lib.cache_on() {
            // Ablation mode: the paper's cost model — re-read and re-lex
            // the text every time, no sharing of any kind.
            binary::note_text_parse();
            return read_vif(&text, &mut |nested| self.load_at(nested, depth + 1))
                .map_err(|e| e.in_unit(unit_name()));
        }

        let chash = self.content_hash(lib, key, depth)?;
        if let Some(node) = binary::cache_lookup(chash) {
            lib.cache_put(key, Rc::clone(&node));
            return Ok(node);
        }

        let node = match self.try_sidecar(lib, key, depth)? {
            Some(node) => node,
            None => self.parse_text_and_repair(lib, key, &text, depth)?,
        };
        binary::cache_insert(chash, &node);
        lib.cache_put(key, Rc::clone(&node));
        Ok(node)
    }

    /// Decodes the unit's VIFB sidecar if one exists and its embedded
    /// text hash matches the current text. Returns `Ok(None)` when the
    /// sidecar is absent, stale, or corrupt (the text fallback covers
    /// those); propagates real errors from nested loads.
    fn try_sidecar(
        &self,
        lib: &Rc<Library>,
        key: &str,
        depth: usize,
    ) -> Result<Option<Rc<VifNode>>, VifError> {
        let Some(vifb) = lib.peek_vifb(key) else {
            return Ok(None);
        };
        let text_hash = lib.fingerprint(key)?.text_hash;
        match probe_vifb(&vifb) {
            Ok(header) if header.text_hash == text_hash => {}
            // Stale (hash mismatch) or corrupt header: ignore the sidecar.
            _ => return Ok(None),
        }
        match decode_vifb(&vifb, &mut |nested| self.load_at(nested, depth + 1)) {
            Ok(node) => Ok(Some(node)),
            // Corrupt body: fall back to text (which will re-encode).
            Err(VifError::Binary(_)) => Ok(None),
            // A nested load failed — that error is real either way.
            Err(e) => Err(e.in_unit(format!("{}.{key}", lib.name()))),
        }
    }

    /// The text path of a structural miss: lex the text (resolving nested
    /// refs), then re-encode a fresh sidecar from the *unresolved* tree so
    /// foreign references stay references in the binary form.
    fn parse_text_and_repair(
        &self,
        lib: &Rc<Library>,
        key: &str,
        text: &str,
        depth: usize,
    ) -> Result<Rc<VifNode>, VifError> {
        binary::note_text_parse();
        let node = read_vif(text, &mut |nested| self.load_at(nested, depth + 1))
            .map_err(|e| e.in_unit(format!("{}.{key}", lib.name())))?;
        if let Ok(raw) = read_vif_unresolved(text) {
            let text_hash = binary::fnv1a(0, text.as_bytes());
            lib.store_vifb_sidecar(key, &encode_vifb(&raw, text_hash));
        }
        Ok(node)
    }

    /// Deep content hash of a unit: the FNV-1a hash of its text combined
    /// with the (sorted) foreign references and their deep hashes. Two
    /// units with equal content hashes load to structurally identical
    /// trees, so this keys the shared structural cache. Memoized per
    /// library under the current generation sum.
    fn content_hash(&self, lib: &Rc<Library>, key: &str, depth: usize) -> Result<u64, VifError> {
        if depth > MAX_LOAD_DEPTH {
            return Err(VifError::Unresolved(format!(
                "reference chain deeper than {MAX_LOAD_DEPTH} at `{}.{key}` (cycle?)",
                lib.name()
            )));
        }
        let gen_tag = self.generation();
        if let Some(h) = lib.content_hash_memo(key, gen_tag) {
            return Ok(h);
        }
        let fp = lib.fingerprint(key)?;
        let mut h = fp.text_hash;
        // Sorted so sidecar-order and text-order fingerprints agree.
        let mut foreigns: Vec<&Rc<str>> = fp.foreigns.iter().collect();
        foreigns.sort();
        for f in foreigns {
            let (dlib_name, dkey) = f
                .split_once('.')
                .ok_or_else(|| VifError::Unresolved(f.to_string()))?;
            let dlib = self
                .library(dlib_name)
                .ok_or_else(|| VifError::Unresolved(format!("no library `{dlib_name}`")))?;
            let dh = self.content_hash(dlib, dkey, depth + 1)?;
            h = binary::fnv1a(h, f.as_bytes());
            h = binary::fnv1a(h, &dh.to_le_bytes());
        }
        lib.set_content_hash_memo(key, gen_tag, h);
        Ok(h)
    }

    /// Total VIF traffic across all libraries.
    pub fn traffic(&self) -> VifTraffic {
        let mut t = self.work.traffic();
        for l in &self.refs {
            let lt = l.traffic();
            t.bytes_read += lt.bytes_read;
            t.bytes_written += lt.bytes_written;
            t.units_read += lt.units_read;
            t.units_written += lt.units_written;
        }
        t
    }

    /// Resets all traffic counters.
    pub fn reset_traffic(&self) {
        self.work.reset_traffic();
        for l in &self.refs {
            l.reset_traffic();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{VifNode, VifValue};

    fn unit(name: &str) -> Rc<VifNode> {
        VifNode::build("entity").name(name).done()
    }

    #[test]
    fn memory_put_get_history() {
        let lib = Library::in_memory("work");
        lib.put("entity.e", &unit("e")).unwrap();
        lib.put("arch.e.rtl", &unit("rtl")).unwrap();
        lib.put("arch.e.fast", &unit("fast")).unwrap();
        assert!(lib.contains("entity.e"));
        assert!(!lib.contains("entity.zzz"));
        assert_eq!(lib.history().len(), 3);
        assert_eq!(lib.latest_architecture("e"), Some("fast".to_string()));
        // Recompiling rtl makes it latest — the §3.3 nondeterminism.
        lib.put("arch.e.rtl", &unit("rtl")).unwrap();
        assert_eq!(lib.latest_architecture("e"), Some("rtl".to_string()));
        assert_eq!(lib.latest_architecture("other"), None);
        // Each put bumps the generation.
        assert_eq!(lib.generation(), 4);
    }

    #[test]
    fn library_set_resolves_nested_foreign_refs() {
        let work = Rc::new(Library::in_memory("work"));
        let lib2 = Rc::new(Library::in_memory("ieee"));
        // ieee.pkg.base is a leaf; work.pkg.mid references it; work.entity.top
        // references mid — loading top must pull in all three.
        lib2.put("pkg.base", &unit("base")).unwrap();
        let mid = VifNode::build("package")
            .name("mid")
            .field("uses", VifValue::Foreign("ieee.pkg.base".into()))
            .done();
        work.put("pkg.mid", &mid).unwrap();
        let top = VifNode::build("entity")
            .name("top")
            .field("uses", VifValue::Foreign("work.pkg.mid".into()))
            .done();
        work.put("entity.top", &top).unwrap();

        let set = LibrarySet::new(Rc::clone(&work), vec![Rc::clone(&lib2)]);
        let loaded = set.load("work.entity.top").unwrap();
        let mid = loaded.node_field("uses").unwrap();
        let base = mid.node_field("uses").unwrap();
        assert_eq!(base.name(), Some("base"));
        let t = set.traffic();
        assert_eq!(t.units_read, 3);
        assert!(t.bytes_read > 0);

        // Second load hits the cache: no extra reads.
        set.load("work.entity.top").unwrap();
        assert_eq!(set.traffic().units_read, 3);
    }

    #[test]
    fn missing_unit_error() {
        let set = LibrarySet::new(Rc::new(Library::in_memory("work")), vec![]);
        assert!(matches!(
            set.load("work.entity.nope").unwrap_err(),
            VifError::MissingUnit(_)
        ));
        assert!(set.load("nolib.entity.e").is_err());
        assert!(set.load("badref").is_err());
    }

    #[test]
    fn disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("viftest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let lib = Library::on_disk("work", &dir).unwrap();
            lib.put("entity.e", &unit("e")).unwrap();
            lib.put("arch.e.rtl", &unit("rtl")).unwrap();
        }
        {
            let lib = Rc::new(Library::on_disk("work", &dir).unwrap());
            assert!(lib.contains("entity.e"));
            assert_eq!(lib.latest_architecture("e"), Some("rtl".to_string()));
            let set = LibrarySet::new(lib, vec![]);
            let e = set.load("work.entity.e").unwrap();
            assert_eq!(e.name(), Some("e"));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_put_leaves_no_stale_state() {
        let dir = std::env::temp_dir().join(format!("vif-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let lib = Library::on_disk("work", &dir).unwrap();
        lib.put("entity.e", &unit("v1")).unwrap();
        lib.set_stamp("entity.e", 0xabcd).unwrap();
        let old_text = lib.raw("entity.e").unwrap();
        let history_before = lib.history();
        let traffic_before = lib.traffic();
        let generation_before = lib.generation();

        // Force the unit-file rename to fail deterministically (works even
        // as root, where a read-only dir would not): occupy the target
        // path with a non-empty directory.
        let target = dir.join("entity.e.vif");
        std::fs::remove_file(&target).unwrap();
        std::fs::create_dir(&target).unwrap();
        std::fs::write(target.join("occupied"), "x").unwrap();

        let err = lib.put("entity.e", &unit("v2"));
        assert!(err.is_err(), "rename onto a non-empty dir must fail");
        // No stale in-memory copy: history, traffic, generation, and stamp
        // unchanged; no temp file left behind.
        assert_eq!(lib.history(), history_before);
        assert_eq!(lib.traffic(), traffic_before);
        assert_eq!(lib.generation(), generation_before);
        assert_eq!(lib.stamp("entity.e"), Some(0xabcd));
        assert!(!dir.join("entity.e.vif.tmp").exists());

        // Restore the file; `raw` and `load` still see the old version.
        std::fs::remove_dir_all(&target).unwrap();
        std::fs::write(&target, &old_text).unwrap();
        assert_eq!(lib.raw("entity.e").unwrap(), old_text);
        let set = LibrarySet::new(Rc::new(Library::on_disk("work", &dir).unwrap()), vec![]);
        assert_eq!(set.load("work.entity.e").unwrap().name(), Some("v1"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_put_on_readonly_dir() {
        let dir = std::env::temp_dir().join(format!("vif-ro-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let lib = Library::on_disk("work", &dir).unwrap();
        lib.put("entity.e", &unit("v1")).unwrap();
        let history_before = lib.history();

        use std::os::unix::fs::PermissionsExt;
        std::fs::set_permissions(&dir, std::fs::Permissions::from_mode(0o555)).unwrap();
        let r = lib.put("entity.e", &unit("v2"));
        std::fs::set_permissions(&dir, std::fs::Permissions::from_mode(0o755)).unwrap();
        match r {
            // Privileged processes (root in CI containers) bypass the
            // permission bits; the directory-blocked test above covers the
            // failure path there.
            Ok(()) => {}
            Err(_) => {
                assert_eq!(lib.history(), history_before);
                let set = LibrarySet::new(Rc::new(Library::on_disk("work", &dir).unwrap()), vec![]);
                assert_eq!(set.load("work.entity.e").unwrap().name(), Some("v1"));
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_round_trip_and_stamps() {
        let dir = std::env::temp_dir().join(format!("vif-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let lib = Library::on_disk("work", &dir).unwrap();
            lib.put("entity.e", &unit("e")).unwrap();
            lib.put("arch.e.rtl", &unit("rtl")).unwrap();
            lib.put("arch.e.fast", &unit("fast")).unwrap();
            lib.put("arch.e.rtl", &unit("rtl")).unwrap();
            lib.set_stamp("entity.e", 17).unwrap();
            lib.set_stamp("arch.e.rtl", 0xdead_beef).unwrap();
        }
        // Stamps persist across a reopen.
        let lib = Library::on_disk("work", &dir).unwrap();
        assert_eq!(lib.stamp("entity.e"), Some(17));
        assert_eq!(lib.stamp("arch.e.rtl"), Some(0xdead_beef));
        assert_eq!(lib.stamp("arch.e.fast"), None);

        // A snapshot mirrors contents and history (incl. duplicates), and
        // reading it back reproduces history-derived answers.
        let before = lib.traffic();
        let snap = lib.snapshot();
        assert_eq!(lib.traffic(), before, "snapshots are not VIF traffic");
        assert_eq!(snap.history.len(), 4);
        assert_eq!(snap.units.len(), 3);
        let mirror = Library::from_snapshot(&snap);
        assert_eq!(mirror.history(), lib.history());
        // Stamps travel with the snapshot, so a forked workspace keeps
        // its incremental cache warm.
        assert_eq!(mirror.stamp("entity.e"), Some(17));
        assert_eq!(mirror.stamp("arch.e.rtl"), Some(0xdead_beef));
        assert_eq!(mirror.stamp("arch.e.fast"), None);
        assert_eq!(mirror.latest_architecture("e"), Some("rtl".to_string()));
        assert_eq!(
            mirror.peek_raw("entity.e").unwrap(),
            lib.peek_raw("entity.e").unwrap()
        );
        // In-memory snapshot/mirror text is shared, not copied: forking a
        // mirror from a mirror's snapshot bumps refcounts only.
        let snap2 = mirror.snapshot();
        let mirror2 = Library::from_snapshot(&snap2);
        let a = mirror.peek_shared("entity.e").unwrap();
        let b = mirror2.peek_shared("entity.e").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "mirror text must be shared");
        // Recompiling through put_text drops the stale stamp.
        let text = lib.peek_raw("entity.e").unwrap();
        lib.put_text("entity.e", &text).unwrap();
        assert_eq!(lib.stamp("entity.e"), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn traffic_reset() {
        let lib = Library::in_memory("work");
        lib.put("entity.e", &unit("e")).unwrap();
        assert!(lib.traffic().bytes_written > 0);
        lib.reset_traffic();
        assert_eq!(lib.traffic(), VifTraffic::default());
    }

    /// Builds the VIFB sidecar for a text the way the batch workers do:
    /// encode the unresolved tree, stamped with the text's hash.
    fn sidecar_for(text: &str) -> Vec<u8> {
        let raw = read_vif_unresolved(text).unwrap();
        encode_vifb(&raw, binary::fnv1a(0, text.as_bytes()))
    }

    #[test]
    fn load_repairs_missing_sidecar_on_disk() {
        let dir = std::env::temp_dir().join(format!("vif-side-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let lib = Rc::new(Library::on_disk("work", &dir).unwrap());
        // `put` installs text + sidecar together; storing bare text (the
        // primitive every sidecar-less writer bottoms out in) drops it.
        lib.put("entity.e", &unit("e")).unwrap();
        assert!(dir.join("entity.e.vifb").exists(), "put installs a sidecar");
        let text = lib.peek_raw("entity.e").unwrap();
        lib.put_text("entity.e", &text).unwrap();
        assert!(
            !dir.join("entity.e.vifb").exists(),
            "bare put_text stores no sidecar"
        );
        let set = LibrarySet::new(Rc::clone(&lib), vec![]);
        let loaded = set.load("work.entity.e").unwrap();
        assert_eq!(loaded.name(), Some("e"));
        // The text-path load repaired the sidecar...
        assert!(dir.join("entity.e.vifb").exists());
        // ...and it is valid: embedded hash matches the text, and a fresh
        // library decodes it to the same tree.
        let text = lib.peek_raw("entity.e").unwrap();
        let lib2 = Rc::new(Library::on_disk("work", &dir).unwrap());
        let vifb = lib2.peek_vifb("entity.e").unwrap();
        let header = probe_vifb(&vifb).unwrap();
        assert_eq!(header.text_hash, binary::fnv1a(0, text.as_bytes()));
        let set2 = LibrarySet::new(lib2, vec![]);
        assert_eq!(set2.load("work.entity.e").unwrap(), loaded);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_or_corrupt_sidecar_falls_back_to_text() {
        let lib = Rc::new(Library::in_memory("work"));
        let text_a = write_vif(&unit("a"));
        let text_b = write_vif(&unit("b"));
        // Stale: sidecar mirrors text A but the unit stores text B.
        lib.put_text_with_vifb("entity.e", &text_b, &sidecar_for(&text_a))
            .unwrap();
        let set = LibrarySet::new(Rc::clone(&lib), vec![]);
        assert_eq!(
            set.load("work.entity.e").unwrap().name(),
            Some("b"),
            "hash-mismatched sidecar must be ignored"
        );
        // The fallback repaired the sidecar in place.
        let repaired = lib.peek_vifb("entity.e").unwrap();
        assert_eq!(
            probe_vifb(&repaired).unwrap().text_hash,
            binary::fnv1a(0, text_b.as_bytes())
        );

        // Corrupt: garbage bytes as a sidecar are equally harmless.
        let lib2 = Rc::new(Library::in_memory("work"));
        lib2.put_text_with_vifb("entity.e", &text_a, b"VIFBgarbage")
            .unwrap();
        let set2 = LibrarySet::new(Rc::clone(&lib2), vec![]);
        assert_eq!(set2.load("work.entity.e").unwrap().name(), Some("a"));

        // put_text drops a previously-installed sidecar.
        lib2.put_text("entity.e", &text_b).unwrap();
        assert!(lib2.peek_vifb("entity.e").is_none());
    }

    #[test]
    fn snapshot_carries_sidecars_shared() {
        let lib = Library::in_memory("work");
        let text = write_vif(&unit("e"));
        lib.put_text_with_vifb("entity.e", &text, &sidecar_for(&text))
            .unwrap();
        let snap = lib.snapshot();
        assert_eq!(snap.vifbs.len(), 1);
        let mirror = Library::from_snapshot(&snap);
        let a = lib.peek_vifb("entity.e").unwrap();
        let b = mirror.peek_vifb("entity.e").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "sidecar buffers must be shared");
    }

    #[test]
    fn malformed_dep_names_the_offending_unit() {
        let work = Rc::new(Library::in_memory("work"));
        // mid's VIF text is malformed; top references it.
        work.put_text("pkg.mid", "VIF1\n#0 (package \"mid\" (broken")
            .unwrap();
        let top = VifNode::build("entity")
            .name("top")
            .field("uses", VifValue::Foreign("work.pkg.mid".into()))
            .done();
        work.put("entity.top", &top).unwrap();
        let set = LibrarySet::new(Rc::clone(&work), vec![]);
        let err = set.load("work.entity.top").unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("work.pkg.mid"),
            "error must name the offending unit, got: {msg}"
        );
        match err {
            VifError::InUnit { unit, .. } => assert_eq!(unit, "work.pkg.mid"),
            e => panic!("expected InUnit, got {e}"),
        }
        // Same attribution when the top-level unit itself is malformed.
        work.put_text("pkg.bad", "VIF1\n#0 (oops").unwrap();
        let msg = set.load("work.pkg.bad").unwrap_err().to_string();
        assert!(msg.contains("work.pkg.bad"), "{msg}");
    }

    #[test]
    fn structural_cache_shares_across_library_forks() {
        let lib = Rc::new(Library::in_memory("work"));
        // A tree unique to this test so the thread-local structural cache
        // cannot have seen it before.
        let node = VifNode::build("entity")
            .name("fork_share_probe")
            .str_field("tag", "structural_cache_shares_across_library_forks")
            .done();
        lib.put("entity.probe", &node).unwrap();
        let set = LibrarySet::new(Rc::clone(&lib), vec![]);
        let first = set.load("work.entity.probe").unwrap();

        // Fork the library (as the server forks session workspaces) and
        // load the same unit: same thread → pointer-shared tree, and the
        // per-key cache was empty so this went through the content hash.
        let fork = Rc::new(Library::from_snapshot(&lib.snapshot()));
        let set2 = LibrarySet::new(Rc::clone(&fork), vec![]);
        let second = set2.load("work.entity.probe").unwrap();
        assert!(
            Rc::ptr_eq(&first, &second),
            "forked load must share the decoded tree"
        );
        // Traffic still counted on the structural hit.
        assert_eq!(fork.traffic().units_read, 1);
    }

    #[test]
    fn disabled_cache_reverts_to_reread_cost_model() {
        let lib = Rc::new(Library::in_memory("work"));
        lib.put("entity.e", &unit("e")).unwrap();
        lib.set_cache_enabled(false);
        let set = LibrarySet::new(Rc::clone(&lib), vec![]);
        set.load("work.entity.e").unwrap();
        set.load("work.entity.e").unwrap();
        // No per-key cache, no structural sharing: every load re-reads.
        assert_eq!(set.traffic().units_read, 2);
    }

    #[test]
    fn content_hash_distinguishes_dep_state() {
        // Same top text, different dep contents → different content hash,
        // so the structural cache cannot confuse the two states. Observe
        // it indirectly: after recompiling the dep, a fresh load of top
        // must see the new dep, even though top's text is unchanged.
        let work = Rc::new(Library::in_memory("work"));
        work.put("pkg.dep", &unit("old")).unwrap();
        let top = VifNode::build("entity")
            .name("chash_probe_top")
            .field("uses", VifValue::Foreign("work.pkg.dep".into()))
            .done();
        work.put("entity.top", &top).unwrap();
        let set = LibrarySet::new(Rc::clone(&work), vec![]);
        let first = set.load("work.entity.top").unwrap();
        assert_eq!(first.node_field("uses").unwrap().name(), Some("old"));

        work.put("pkg.dep", &unit("new")).unwrap();
        // The per-key cache still holds the old tree (driver invalidation
        // handles that); a *fork* has no per-key cache and must not get
        // the stale structural entry either.
        let fork = Rc::new(Library::from_snapshot(&work.snapshot()));
        let set2 = LibrarySet::new(Rc::clone(&fork), vec![]);
        let second = set2.load("work.entity.top").unwrap();
        assert_eq!(second.node_field("uses").unwrap().name(), Some("new"));
        assert!(!Rc::ptr_eq(&first, &second));
    }

    #[test]
    fn cyclic_foreign_refs_error_instead_of_hanging() {
        let work = Rc::new(Library::in_memory("work"));
        work.put_text(
            "pkg.a",
            "VIF1\n#0 (package \"a\" (uses @\"work.pkg.b\"))\nroot #0\n",
        )
        .unwrap();
        work.put_text(
            "pkg.b",
            "VIF1\n#0 (package \"b\" (uses @\"work.pkg.a\"))\nroot #0\n",
        )
        .unwrap();
        let set = LibrarySet::new(Rc::clone(&work), vec![]);
        let err = set.load("work.pkg.a").unwrap_err();
        assert!(err.to_string().contains("deeper than"), "{err}");
    }

    #[test]
    fn text_hash_matches_binary_fnv_and_memoizes() {
        let lib = Library::in_memory("work");
        lib.put("entity.e", &unit("e")).unwrap();
        let text = lib.peek_raw("entity.e").unwrap();
        let h = lib.text_hash("entity.e").unwrap();
        assert_eq!(h, binary::fnv1a(0, text.as_bytes()));
        // Recompile changes the hash.
        lib.put("entity.e", &unit("changed")).unwrap();
        assert_ne!(lib.text_hash("entity.e").unwrap(), h);
        assert!(lib.text_hash("entity.missing").is_err());
    }
}
