//! Design libraries: named collections of separately-compiled units.
//!
//! The compiler "accepts … a working library where the successfully
//! compiled units are placed and a reference library which can be
//! referenced … but not updated" (§2). A [`Library`] stores one VIF file
//! per unit plus a **usage history** — the compilation order — because the
//! default-binding rules depend on "the latest compiled architecture for
//! that entity" (§3.3), which makes configuration defaults dependent on
//! library history.

use std::cell::RefCell;
use std::collections::HashMap;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::Arc;

use crate::node::VifNode;
use crate::text::{read_vif, write_vif, VifError};

/// Key of a unit within a library: `"entity.<name>"`, `"arch.<entity>.<name>"`,
/// `"pkg.<name>"`, `"pkgbody.<name>"`, or `"config.<name>"`.
pub type UnitKey = String;

/// Cumulative VIF traffic statistics (for the phase-breakdown experiments).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VifTraffic {
    /// Bytes of VIF text written.
    pub bytes_written: u64,
    /// Bytes of VIF text read.
    pub bytes_read: u64,
    /// Units written.
    pub units_written: u64,
    /// Units read (including those pulled in by nested foreign references).
    pub units_read: u64,
}

enum Backend {
    Memory(RefCell<HashMap<UnitKey, Arc<str>>>),
    Disk(PathBuf),
}

/// A thread-transferable image of a library: unit texts plus the usage
/// history, in history order. Unit texts are shared `Arc<str>` — taking a
/// snapshot of an in-memory library copies no text, and cloning a snapshot
/// (the batch compiler ships one per worker, each rebuilding a mirror with
/// [`Library::from_snapshot`]; the server forks one per session workspace)
/// only bumps reference counts.
#[derive(Clone, Debug)]
pub struct LibrarySnapshot {
    /// Library logical name.
    pub name: String,
    /// Usage history, oldest first (duplicates preserved).
    pub history: Vec<UnitKey>,
    /// Current VIF text per distinct unit key (shared, copy-on-write).
    pub units: Vec<(UnitKey, Arc<str>)>,
    /// Incremental stamps at snapshot time, so a forked workspace's
    /// first analyze of unchanged text is a cache hit.
    pub stamps: Vec<(UnitKey, u64)>,
}

/// One design library.
pub struct Library {
    name: String,
    backend: Backend,
    /// Compilation order (usage history), oldest first.
    history: RefCell<Vec<UnitKey>>,
    traffic: RefCell<VifTraffic>,
    /// Cache of resolved units (cleared never — units are immutable; a
    /// recompile replaces the entry).
    cache: RefCell<HashMap<UnitKey, Rc<VifNode>>>,
    /// Caching toggle: the paper's compiler re-read foreign VIF per
    /// compilation; disabling the cache reproduces that cost model for the
    /// performance experiments.
    cache_enabled: std::cell::Cell<bool>,
    /// Incremental-compilation stamps: content hash of the source tokens
    /// combined with the hashes of the dependency VIF texts at the time
    /// the unit was last analyzed. A unit whose recomputed stamp matches
    /// needs no re-analysis.
    stamps: RefCell<HashMap<UnitKey, u64>>,
}

impl Library {
    /// Creates an in-memory library (tests, benches).
    pub fn in_memory(name: &str) -> Library {
        Library {
            name: name.to_string(),
            backend: Backend::Memory(RefCell::new(HashMap::new())),
            history: RefCell::new(Vec::new()),
            traffic: RefCell::new(VifTraffic::default()),
            cache: RefCell::new(HashMap::new()),
            cache_enabled: std::cell::Cell::new(true),
            stamps: RefCell::new(HashMap::new()),
        }
    }

    /// Rebuilds an in-memory library from a [`LibrarySnapshot`] — the
    /// worker-side mirror of the batch compiler.
    pub fn from_snapshot(snap: &LibrarySnapshot) -> Library {
        let lib = Library::in_memory(&snap.name);
        {
            let mut m = match &lib.backend {
                Backend::Memory(m) => m.borrow_mut(),
                Backend::Disk(_) => unreachable!("in_memory"),
            };
            for (k, text) in &snap.units {
                m.insert(k.clone(), Arc::clone(text));
            }
        }
        *lib.history.borrow_mut() = snap.history.clone();
        *lib.stamps.borrow_mut() = snap.stamps.iter().cloned().collect();
        lib
    }

    /// Captures the library's current contents as plain text (no traffic
    /// is counted; snapshots are a scheduling mechanism, not VIF reads).
    pub fn snapshot(&self) -> LibrarySnapshot {
        let history = self.history.borrow().clone();
        let mut seen = std::collections::HashSet::new();
        let mut units = Vec::new();
        for k in &history {
            if !seen.insert(k.clone()) {
                continue;
            }
            if let Ok(text) = self.peek_shared(k) {
                units.push((k.clone(), text));
            }
        }
        let mut stamps: Vec<(UnitKey, u64)> = self
            .stamps
            .borrow()
            .iter()
            .map(|(k, &s)| (k.clone(), s))
            .collect();
        stamps.sort();
        LibrarySnapshot {
            name: self.name.clone(),
            history,
            units,
            stamps,
        }
    }

    /// Opens (or creates) an on-disk library rooted at `dir`.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory or reading the history file.
    pub fn on_disk(name: &str, dir: impl Into<PathBuf>) -> Result<Library, VifError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let history_path = dir.join("history");
        let history = if history_path.exists() {
            std::fs::read_to_string(&history_path)?
                .lines()
                .map(str::to_string)
                .collect()
        } else {
            Vec::new()
        };
        let stamps_path = dir.join("stamps");
        let mut stamps = HashMap::new();
        if stamps_path.exists() {
            for line in std::fs::read_to_string(&stamps_path)?.lines() {
                if let Some((key, hex)) = line.rsplit_once(' ') {
                    if let Ok(h) = u64::from_str_radix(hex, 16) {
                        stamps.insert(key.to_string(), h);
                    }
                }
            }
        }
        Ok(Library {
            name: name.to_string(),
            backend: Backend::Disk(dir),
            history: RefCell::new(history),
            traffic: RefCell::new(VifTraffic::default()),
            cache: RefCell::new(HashMap::new()),
            cache_enabled: std::cell::Cell::new(true),
            stamps: RefCell::new(stamps),
        })
    }

    /// The library's logical name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stores a unit (replacing any previous version) and appends it to the
    /// usage history.
    ///
    /// # Errors
    ///
    /// I/O errors on disk-backed libraries.
    pub fn put(&self, key: &str, node: &Rc<VifNode>) -> Result<(), VifError> {
        self.put_text(key, &write_vif(node))
    }

    /// Stores a unit from its already-serialized VIF text. This is the
    /// primitive `put` builds on; the batch compiler also uses it directly
    /// so the committed bytes are exactly the worker-produced bytes.
    ///
    /// The store is atomic: on disk the text is written to a temp file and
    /// renamed over the unit file, and no in-memory state (cache, history,
    /// traffic, stamps) changes unless the write succeeded — a failed
    /// `put` followed by [`Library::raw`] still sees the old version.
    ///
    /// # Errors
    ///
    /// I/O errors on disk-backed libraries.
    pub fn put_text(&self, key: &str, text: &str) -> Result<(), VifError> {
        match &self.backend {
            Backend::Memory(m) => {
                m.borrow_mut().insert(key.to_string(), Arc::from(text));
            }
            Backend::Disk(dir) => {
                let path = dir.join(format!("{}.vif", sanitize(key)));
                let tmp = dir.join(format!("{}.vif.tmp", sanitize(key)));
                if let Err(e) = std::fs::write(&tmp, text) {
                    let _ = std::fs::remove_file(&tmp);
                    return Err(e.into());
                }
                if let Err(e) = std::fs::rename(&tmp, &path) {
                    let _ = std::fs::remove_file(&tmp);
                    return Err(e.into());
                }
            }
        }
        {
            let mut t = self.traffic.borrow_mut();
            t.bytes_written += text.len() as u64;
            t.units_written += 1;
        }
        self.cache.borrow_mut().remove(key);
        // A recompile invalidates any stamp from the previous analysis;
        // the incremental driver re-stamps after a successful commit.
        self.stamps.borrow_mut().remove(key);
        self.history.borrow_mut().push(key.to_string());
        if let Backend::Disk(dir) = &self.backend {
            if let Err(e) = write_atomic(dir, "history", &self.history.borrow().join("\n")) {
                self.history.borrow_mut().pop();
                return Err(e);
            }
        }
        Ok(())
    }

    /// The unit's incremental stamp, if one was recorded.
    pub fn stamp(&self, key: &str) -> Option<u64> {
        self.stamps.borrow().get(key).copied()
    }

    /// Records the unit's incremental stamp (persisted for on-disk
    /// libraries).
    ///
    /// # Errors
    ///
    /// I/O errors persisting the stamp file.
    pub fn set_stamp(&self, key: &str, stamp: u64) -> Result<(), VifError> {
        self.stamps.borrow_mut().insert(key.to_string(), stamp);
        if let Backend::Disk(dir) = &self.backend {
            let mut lines: Vec<String> = self
                .stamps
                .borrow()
                .iter()
                .map(|(k, v)| format!("{k} {v:x}"))
                .collect();
            lines.sort();
            write_atomic(dir, "stamps", &lines.join("\n"))?;
        }
        Ok(())
    }

    /// Raw VIF text without touching the traffic counters (snapshots and
    /// stamp hashing are bookkeeping, not compilation VIF traffic).
    ///
    /// # Errors
    ///
    /// [`VifError::MissingUnit`] if absent; I/O errors on disk.
    pub fn peek_raw(&self, key: &str) -> Result<String, VifError> {
        self.peek_shared(key).map(|t| t.to_string())
    }

    /// Like [`Library::peek_raw`] but returns the shared text. For
    /// in-memory libraries this is a reference-count bump, not a copy —
    /// the server relies on this to fork session workspaces cheaply.
    ///
    /// # Errors
    ///
    /// [`VifError::MissingUnit`] if absent; I/O errors on disk.
    pub fn peek_shared(&self, key: &str) -> Result<Arc<str>, VifError> {
        match &self.backend {
            Backend::Memory(m) => m
                .borrow()
                .get(key)
                .cloned()
                .ok_or_else(|| VifError::MissingUnit(format!("{}.{key}", self.name))),
            Backend::Disk(dir) => {
                let path = dir.join(format!("{}.vif", sanitize(key)));
                if !path.exists() {
                    return Err(VifError::MissingUnit(format!("{}.{key}", self.name)));
                }
                Ok(Arc::from(std::fs::read_to_string(path)?.as_str()))
            }
        }
    }

    /// Raw VIF text of a unit.
    ///
    /// # Errors
    ///
    /// [`VifError::MissingUnit`] if absent; I/O errors on disk.
    pub fn raw(&self, key: &str) -> Result<String, VifError> {
        let text = self.peek_raw(key)?;
        {
            let mut t = self.traffic.borrow_mut();
            t.bytes_read += text.len() as u64;
            t.units_read += 1;
        }
        Ok(text)
    }

    /// `true` if the unit exists.
    pub fn contains(&self, key: &str) -> bool {
        match &self.backend {
            Backend::Memory(m) => m.borrow().contains_key(key),
            Backend::Disk(dir) => dir.join(format!("{}.vif", sanitize(key))).exists(),
        }
    }

    /// All unit keys, in usage-history order (duplicates possible when a
    /// unit was recompiled; the last occurrence is the current one).
    pub fn history(&self) -> Vec<UnitKey> {
        self.history.borrow().clone()
    }

    /// The **latest compiled architecture** for `entity` — the paper's
    /// §3.3 default-binding rule. Returns the architecture name.
    pub fn latest_architecture(&self, entity: &str) -> Option<String> {
        let prefix = format!("arch.{entity}.");
        self.history
            .borrow()
            .iter()
            .rev()
            .find(|k| k.starts_with(&prefix))
            .map(|k| k[prefix.len()..].to_string())
    }

    /// Cumulative VIF traffic so far.
    pub fn traffic(&self) -> VifTraffic {
        *self.traffic.borrow()
    }

    /// Resets the traffic counters (between benchmark phases).
    pub fn reset_traffic(&self) {
        *self.traffic.borrow_mut() = VifTraffic::default();
    }

    /// Enables/disables the unit cache (see the performance experiments).
    pub fn set_cache_enabled(&self, on: bool) {
        self.cache_enabled.set(on);
        if !on {
            self.cache.borrow_mut().clear();
        }
    }

    fn cache_get(&self, key: &str) -> Option<Rc<VifNode>> {
        if !self.cache_enabled.get() {
            return None;
        }
        self.cache.borrow().get(key).cloned()
    }

    fn cache_put(&self, key: &str, node: Rc<VifNode>) {
        self.cache.borrow_mut().insert(key.to_string(), node);
    }
}

/// Writes `name` under `dir` atomically: temp file + rename, temp removed
/// on failure.
fn write_atomic(dir: &std::path::Path, name: &str, text: &str) -> Result<(), VifError> {
    let tmp = dir.join(format!("{name}.tmp"));
    if let Err(e) = std::fs::write(&tmp, text) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    if let Err(e) = std::fs::rename(&tmp, dir.join(name)) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}

fn sanitize(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// The library universe of one compilation: a writable work library plus
/// read-only reference libraries, addressed by logical name. The name
/// `"work"` always denotes the work library.
pub struct LibrarySet {
    work: Rc<Library>,
    refs: Vec<Rc<Library>>,
}

impl LibrarySet {
    /// Creates a set from a work library and reference libraries.
    pub fn new(work: Rc<Library>, refs: Vec<Rc<Library>>) -> LibrarySet {
        LibrarySet { work, refs }
    }

    /// The writable work library.
    pub fn work(&self) -> &Rc<Library> {
        &self.work
    }

    /// Looks up a library by logical name (`"work"` or a reference
    /// library's name).
    pub fn library(&self, name: &str) -> Option<&Rc<Library>> {
        if name == "work" || name == self.work.name() {
            return Some(&self.work);
        }
        self.refs.iter().find(|l| l.name() == name)
    }

    /// Loads a unit by full reference `lib.unit_key`, resolving nested
    /// foreign references recursively (the §2.2 "fix-up" step). Results are
    /// cached per library.
    ///
    /// # Errors
    ///
    /// [`VifError::MissingUnit`]/[`VifError::Unresolved`] for dangling
    /// references; syntax errors for corrupt files.
    pub fn load(&self, full_ref: &str) -> Result<Rc<VifNode>, VifError> {
        let (lib_name, key) = full_ref
            .split_once('.')
            .ok_or_else(|| VifError::Unresolved(full_ref.to_string()))?;
        let lib = self
            .library(lib_name)
            .ok_or_else(|| VifError::Unresolved(format!("no library `{lib_name}`")))?;
        if let Some(hit) = lib.cache_get(key) {
            return Ok(hit);
        }
        let text = lib.raw(key)?;
        let node = read_vif(&text, &mut |nested| self.load(nested))?;
        lib.cache_put(key, Rc::clone(&node));
        Ok(node)
    }

    /// Total VIF traffic across all libraries.
    pub fn traffic(&self) -> VifTraffic {
        let mut t = self.work.traffic();
        for l in &self.refs {
            let lt = l.traffic();
            t.bytes_read += lt.bytes_read;
            t.bytes_written += lt.bytes_written;
            t.units_read += lt.units_read;
            t.units_written += lt.units_written;
        }
        t
    }

    /// Resets all traffic counters.
    pub fn reset_traffic(&self) {
        self.work.reset_traffic();
        for l in &self.refs {
            l.reset_traffic();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{VifNode, VifValue};

    fn unit(name: &str) -> Rc<VifNode> {
        VifNode::build("entity").name(name).done()
    }

    #[test]
    fn memory_put_get_history() {
        let lib = Library::in_memory("work");
        lib.put("entity.e", &unit("e")).unwrap();
        lib.put("arch.e.rtl", &unit("rtl")).unwrap();
        lib.put("arch.e.fast", &unit("fast")).unwrap();
        assert!(lib.contains("entity.e"));
        assert!(!lib.contains("entity.zzz"));
        assert_eq!(lib.history().len(), 3);
        assert_eq!(lib.latest_architecture("e"), Some("fast".to_string()));
        // Recompiling rtl makes it latest — the §3.3 nondeterminism.
        lib.put("arch.e.rtl", &unit("rtl")).unwrap();
        assert_eq!(lib.latest_architecture("e"), Some("rtl".to_string()));
        assert_eq!(lib.latest_architecture("other"), None);
    }

    #[test]
    fn library_set_resolves_nested_foreign_refs() {
        let work = Rc::new(Library::in_memory("work"));
        let lib2 = Rc::new(Library::in_memory("ieee"));
        // ieee.pkg.base is a leaf; work.pkg.mid references it; work.entity.top
        // references mid — loading top must pull in all three.
        lib2.put("pkg.base", &unit("base")).unwrap();
        let mid = VifNode::build("package")
            .name("mid")
            .field("uses", VifValue::Foreign("ieee.pkg.base".into()))
            .done();
        work.put("pkg.mid", &mid).unwrap();
        let top = VifNode::build("entity")
            .name("top")
            .field("uses", VifValue::Foreign("work.pkg.mid".into()))
            .done();
        work.put("entity.top", &top).unwrap();

        let set = LibrarySet::new(Rc::clone(&work), vec![Rc::clone(&lib2)]);
        let loaded = set.load("work.entity.top").unwrap();
        let mid = loaded.node_field("uses").unwrap();
        let base = mid.node_field("uses").unwrap();
        assert_eq!(base.name(), Some("base"));
        let t = set.traffic();
        assert_eq!(t.units_read, 3);
        assert!(t.bytes_read > 0);

        // Second load hits the cache: no extra reads.
        set.load("work.entity.top").unwrap();
        assert_eq!(set.traffic().units_read, 3);
    }

    #[test]
    fn missing_unit_error() {
        let set = LibrarySet::new(Rc::new(Library::in_memory("work")), vec![]);
        assert!(matches!(
            set.load("work.entity.nope").unwrap_err(),
            VifError::MissingUnit(_)
        ));
        assert!(set.load("nolib.entity.e").is_err());
        assert!(set.load("badref").is_err());
    }

    #[test]
    fn disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("viftest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let lib = Library::on_disk("work", &dir).unwrap();
            lib.put("entity.e", &unit("e")).unwrap();
            lib.put("arch.e.rtl", &unit("rtl")).unwrap();
        }
        {
            let lib = Rc::new(Library::on_disk("work", &dir).unwrap());
            assert!(lib.contains("entity.e"));
            assert_eq!(lib.latest_architecture("e"), Some("rtl".to_string()));
            let set = LibrarySet::new(lib, vec![]);
            let e = set.load("work.entity.e").unwrap();
            assert_eq!(e.name(), Some("e"));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_put_leaves_no_stale_state() {
        let dir = std::env::temp_dir().join(format!("vif-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let lib = Library::on_disk("work", &dir).unwrap();
        lib.put("entity.e", &unit("v1")).unwrap();
        lib.set_stamp("entity.e", 0xabcd).unwrap();
        let old_text = lib.raw("entity.e").unwrap();
        let history_before = lib.history();
        let traffic_before = lib.traffic();

        // Force the unit-file rename to fail deterministically (works even
        // as root, where a read-only dir would not): occupy the target
        // path with a non-empty directory.
        let target = dir.join("entity.e.vif");
        std::fs::remove_file(&target).unwrap();
        std::fs::create_dir(&target).unwrap();
        std::fs::write(target.join("occupied"), "x").unwrap();

        let err = lib.put("entity.e", &unit("v2"));
        assert!(err.is_err(), "rename onto a non-empty dir must fail");
        // No stale in-memory copy: history, traffic, and stamp unchanged;
        // no temp file left behind.
        assert_eq!(lib.history(), history_before);
        assert_eq!(lib.traffic(), traffic_before);
        assert_eq!(lib.stamp("entity.e"), Some(0xabcd));
        assert!(!dir.join("entity.e.vif.tmp").exists());

        // Restore the file; `raw` and `load` still see the old version.
        std::fs::remove_dir_all(&target).unwrap();
        std::fs::write(&target, &old_text).unwrap();
        assert_eq!(lib.raw("entity.e").unwrap(), old_text);
        let set = LibrarySet::new(Rc::new(Library::on_disk("work", &dir).unwrap()), vec![]);
        assert_eq!(set.load("work.entity.e").unwrap().name(), Some("v1"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_put_on_readonly_dir() {
        let dir = std::env::temp_dir().join(format!("vif-ro-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let lib = Library::on_disk("work", &dir).unwrap();
        lib.put("entity.e", &unit("v1")).unwrap();
        let history_before = lib.history();

        use std::os::unix::fs::PermissionsExt;
        std::fs::set_permissions(&dir, std::fs::Permissions::from_mode(0o555)).unwrap();
        let r = lib.put("entity.e", &unit("v2"));
        std::fs::set_permissions(&dir, std::fs::Permissions::from_mode(0o755)).unwrap();
        match r {
            // Privileged processes (root in CI containers) bypass the
            // permission bits; the directory-blocked test above covers the
            // failure path there.
            Ok(()) => {}
            Err(_) => {
                assert_eq!(lib.history(), history_before);
                let set = LibrarySet::new(Rc::new(Library::on_disk("work", &dir).unwrap()), vec![]);
                assert_eq!(set.load("work.entity.e").unwrap().name(), Some("v1"));
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_round_trip_and_stamps() {
        let dir = std::env::temp_dir().join(format!("vif-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let lib = Library::on_disk("work", &dir).unwrap();
            lib.put("entity.e", &unit("e")).unwrap();
            lib.put("arch.e.rtl", &unit("rtl")).unwrap();
            lib.put("arch.e.fast", &unit("fast")).unwrap();
            lib.put("arch.e.rtl", &unit("rtl")).unwrap();
            lib.set_stamp("entity.e", 17).unwrap();
            lib.set_stamp("arch.e.rtl", 0xdead_beef).unwrap();
        }
        // Stamps persist across a reopen.
        let lib = Library::on_disk("work", &dir).unwrap();
        assert_eq!(lib.stamp("entity.e"), Some(17));
        assert_eq!(lib.stamp("arch.e.rtl"), Some(0xdead_beef));
        assert_eq!(lib.stamp("arch.e.fast"), None);

        // A snapshot mirrors contents and history (incl. duplicates), and
        // reading it back reproduces history-derived answers.
        let before = lib.traffic();
        let snap = lib.snapshot();
        assert_eq!(lib.traffic(), before, "snapshots are not VIF traffic");
        assert_eq!(snap.history.len(), 4);
        assert_eq!(snap.units.len(), 3);
        let mirror = Library::from_snapshot(&snap);
        assert_eq!(mirror.history(), lib.history());
        // Stamps travel with the snapshot, so a forked workspace keeps
        // its incremental cache warm.
        assert_eq!(mirror.stamp("entity.e"), Some(17));
        assert_eq!(mirror.stamp("arch.e.rtl"), Some(0xdead_beef));
        assert_eq!(mirror.stamp("arch.e.fast"), None);
        assert_eq!(mirror.latest_architecture("e"), Some("rtl".to_string()));
        assert_eq!(
            mirror.peek_raw("entity.e").unwrap(),
            lib.peek_raw("entity.e").unwrap()
        );
        // In-memory snapshot/mirror text is shared, not copied: forking a
        // mirror from a mirror's snapshot bumps refcounts only.
        let snap2 = mirror.snapshot();
        let mirror2 = Library::from_snapshot(&snap2);
        let a = mirror.peek_shared("entity.e").unwrap();
        let b = mirror2.peek_shared("entity.e").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "mirror text must be shared");
        // Recompiling through put_text drops the stale stamp.
        let text = lib.peek_raw("entity.e").unwrap();
        lib.put_text("entity.e", &text).unwrap();
        assert_eq!(lib.stamp("entity.e"), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn traffic_reset() {
        let lib = Library::in_memory("work");
        lib.put("entity.e", &unit("e")).unwrap();
        assert!(lib.traffic().bytes_written > 0);
        lib.reset_traffic();
        assert_eq!(lib.traffic(), VifTraffic::default());
    }
}
