//! VHDL Intermediate Format (VIF).
//!
//! The machine-readable intermediate language of the paper's compiler
//! (§2.2, §4.3): an *applicative* node graph that serves simultaneously as
//! the separate-compilation interchange format and as the symbol table.
//! This crate provides:
//!
//! - [`node`] — immutable, shareable nodes built through a builder;
//! - [`text`] — serialization that preserves graph sharing, and reading
//!   with nested foreign-reference resolution ("fix-up");
//! - [`binary`] — the VIFB fast path: a checksummed flat binary encoding
//!   of the same trees plus a content-hash-keyed structural node cache
//!   (text stays the canonical format and the golden oracle);
//! - [`library`] — work/reference design libraries with the usage history
//!   that drives the latest-compiled-architecture default-binding rule;
//! - [`dump`] — the human-readable form used for debugging.
//!
//! # Example
//!
//! ```
//! use std::rc::Rc;
//! use vhdl_vif::{Library, LibrarySet, VifNode};
//!
//! let work = Rc::new(Library::in_memory("work"));
//! let unit = VifNode::build("entity").name("counter").int_field("ports", 3).done();
//! work.put("entity.counter", &unit)?;
//! let set = LibrarySet::new(work, vec![]);
//! let back = set.load("work.entity.counter")?;
//! assert_eq!(back.int_field("ports"), Some(3));
//! # Ok::<(), vhdl_vif::VifError>(())
//! ```

pub mod binary;
pub mod dump;
pub mod kinds;
pub mod library;
pub mod node;
pub mod text;

pub use ag_intern::{Symbol, ToSym};
pub use binary::{
    clear_node_cache, decode_vifb, encode_vifb, probe_vifb, reset_vifb_stats, vifb_stats,
    VifbError, VifbHeader, VifbStats,
};
pub use dump::dump;
pub use library::{Library, LibrarySet, LibrarySnapshot, UnitKey, VifTraffic};
pub use node::{VifBuilder, VifNode, VifValue};
pub use text::{read_vif, read_vif_unresolved, scan_foreign_refs, write_vif, VifError};
