//! Typed constants for the well-known VIF node kinds.
//!
//! The VIF schema is open (any interned symbol can tag a node — that is
//! what lets the interchange format grow declaratively, §2.2), but the
//! kinds the compiler itself produces and dispatches on are a closed set.
//! Writing `kinds::subprog()` instead of the string literal `"subprog"`
//! turns a typo into a compile error and a kind check into a `u32`
//! compare.
//!
//! Each accessor caches its [`Symbol`] in a `OnceLock`, so after first use
//! a kind constant costs one relaxed atomic load — no interner probe.

use std::sync::OnceLock;

use ag_intern::Symbol;

macro_rules! kinds {
    ($($(#[$m:meta])* $name:ident => $text:literal),* $(,)?) => {
        $(
            $(#[$m])*
            #[doc = concat!("The `", $text, "` node kind.")]
            pub fn $name() -> Symbol {
                static S: OnceLock<Symbol> = OnceLock::new();
                *S.get_or_init(|| Symbol::intern($text))
            }
        )*

        /// Every well-known kind, for exhaustiveness checks in tests.
        pub fn all() -> Vec<Symbol> {
            vec![$($name()),*]
        }
    };
}

kinds! {
    // Design units and library structure.
    alias => "alias",
    arch => "arch",
    component => "component",
    config => "config",
    entity => "entity",
    library => "library",
    package => "package",
    pkg => "pkg",
    pkgbody => "pkgbody",
    root => "root",

    // Declarations / denotations (what an identifier can denote).
    attrdecl => "attrdecl",
    attrspec => "attrspec",
    enumlit => "enumlit",
    obj => "obj",
    physunit => "physunit",
    signal => "signal",
    subprog => "subprog",
    type_ => "type",
    unit => "unit",

    // Structural pieces.
    all_ => "all",
    alt => "alt",
    assoc => "assoc",
    block => "block",
    cfgbind => "cfgbind",
    elem => "elem",
    error => "error",
    inst => "inst",
    named => "named",
    port => "port",
    process => "process",
    wv => "wv",

    // Choices.
    ch_others => "ch.others",
    ch_range => "ch.range",
    ch_val => "ch.val",

    // Expressions (`e.` prefix).
    e_agg => "e.agg",
    e_attr => "e.attr",
    e_call => "e.call",
    e_const => "e.const",
    e_conv => "e.conv",
    e_error => "e.error",
    e_field => "e.field",
    e_index => "e.index",
    e_range => "e.range",
    e_ref => "e.ref",
    e_slice => "e.slice",

    // Sequential statements (`s.` prefix).
    s_assert => "s.assert",
    s_assign_sig => "s.assign_sig",
    s_assign_var => "s.assign_var",
    s_call => "s.call",
    s_case => "s.case",
    s_exit => "s.exit",
    s_if => "s.if",
    s_loop => "s.loop",
    s_next => "s.next",
    s_null => "s.null",
    s_return => "s.return",
    s_wait => "s.wait",

    // Types (`ty.` prefix).
    ty_array => "ty.array",
    ty_enum => "ty.enum",
    ty_int => "ty.int",
    ty_marker => "ty.marker",
    ty_phys => "ty.phys",
    ty_real => "ty.real",
    ty_record => "ty.record",
    ty_subtype => "ty.subtype",
}

/// Is this kind a type denotation (`ty.*`)?
pub fn is_ty(k: Symbol) -> bool {
    k.as_str().starts_with("ty.")
}

/// Is this kind an expression node (`e.*`)?
pub fn is_expr(k: Symbol) -> bool {
    k.as_str().starts_with("e.")
}

/// Is this kind a sequential-statement node (`s.*`)?
pub fn is_stmt(k: Symbol) -> bool {
    k.as_str().starts_with("s.")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_their_literals() {
        assert_eq!(subprog().as_str(), "subprog");
        assert_eq!(ty_int().as_str(), "ty.int");
        assert_eq!(type_().as_str(), "type");
        assert_eq!(all_().as_str(), "all");
        assert_eq!(s_assign_sig().as_str(), "s.assign_sig");
    }

    #[test]
    fn all_distinct() {
        let ks = all();
        let set: std::collections::HashSet<_> = ks.iter().copied().collect();
        assert_eq!(set.len(), ks.len());
    }

    #[test]
    fn prefix_predicates() {
        assert!(is_ty(ty_record()));
        assert!(!is_ty(subprog()));
        assert!(is_expr(e_call()));
        assert!(!is_expr(entity()));
        assert!(is_stmt(s_wait()));
        assert!(!is_stmt(ty_phys()));
    }

    #[test]
    fn cached_equals_freshly_interned() {
        assert_eq!(enumlit(), Symbol::intern("enumlit"));
        assert_eq!(enumlit(), Symbol::intern_ci("ENUMLIT"));
    }
}
