//! VIF text serialization.
//!
//! The on-disk form is a numbered node table, so graph sharing survives a
//! round trip (environment chains and type graphs share heavily — naive
//! tree serialization would blow up quadratically):
//!
//! ```text
//! VIF1
//! #0 (signal "clk" (type #1) (line 12))
//! #1 (type "bit")
//! root #0
//! ```
//!
//! Foreign references are written as `@"lib.unit"` and resolved through a
//! caller-supplied loader while reading — the "reads the VIF from disk,
//! resolving any nested foreign references" step of §2.2.

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::node::{VifNode, VifValue};

/// Errors while reading VIF text or binary (VIFB) buffers.
#[derive(Debug)]
pub enum VifError {
    /// Malformed input.
    Syntax {
        /// Byte offset.
        at: usize,
        /// Description.
        msg: String,
    },
    /// A foreign reference could not be resolved.
    Unresolved(String),
    /// Underlying I/O problem (from library operations).
    Io(std::io::Error),
    /// A requested unit does not exist.
    MissingUnit(String),
    /// A binary (VIFB) buffer was rejected.
    Binary(crate::binary::VifbError),
    /// An error attributed to the library unit whose bytes were being
    /// read — so a malformed dependency names the offending unit, not
    /// just a byte offset into anonymous text.
    InUnit {
        /// Full unit reference, `lib.unit_key`.
        unit: String,
        /// The underlying problem.
        source: Box<VifError>,
    },
}

impl VifError {
    /// Wraps syntax/binary errors — errors about *this unit's bytes* —
    /// with the unit they occurred in. Errors that already name their
    /// subject (missing units, unresolved references, nested `InUnit`)
    /// pass through unchanged.
    pub fn in_unit(self, unit: impl Into<String>) -> VifError {
        match self {
            e @ (VifError::Syntax { .. } | VifError::Binary(_)) => VifError::InUnit {
                unit: unit.into(),
                source: Box::new(e),
            },
            e => e,
        }
    }
}

impl fmt::Display for VifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VifError::Syntax { at, msg } => write!(f, "vif syntax error at byte {at}: {msg}"),
            VifError::Unresolved(r) => write!(f, "unresolved foreign reference `{r}`"),
            VifError::Io(e) => write!(f, "vif i/o error: {e}"),
            VifError::MissingUnit(u) => write!(f, "no such unit `{u}` in library"),
            VifError::Binary(e) => write!(f, "{e}"),
            VifError::InUnit { unit, source } => write!(f, "in unit `{unit}`: {source}"),
        }
    }
}

impl std::error::Error for VifError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VifError::Io(e) => Some(e),
            VifError::InUnit { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for VifError {
    fn from(e: std::io::Error) -> Self {
        VifError::Io(e)
    }
}

/// Serializes a node graph to VIF text, preserving sharing.
pub fn write_vif(root: &Rc<VifNode>) -> String {
    let _t = ag_harness::trace::span("vif-write");
    // Number nodes by first (depth-first) encounter.
    let mut ids: HashMap<*const VifNode, usize> = HashMap::new();
    let mut order: Vec<Rc<VifNode>> = Vec::new();
    number(root, &mut ids, &mut order);
    let mut out = String::from("VIF1\n");
    for (i, n) in order.iter().enumerate() {
        let _ = write!(out, "#{i} ({}", n.kind());
        if let Some(name) = n.name() {
            let _ = write!(out, " {}", quote(name));
        }
        for (fname, v) in n.fields() {
            let _ = write!(out, " ({fname} ");
            write_value(&mut out, v, &ids);
            out.push(')');
        }
        out.push_str(")\n");
    }
    let _ = writeln!(out, "root #{}", ids[&Rc::as_ptr(root)]);
    ag_harness::trace::counter("vif-bytes-written", out.len() as u64);
    out
}

fn number(n: &Rc<VifNode>, ids: &mut HashMap<*const VifNode, usize>, order: &mut Vec<Rc<VifNode>>) {
    if ids.contains_key(&Rc::as_ptr(n)) {
        return;
    }
    ids.insert(Rc::as_ptr(n), order.len());
    order.push(Rc::clone(n));
    for (_, v) in n.fields() {
        number_value(v, ids, order);
    }
}

fn number_value(
    v: &VifValue,
    ids: &mut HashMap<*const VifNode, usize>,
    order: &mut Vec<Rc<VifNode>>,
) {
    match v {
        VifValue::Node(n) => number(n, ids, order),
        VifValue::List(l) => {
            for v in l.iter() {
                number_value(v, ids, order);
            }
        }
        _ => {}
    }
}

fn write_value(out: &mut String, v: &VifValue, ids: &HashMap<*const VifNode, usize>) {
    match v {
        VifValue::Nil => out.push_str("nil"),
        VifValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        VifValue::Int(i) => {
            let _ = write!(out, "{i}");
        }
        VifValue::Real(r) => {
            let _ = write!(out, "r{r:?}");
        }
        VifValue::Str(s) => out.push_str(&quote(s)),
        VifValue::Node(n) => {
            let _ = write!(out, "#{}", ids[&Rc::as_ptr(n)]);
        }
        VifValue::List(l) => {
            out.push('[');
            for (i, v) in l.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                write_value(out, v, ids);
            }
            out.push(']');
        }
        VifValue::Foreign(r) => {
            out.push('@');
            out.push_str(&quote(r));
        }
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Resolver callback for foreign references encountered during reading.
pub type Resolver<'a> = dyn FnMut(&str) -> Result<Rc<VifNode>, VifError> + 'a;

/// Parses VIF text back into a node graph, resolving `@"lib.unit"` foreign
/// references through `resolve`.
///
/// # Errors
///
/// [`VifError::Syntax`] on malformed text, or whatever `resolve` returns
/// for an unknown reference.
pub fn read_vif(src: &str, resolve: &mut Resolver<'_>) -> Result<Rc<VifNode>, VifError> {
    read_vif_impl(src, Some(resolve))
}

/// Like [`read_vif`], but foreign references stay [`VifValue::Foreign`]
/// instead of being resolved — the form needed to re-encode a unit's text
/// as a standalone VIFB sidecar without inlining its dependencies.
/// Round-trip law: `write_vif(read_vif_unresolved(t)) == t` for every
/// well-formed `t`, foreign references included.
///
/// # Errors
///
/// [`VifError::Syntax`] on malformed text.
pub fn read_vif_unresolved(src: &str) -> Result<Rc<VifNode>, VifError> {
    read_vif_impl(src, None)
}

fn read_vif_impl(
    src: &str,
    mut resolve: Option<&mut Resolver<'_>>,
) -> Result<Rc<VifNode>, VifError> {
    let _t = ag_harness::trace::span("vif-read");
    ag_harness::trace::counter("vif-bytes-read", src.len() as u64);
    let mut p = P {
        src: src.as_bytes(),
        i: 0,
    };
    p.expect_word("VIF1")?;
    // First pass: parse node table into raw entries; node refs are patched
    // afterwards (two-pass because `#k` may be a forward reference).
    struct RawNode {
        kind: String,
        name: Option<String>,
        fields: Vec<(String, Raw)>,
        /// Byte offset of the node's `#id` table entry, so second-pass
        /// diagnostics can still point into the text.
        at: usize,
    }
    enum Raw {
        Val(VifValue),
        Ref(usize),
        List(Vec<Raw>),
    }
    let mut raw: Vec<RawNode> = Vec::new();
    loop {
        p.skip_ws();
        if p.looking_at("root") {
            break;
        }
        let entry_at = p.i;
        p.expect(b'#')?;
        let id = p.number()? as usize;
        if id != raw.len() {
            return Err(p.err("node ids must be dense and in order"));
        }
        p.expect(b'(')?;
        let kind = p.word()?;
        p.skip_ws();
        let name = if p.peek() == Some(b'"') {
            Some(p.string()?)
        } else {
            None
        };
        let mut fields = Vec::new();
        loop {
            p.skip_ws();
            if p.peek() == Some(b')') {
                p.i += 1;
                break;
            }
            p.expect(b'(')?;
            let fname = p.word()?;
            fn value(p: &mut P, resolve: &mut Option<&mut Resolver<'_>>) -> Result<Raw, VifError> {
                p.skip_ws();
                match p.peek() {
                    Some(b'#') => {
                        p.i += 1;
                        Ok(Raw::Ref(p.number()? as usize))
                    }
                    Some(b'[') => {
                        p.i += 1;
                        let mut items = Vec::new();
                        loop {
                            p.skip_ws();
                            if p.peek() == Some(b']') {
                                p.i += 1;
                                break;
                            }
                            items.push(value(p, resolve)?);
                        }
                        Ok(Raw::List(items))
                    }
                    Some(b'"') => Ok(Raw::Val(VifValue::str(p.string()?))),
                    Some(b'@') => {
                        p.i += 1;
                        let r = p.string()?;
                        match resolve {
                            // Resolve eagerly: nested foreign references
                            // load their units right here.
                            Some(res) => Ok(Raw::Val(VifValue::Node(res(&r)?))),
                            None => Ok(Raw::Val(VifValue::Foreign(r.into()))),
                        }
                    }
                    Some(b'r') => {
                        p.i += 1;
                        let n = p.float()?;
                        Ok(Raw::Val(VifValue::Real(n)))
                    }
                    Some(c) if c == b'-' || c.is_ascii_digit() => {
                        Ok(Raw::Val(VifValue::Int(p.number()?)))
                    }
                    _ => {
                        let w = p.word()?;
                        match w.as_str() {
                            "nil" => Ok(Raw::Val(VifValue::Nil)),
                            "true" => Ok(Raw::Val(VifValue::Bool(true))),
                            "false" => Ok(Raw::Val(VifValue::Bool(false))),
                            other => Err(p.err(format!("unexpected word `{other}`"))),
                        }
                    }
                }
            }
            let v = value(&mut p, &mut resolve)?;
            p.skip_ws();
            p.expect(b')')?;
            fields.push((fname, v));
        }
        raw.push(RawNode {
            kind,
            name,
            fields,
            at: entry_at,
        });
    }
    p.expect_word("root")?;
    p.skip_ws();
    let root_at = p.i;
    p.expect(b'#')?;
    let root_id = p.number()? as usize;

    // Second pass: build real nodes bottom-up. Because ids are assigned
    // depth-first on write, a node only references nodes that appear later
    // OR earlier; handle arbitrary order by memoized recursion.
    let mut built: Vec<Option<Rc<VifNode>>> = vec![None; raw.len()];
    fn build(
        id: usize,
        raw: &[RawNode],
        built: &mut Vec<Option<Rc<VifNode>>>,
        depth: usize,
    ) -> Result<Rc<VifNode>, VifError> {
        if let Some(n) = &built[id] {
            return Ok(Rc::clone(n));
        }
        if depth > raw.len() {
            return Err(VifError::Syntax {
                at: raw[id].at,
                msg: "cyclic node table".into(),
            });
        }
        fn conv(
            r: &Raw,
            raw: &[RawNode],
            built: &mut Vec<Option<Rc<VifNode>>>,
            depth: usize,
        ) -> Result<VifValue, VifError> {
            Ok(match r {
                Raw::Val(v) => v.clone(),
                Raw::Ref(id) => VifValue::Node(build(*id, raw, built, depth + 1)?),
                Raw::List(items) => VifValue::list(
                    items
                        .iter()
                        .map(|r| conv(r, raw, built, depth))
                        .collect::<Result<Vec<_>, _>>()?,
                ),
            })
        }
        let rn = &raw[id];
        let mut b = VifNode::build(rn.kind.as_str());
        if let Some(n) = &rn.name {
            b = b.name(n.as_str());
        }
        for (fname, r) in &rn.fields {
            b = b.field(fname.as_str(), conv(r, raw, built, depth)?);
        }
        let node = b.done();
        built[id] = Some(Rc::clone(&node));
        Ok(node)
    }
    if root_id >= raw.len() {
        return Err(VifError::Syntax {
            at: root_at,
            msg: "root id out of range".into(),
        });
    }
    build(root_id, &raw, &mut built, 0)
}

/// Foreign references (`@"lib.unit"`) appearing in VIF text, deduplicated
/// in first-occurrence order, without building nodes. String values are
/// skipped as wholes, so an `@` *inside* a string can't be mistaken for a
/// reference. Used to fingerprint units whose binary sidecar is absent.
pub fn scan_foreign_refs(src: &str) -> Vec<Rc<str>> {
    let mut p = P {
        src: src.as_bytes(),
        i: 0,
    };
    let mut out: Vec<Rc<str>> = Vec::new();
    while let Some(c) = p.peek() {
        match c {
            b'"' => {
                // Skip a whole string value (unterminated: `string`
                // consumes to the end, terminating the loop).
                let _ = p.string();
            }
            b'@' => {
                p.i += 1;
                if p.peek() == Some(b'"') {
                    match p.string() {
                        Ok(s) => {
                            if !out.iter().any(|r| **r == *s) {
                                out.push(Rc::from(s.as_str()));
                            }
                        }
                        Err(_) => break,
                    }
                }
            }
            _ => p.i += 1,
        }
    }
    out
}

struct P<'a> {
    src: &'a [u8],
    i: usize,
}

impl P<'_> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(
            self.peek(),
            Some(b' ') | Some(b'\n') | Some(b'\t') | Some(b'\r')
        ) {
            self.i += 1;
        }
    }

    fn err(&self, msg: impl Into<String>) -> VifError {
        VifError::Syntax {
            at: self.i,
            msg: msg.into(),
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), VifError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", c as char)))
        }
    }

    fn looking_at(&self, word: &str) -> bool {
        self.src[self.i..].starts_with(word.as_bytes())
    }

    fn expect_word(&mut self, w: &str) -> Result<(), VifError> {
        self.skip_ws();
        if self.looking_at(w) {
            self.i += w.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{w}`")))
        }
    }

    fn word(&mut self) -> Result<String, VifError> {
        self.skip_ws();
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'.')
        {
            self.i += 1;
        }
        if start == self.i {
            return Err(self.err("expected word"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.i]).into_owned())
    }

    fn number(&mut self) -> Result<i64, VifError> {
        self.skip_ws();
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        std::str::from_utf8(&self.src[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("expected number"))
    }

    fn float(&mut self) -> Result<f64, VifError> {
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.src[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("expected real"))
    }

    fn string(&mut self) -> Result<String, VifError> {
        self.skip_ws();
        if self.peek() != Some(b'"') {
            return Err(self.err("expected string"));
        }
        self.i += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'n') => out.push('\n'),
                        Some(c) => out.push(c as char),
                        None => return Err(self.err("unterminated escape")),
                    }
                    self.i += 1;
                }
                Some(c) => {
                    out.push(c as char);
                    self.i += 1;
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::VifNode;

    fn no_foreign(r: &str) -> Result<Rc<VifNode>, VifError> {
        Err(VifError::Unresolved(r.to_string()))
    }

    #[test]
    fn round_trip_preserves_structure_and_sharing() {
        let shared = VifNode::build("type")
            .name("bit")
            .int_field("width", 1)
            .done();
        let a = VifNode::build("port")
            .name("clk")
            .node_field("type", Rc::clone(&shared))
            .done();
        let root = VifNode::build("entity")
            .name("e")
            .list_field(
                "ports",
                vec![
                    VifValue::Node(Rc::clone(&a)),
                    VifValue::Node(Rc::clone(&shared)),
                ],
            )
            .field("flag", VifValue::Bool(true))
            .field("ratio", VifValue::Real(2.5))
            .field("none", VifValue::Nil)
            .str_field("note", "say \"hi\"\nline2")
            .done();
        let text = write_vif(&root);
        let back = read_vif(&text, &mut no_foreign).unwrap();
        assert_eq!(back, root);
        // Sharing preserved: the type node reachable through the port and
        // through the list is the same allocation.
        let port = back.list_field("ports")[0].as_node().unwrap();
        let ty1 = port.node_field("type").unwrap();
        let ty2 = back.list_field("ports")[1].as_node().unwrap();
        assert!(Rc::ptr_eq(ty1, ty2));
        assert_eq!(back.reachable_size(), 3);
    }

    #[test]
    fn foreign_references_resolved() {
        let root = VifNode::build("arch")
            .name("rtl")
            .field("entity", VifValue::Foreign("work.entity.e".into()))
            .done();
        let text = write_vif(&root);
        assert!(text.contains("@\"work.entity.e\""));
        let mut calls = Vec::new();
        let back = read_vif(&text, &mut |r| {
            calls.push(r.to_string());
            Ok(VifNode::build("entity").name("e").done())
        })
        .unwrap();
        assert_eq!(calls, vec!["work.entity.e"]);
        assert_eq!(back.node_field("entity").unwrap().name(), Some("e"));
    }

    #[test]
    fn unresolved_foreign_is_error() {
        let root = VifNode::build("x")
            .field("r", VifValue::Foreign("nowhere.y".into()))
            .done();
        let text = write_vif(&root);
        let err = read_vif(&text, &mut no_foreign).unwrap_err();
        assert!(err.to_string().contains("nowhere.y"));
    }

    #[test]
    fn syntax_errors_reported() {
        assert!(read_vif("garbage", &mut no_foreign).is_err());
        assert!(read_vif("VIF1\n#0 (k (f", &mut no_foreign).is_err());
        assert!(read_vif("VIF1\nroot #5", &mut no_foreign).is_err());
        let e = read_vif("VIF1\n#1 (k)\nroot #1", &mut no_foreign).unwrap_err();
        assert!(e.to_string().contains("dense"));
    }

    #[test]
    fn unresolved_read_round_trips_foreign_refs() {
        let root = VifNode::build("arch")
            .name("rtl")
            .field("entity", VifValue::Foreign("work.entity.e".into()))
            .str_field("note", "an @\"impostor\" in a string")
            .done();
        let text = write_vif(&root);
        let back = read_vif_unresolved(&text).unwrap();
        assert_eq!(back, root, "foreign refs survive unresolved reading");
        assert_eq!(write_vif(&back), text, "byte-identical re-print");
    }

    #[test]
    fn scan_foreign_refs_precise_and_deduplicated() {
        let root = VifNode::build("arch")
            .field("a", VifValue::Foreign("work.entity.e".into()))
            .str_field("trap", "not a ref: @\"lib.fake\" inside a string")
            .field("b", VifValue::Foreign("ieee.pkg.base".into()))
            .field("c", VifValue::Foreign("work.entity.e".into()))
            .done();
        let text = write_vif(&root);
        let refs: Vec<String> = scan_foreign_refs(&text)
            .iter()
            .map(|r| r.to_string())
            .collect();
        assert_eq!(refs, ["work.entity.e", "ieee.pkg.base"]);
        assert!(scan_foreign_refs("").is_empty());
        assert!(scan_foreign_refs("VIF1\n#0 (k)\nroot #0\n").is_empty());
    }

    #[test]
    fn second_pass_errors_carry_positions() {
        // Out-of-range root: the offset points at the `#` of `root #5`.
        let text = "VIF1\n#0 (k)\nroot #5";
        match read_vif(text, &mut no_foreign).unwrap_err() {
            VifError::Syntax { at, .. } => assert_eq!(&text[at..at + 2], "#5"),
            e => panic!("expected syntax error, got {e}"),
        }
        // Hand-made cyclic table: the offset points at a node entry.
        let text = "VIF1\n#0 (a (x #1))\n#1 (b (y #0))\nroot #0";
        match read_vif(text, &mut no_foreign).unwrap_err() {
            VifError::Syntax { at, msg } => {
                assert!(msg.contains("cyclic"));
                assert_eq!(&text[at..at + 1], "#");
            }
            e => panic!("expected syntax error, got {e}"),
        }
    }

    #[test]
    fn in_unit_wrapping_names_the_unit() {
        let inner = VifError::Syntax {
            at: 7,
            msg: "expected word".into(),
        };
        let wrapped = inner.in_unit("work.pkg.mid");
        let text = wrapped.to_string();
        assert!(text.contains("work.pkg.mid"), "{text}");
        assert!(text.contains("byte 7"), "{text}");
        // Already-attributed errors pass through unchanged.
        let missing = VifError::MissingUnit("work.entity.e".into()).in_unit("work.arch.e.rtl");
        assert!(matches!(missing, VifError::MissingUnit(_)));
        let nested = wrapped.in_unit("work.other");
        match nested {
            VifError::InUnit { unit, .. } => assert_eq!(unit, "work.pkg.mid"),
            e => panic!("double wrap: {e}"),
        }
    }

    #[test]
    fn negative_ints_and_reals() {
        let root = VifNode::build("k")
            .int_field("a", -42)
            .field("b", VifValue::Real(-0.5))
            .done();
        let back = read_vif(&write_vif(&root), &mut no_foreign).unwrap();
        assert_eq!(back.int_field("a"), Some(-42));
        assert_eq!(back.field("b"), Some(&VifValue::Real(-0.5)));
    }
}
