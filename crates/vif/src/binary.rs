//! VIFB: the binary VIF encoding plus the structural node cache.
//!
//! Text VIF ([`crate::text`]) stays the canonical interchange format and
//! the golden oracle — VIFB is a *performance sidecar*: a compact,
//! versioned, checksummed flat encoding of the same node graph that can be
//! decoded without re-lexing text, and (being plain bytes) shipped across
//! threads, where the `Rc`-based node graph cannot. Decoding a valid VIFB
//! buffer yields a tree whose [`crate::write_vif`] output is byte-identical
//! to the text the buffer was derived from.
//!
//! # Layout
//!
//! ```text
//! "VIFB"  magic
//! u32     version (little-endian)
//! u64     fnv1a hash of the canonical VIF *text* (little-endian)
//! varint  string count, then per string: varint length + UTF-8 bytes
//! varint  foreign-ref count, then per ref: varint string index
//! varint  node count, then per node (postorder: children first):
//!         varint kind-string index
//!         varint name-string index + 1 (0 = unnamed)
//!         varint field count, then per field:
//!           varint field-name string index
//!           tagged value (see below)
//! varint  root node index
//! u64     fnv1a checksum of every preceding byte (little-endian)
//! ```
//!
//! Values are a tag byte followed by the payload: `0` nil, `1`/`2`
//! false/true, `3` zigzag-varint integer, `4` eight bytes of IEEE double
//! bits, `5` string index, `6` node index, `7` varint count + elements,
//! `8` foreign-ref string index. Nodes are numbered in **postorder**, so
//! every node reference points to a strictly smaller index — decoding is a
//! single forward loop with no recursion over nodes, which is what makes
//! hostile deeply-nested buffers a rejection instead of a stack overflow.
//!
//! The per-buffer string table is deduplicated and interned into
//! [`ag_intern`] lazily on decode: kinds, names, and field names become
//! [`Symbol`]s once per distinct spelling per buffer, while string *values*
//! become shared `Rc<str>`s without touching the interner.
//!
//! # The structural node cache
//!
//! [`cache_lookup`]/[`cache_insert`] memoize decoded trees per thread,
//! keyed by a caller-computed **content hash** (the unit's text hash
//! combined with the content hashes of its resolved foreign dependencies —
//! see `Library::content_hash`). Worker threads that rebuild mirror
//! libraries every batch, and server sessions sharing a shard thread, turn
//! repeated dependency loads into pointer shares. Counters are global
//! atomics so `vhdlc --stats` and `vhdld stats` can report totals across
//! all threads.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use ag_intern::Symbol;

use crate::node::{VifNode, VifValue};
use crate::text::{Resolver, VifError};

/// Magic bytes of a VIFB buffer.
pub const VIFB_MAGIC: [u8; 4] = *b"VIFB";
/// Current VIFB format version.
pub const VIFB_VERSION: u32 = 1;
/// Maximum list nesting depth accepted while decoding (hostile buffers
/// can nest a list per two bytes; real VIF nests a handful of levels).
const MAX_LIST_DEPTH: usize = 64;

/// Ways a VIFB buffer can be rejected. Hostile input is always an error,
/// never a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VifbError {
    /// Not a VIFB buffer.
    BadMagic,
    /// A VIFB buffer from an incompatible format version.
    BadVersion(u32),
    /// The buffer ends before the structure does.
    Truncated,
    /// The trailing checksum does not match the content.
    Checksum,
    /// Structurally invalid content (out-of-range index, bad UTF-8,
    /// forward node reference, over-deep nesting, trailing bytes, …).
    Corrupt(&'static str),
}

impl std::fmt::Display for VifbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VifbError::BadMagic => write!(f, "not a VIFB buffer (bad magic)"),
            VifbError::BadVersion(v) => write!(f, "unsupported VIFB version {v}"),
            VifbError::Truncated => write!(f, "truncated VIFB buffer"),
            VifbError::Checksum => write!(f, "VIFB checksum mismatch"),
            VifbError::Corrupt(what) => write!(f, "corrupt VIFB buffer: {what}"),
        }
    }
}

/// 64-bit FNV-1a over bytes (the same constants and seeding convention as
/// `depgraph::fnv1a_bytes`: a zero state starts at the offset basis).
pub fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = if h == 0 { 0xcbf2_9ce4_8422_2325 } else { h };
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn zigzag(i: i64) -> u64 {
    ((i << 1) ^ (i >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Serializes a node graph to VIFB. `text_hash` is the FNV-1a hash of the
/// graph's canonical [`crate::write_vif`] text (via [`fnv1a`] seeded with
/// 0); it is embedded in the header so a sidecar can be validated against
/// the text it claims to encode without decoding it.
pub fn encode_vifb(root: &Rc<VifNode>, text_hash: u64) -> Vec<u8> {
    let _t = ag_harness::trace::span("vifb-encode");
    STATS_ENCODES.fetch_add(1, Ordering::Relaxed);
    let order = postorder(root);
    let ids: HashMap<*const VifNode, u64> = order
        .iter()
        .enumerate()
        .map(|(i, n)| (Rc::as_ptr(n), i as u64))
        .collect();

    let (strtab, stridx, foreigns) = collect_strings(&order);

    let mut out = Vec::with_capacity(64 + 16 * order.len());
    out.extend_from_slice(&VIFB_MAGIC);
    out.extend_from_slice(&VIFB_VERSION.to_le_bytes());
    out.extend_from_slice(&text_hash.to_le_bytes());
    put_varint(&mut out, strtab.len() as u64);
    for s in &strtab {
        put_varint(&mut out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
    }
    put_varint(&mut out, foreigns.len() as u64);
    for &f in &foreigns {
        put_varint(&mut out, f);
    }
    put_varint(&mut out, order.len() as u64);
    fn emit_value(
        out: &mut Vec<u8>,
        v: &VifValue,
        ids: &HashMap<*const VifNode, u64>,
        stridx: &HashMap<&str, u64>,
    ) {
        match v {
            VifValue::Nil => out.push(0),
            VifValue::Bool(false) => out.push(1),
            VifValue::Bool(true) => out.push(2),
            VifValue::Int(i) => {
                out.push(3);
                put_varint(out, zigzag(*i));
            }
            VifValue::Real(r) => {
                out.push(4);
                out.extend_from_slice(&r.to_bits().to_le_bytes());
            }
            VifValue::Str(s) => {
                out.push(5);
                put_varint(out, stridx[&**s]);
            }
            VifValue::Node(n) => {
                out.push(6);
                put_varint(out, ids[&Rc::as_ptr(n)]);
            }
            VifValue::List(l) => {
                out.push(7);
                put_varint(out, l.len() as u64);
                for v in l.iter() {
                    emit_value(out, v, ids, stridx);
                }
            }
            VifValue::Foreign(r) => {
                out.push(8);
                put_varint(out, stridx[&**r]);
            }
        }
    }
    for n in &order {
        put_varint(&mut out, stridx[n.kind()]);
        match n.name() {
            Some(name) => put_varint(&mut out, stridx[name] + 1),
            None => put_varint(&mut out, 0),
        }
        put_varint(&mut out, n.fields().len() as u64);
        for (fname, v) in n.fields() {
            put_varint(&mut out, stridx[fname.as_str()]);
            emit_value(&mut out, v, &ids, &stridx);
        }
    }
    put_varint(&mut out, ids[&Rc::as_ptr(root)]);
    let seal = fnv1a(0, &out);
    out.extend_from_slice(&seal.to_le_bytes());
    out
}

/// Deduplicated string table in first-use order, plus the index map and
/// the foreign-ref subset (header probes read the latter without touching
/// the node table). All strings borrow from the postorder node list:
/// symbol spellings are `'static`, `Rc<str>` contents live as long as
/// their nodes.
#[allow(clippy::type_complexity)]
fn collect_strings<'a>(
    order: &'a [Rc<VifNode>],
) -> (Vec<&'a str>, HashMap<&'a str, u64>, Vec<u64>) {
    let mut strtab: Vec<&'a str> = Vec::new();
    let mut stridx: HashMap<&'a str, u64> = HashMap::new();
    let mut foreigns: Vec<u64> = Vec::new();
    fn add<'a>(s: &'a str, strtab: &mut Vec<&'a str>, stridx: &mut HashMap<&'a str, u64>) -> u64 {
        match stridx.get(s) {
            Some(&i) => i,
            None => {
                let i = strtab.len() as u64;
                strtab.push(s);
                stridx.insert(s, i);
                i
            }
        }
    }
    fn walk_value<'a>(
        v: &'a VifValue,
        strtab: &mut Vec<&'a str>,
        stridx: &mut HashMap<&'a str, u64>,
        fr: &mut Vec<u64>,
    ) {
        match v {
            VifValue::Str(s) => {
                add(s, strtab, stridx);
            }
            VifValue::Foreign(r) => {
                let i = add(r, strtab, stridx);
                if !fr.contains(&i) {
                    fr.push(i);
                }
            }
            VifValue::List(l) => {
                for v in l.iter() {
                    walk_value(v, strtab, stridx, fr);
                }
            }
            _ => {}
        }
    }
    for n in order {
        add(n.kind(), &mut strtab, &mut stridx);
        if let Some(name) = n.name() {
            add(name, &mut strtab, &mut stridx);
        }
        for (fname, v) in n.fields() {
            add(fname.as_str(), &mut strtab, &mut stridx);
            walk_value(v, &mut strtab, &mut stridx, &mut foreigns);
        }
    }
    (strtab, stridx, foreigns)
}

/// Postorder over the node DAG with sharing (every node once, children
/// before parents), iteratively — encode depth is bounded by an explicit
/// stack, not the call stack.
fn postorder(root: &Rc<VifNode>) -> Vec<Rc<VifNode>> {
    enum Item {
        Enter(Rc<VifNode>),
        Exit(Rc<VifNode>),
    }
    let mut done: std::collections::HashSet<*const VifNode> = std::collections::HashSet::new();
    let mut pending: std::collections::HashSet<*const VifNode> = std::collections::HashSet::new();
    let mut order = Vec::new();
    let mut stack = vec![Item::Enter(Rc::clone(root))];
    fn child_nodes(v: &VifValue, out: &mut Vec<Rc<VifNode>>) {
        match v {
            VifValue::Node(n) => out.push(Rc::clone(n)),
            VifValue::List(l) => {
                for v in l.iter() {
                    child_nodes(v, out);
                }
            }
            _ => {}
        }
    }
    while let Some(item) = stack.pop() {
        match item {
            Item::Enter(n) => {
                let p = Rc::as_ptr(&n);
                if done.contains(&p) || !pending.insert(p) {
                    continue;
                }
                let mut kids = Vec::new();
                for (_, v) in n.fields() {
                    child_nodes(v, &mut kids);
                }
                stack.push(Item::Exit(n));
                for k in kids.into_iter().rev() {
                    stack.push(Item::Enter(k));
                }
            }
            Item::Exit(n) => {
                done.insert(Rc::as_ptr(&n));
                order.push(n);
            }
        }
    }
    order
}

/// What a header probe learns about a buffer without building nodes.
#[derive(Clone, Debug)]
pub struct VifbHeader {
    /// FNV-1a hash of the canonical text this buffer encodes.
    pub text_hash: u64,
    /// Foreign references (`lib.unit_key`) the encoded unit depends on,
    /// in first-occurrence order.
    pub foreigns: Vec<Rc<str>>,
}

struct Dec<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Dec<'a> {
    fn remaining(&self) -> usize {
        self.b.len() - self.i
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], VifbError> {
        if self.remaining() < n {
            return Err(VifbError::Truncated);
        }
        let s = &self.b[self.i..self.i + n];
        self.i += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, VifbError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, VifbError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    fn varint(&mut self) -> Result<u64, VifbError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            let low = u64::from(b & 0x7f);
            if shift == 63 && low > 1 {
                return Err(VifbError::Corrupt("varint overflow"));
            }
            v |= low << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(VifbError::Corrupt("varint too long"))
    }

    /// A count that prefixes `min_bytes`-wide elements: anything larger
    /// than the remaining bytes cannot possibly be satisfied, so hostile
    /// counts are rejected before any allocation sized by them.
    fn count(&mut self, min_bytes: usize, what: &'static str) -> Result<usize, VifbError> {
        let n = self.varint()?;
        if (n as usize)
            .checked_mul(min_bytes.max(1))
            .unwrap_or(usize::MAX)
            > self.remaining()
        {
            return Err(VifbError::Corrupt(what));
        }
        Ok(n as usize)
    }
}

/// Validates the envelope (magic, version, checksum) and returns a decoder
/// positioned after the `text_hash` field, plus that hash. The checksum is
/// verified before any content is interpreted, so most corruption is
/// caught here.
fn open(bytes: &[u8]) -> Result<(Dec<'_>, u64), VifbError> {
    if bytes.len() < 4 + 4 + 8 + 8 {
        return Err(VifbError::Truncated);
    }
    if bytes[..4] != VIFB_MAGIC {
        return Err(VifbError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != VIFB_VERSION {
        return Err(VifbError::BadVersion(version));
    }
    let body = &bytes[..bytes.len() - 8];
    let seal = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    if fnv1a(0, body) != seal {
        return Err(VifbError::Checksum);
    }
    let mut d = Dec { b: body, i: 8 };
    let text_hash = d.u64()?;
    Ok((d, text_hash))
}

fn read_strings(d: &mut Dec<'_>) -> Result<Vec<Rc<str>>, VifbError> {
    let count = d.count(1, "string count exceeds buffer")?;
    let mut strings: Vec<Rc<str>> = Vec::with_capacity(count);
    for _ in 0..count {
        let len = d.varint()? as usize;
        let bytes = d.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| VifbError::Corrupt("string not UTF-8"))?;
        strings.push(Rc::from(s));
    }
    Ok(strings)
}

fn read_foreigns(d: &mut Dec<'_>, strings: &[Rc<str>]) -> Result<Vec<Rc<str>>, VifbError> {
    let count = d.count(1, "foreign count exceeds buffer")?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let idx = d.varint()? as usize;
        let s = strings
            .get(idx)
            .ok_or(VifbError::Corrupt("foreign string index out of range"))?;
        out.push(Rc::clone(s));
    }
    Ok(out)
}

/// Reads a buffer's header — text hash and foreign-ref list — validating
/// magic, version, and checksum but building no nodes. This is how the
/// library layer computes content hashes and validates sidecars cheaply.
///
/// # Errors
///
/// [`VifError::Binary`] for every rejected buffer; never panics.
pub fn probe_vifb(bytes: &[u8]) -> Result<VifbHeader, VifError> {
    let (mut d, text_hash) = open(bytes).map_err(VifError::Binary)?;
    let strings = read_strings(&mut d).map_err(VifError::Binary)?;
    let foreigns = read_foreigns(&mut d, &strings).map_err(VifError::Binary)?;
    Ok(VifbHeader {
        text_hash,
        foreigns,
    })
}

/// Decodes a VIFB buffer back into a node graph, resolving foreign
/// references through `resolve` exactly as [`crate::read_vif`] does
/// (eagerly, in buffer order).
///
/// # Errors
///
/// [`VifError::Binary`] for corrupted/truncated/version-mismatched input
/// (never a panic), or whatever `resolve` returns for an unresolvable
/// reference.
pub fn decode_vifb(bytes: &[u8], resolve: &mut Resolver<'_>) -> Result<Rc<VifNode>, VifError> {
    let _t = ag_harness::trace::span("vifb-decode");
    let (mut d, _text_hash) = open(bytes).map_err(VifError::Binary)?;
    let strings = read_strings(&mut d).map_err(VifError::Binary)?;
    read_foreigns(&mut d, &strings).map_err(VifError::Binary)?;

    // Symbols are interned lazily, once per distinct string per buffer —
    // the "per-buffer symbol table mapping into ag-intern". String values
    // never touch the interner.
    let mut syms: Vec<Option<Symbol>> = vec![None; strings.len()];
    let mut sym =
        |i: usize| -> Symbol { *syms[i].get_or_insert_with(|| Symbol::intern(&strings[i])) };

    let node_count = d
        .count(3, "node count exceeds buffer")
        .map_err(VifError::Binary)?;
    let mut nodes: Vec<Rc<VifNode>> = Vec::with_capacity(node_count);
    fn read_value(
        d: &mut Dec<'_>,
        strings: &[Rc<str>],
        nodes: &[Rc<VifNode>],
        resolve: &mut Resolver<'_>,
        depth: usize,
    ) -> Result<VifValue, VifError> {
        if depth > MAX_LIST_DEPTH {
            return Err(VifError::Binary(VifbError::Corrupt(
                "list nesting too deep",
            )));
        }
        let b = |e| VifError::Binary(e);
        Ok(match d.u8().map_err(b)? {
            0 => VifValue::Nil,
            1 => VifValue::Bool(false),
            2 => VifValue::Bool(true),
            3 => VifValue::Int(unzigzag(d.varint().map_err(b)?)),
            4 => VifValue::Real(f64::from_bits(d.u64().map_err(b)?)),
            5 => {
                let i = d.varint().map_err(b)? as usize;
                let s = strings
                    .get(i)
                    .ok_or(b(VifbError::Corrupt("string index out of range")))?;
                VifValue::Str(Rc::clone(s))
            }
            6 => {
                // Postorder invariant: references point strictly backward,
                // so a forward (or self) reference is corruption, and the
                // whole table decodes in one non-recursive pass.
                let i = d.varint().map_err(b)? as usize;
                let n = nodes
                    .get(i)
                    .ok_or(b(VifbError::Corrupt("forward node reference")))?;
                VifValue::Node(Rc::clone(n))
            }
            7 => {
                let count = d.count(1, "list count exceeds buffer").map_err(b)?;
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(read_value(d, strings, nodes, resolve, depth + 1)?);
                }
                VifValue::list(items)
            }
            8 => {
                let i = d.varint().map_err(b)? as usize;
                let r = strings
                    .get(i)
                    .ok_or(b(VifbError::Corrupt("foreign string index out of range")))?;
                VifValue::Node(resolve(r)?)
            }
            _ => return Err(b(VifbError::Corrupt("unknown value tag"))),
        })
    }
    for _ in 0..node_count {
        let b = VifError::Binary;
        let kind_i = d.varint().map_err(b)? as usize;
        if kind_i >= strings.len() {
            return Err(b(VifbError::Corrupt("kind string index out of range")));
        }
        let mut builder = VifNode::build(sym(kind_i));
        let name_code = d.varint().map_err(b)? as usize;
        if name_code > 0 {
            let name_i = name_code - 1;
            if name_i >= strings.len() {
                return Err(b(VifbError::Corrupt("name string index out of range")));
            }
            builder = builder.name(sym(name_i));
        }
        let field_count = d.count(2, "field count exceeds buffer").map_err(b)?;
        for _ in 0..field_count {
            let fname_i = d.varint().map_err(b)? as usize;
            if fname_i >= strings.len() {
                return Err(b(VifbError::Corrupt("field string index out of range")));
            }
            let fname = sym(fname_i);
            let v = read_value(&mut d, &strings, &nodes, resolve, 0)?;
            builder = builder.field(fname, v);
        }
        nodes.push(builder.done());
    }
    let root = d.varint().map_err(VifError::Binary)? as usize;
    if d.remaining() != 0 {
        return Err(VifError::Binary(VifbError::Corrupt("trailing bytes")));
    }
    let root = nodes.get(root).ok_or(VifError::Binary(VifbError::Corrupt(
        "root index out of range",
    )))?;
    STATS_DECODES.fetch_add(1, Ordering::Relaxed);
    Ok(Rc::clone(root))
}

// ---------------------------------------------------------------------------
// Structural node cache
// ---------------------------------------------------------------------------

/// Entries kept per thread before the cache is wholesale cleared. Decoded
/// trees are small relative to this bound in practice; clearing is the
/// simplest eviction that cannot leak unboundedly.
const CACHE_CAP: usize = 1024;

thread_local! {
    static NODE_CACHE: RefCell<HashMap<u64, Rc<VifNode>>> =
        RefCell::new(HashMap::new());
}

static STATS_HITS: AtomicU64 = AtomicU64::new(0);
static STATS_MISSES: AtomicU64 = AtomicU64::new(0);
static STATS_DECODES: AtomicU64 = AtomicU64::new(0);
static STATS_ENCODES: AtomicU64 = AtomicU64::new(0);
static STATS_TEXT_PARSES: AtomicU64 = AtomicU64::new(0);

/// Process-wide counters of the structural cache and codec (summed over
/// all threads; caches themselves are thread-local).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VifbStats {
    /// Structural cache hits: unit loads served as pointer shares.
    pub cache_hits: u64,
    /// Structural cache misses: unit loads that had to decode or parse.
    pub cache_misses: u64,
    /// Successful binary decodes.
    pub decodes: u64,
    /// Binary encodes.
    pub encodes: u64,
    /// Unit loads that fell back to parsing VIF text (no sidecar, or a
    /// sidecar that failed validation).
    pub text_parses: u64,
}

/// Reads the process-wide VIFB counters.
pub fn vifb_stats() -> VifbStats {
    VifbStats {
        cache_hits: STATS_HITS.load(Ordering::Relaxed),
        cache_misses: STATS_MISSES.load(Ordering::Relaxed),
        decodes: STATS_DECODES.load(Ordering::Relaxed),
        encodes: STATS_ENCODES.load(Ordering::Relaxed),
        text_parses: STATS_TEXT_PARSES.load(Ordering::Relaxed),
    }
}

/// Resets the process-wide VIFB counters (benchmark phases).
pub fn reset_vifb_stats() {
    STATS_HITS.store(0, Ordering::Relaxed);
    STATS_MISSES.store(0, Ordering::Relaxed);
    STATS_DECODES.store(0, Ordering::Relaxed);
    STATS_ENCODES.store(0, Ordering::Relaxed);
    STATS_TEXT_PARSES.store(0, Ordering::Relaxed);
}

pub(crate) fn note_text_parse() {
    STATS_TEXT_PARSES.fetch_add(1, Ordering::Relaxed);
}

/// Looks up a decoded tree by content hash in this thread's cache.
pub fn cache_lookup(content_hash: u64) -> Option<Rc<VifNode>> {
    let hit = NODE_CACHE.with(|c| c.borrow().get(&content_hash).cloned());
    match &hit {
        Some(_) => STATS_HITS.fetch_add(1, Ordering::Relaxed),
        None => STATS_MISSES.fetch_add(1, Ordering::Relaxed),
    };
    hit
}

/// Memoizes a decoded tree under its content hash in this thread's cache.
pub fn cache_insert(content_hash: u64, node: &Rc<VifNode>) {
    NODE_CACHE.with(|c| {
        let mut m = c.borrow_mut();
        if m.len() >= CACHE_CAP {
            m.clear();
        }
        m.insert(content_hash, Rc::clone(node));
    });
}

/// Drops every entry of this thread's structural cache (tests, benches).
pub fn clear_node_cache() {
    NODE_CACHE.with(|c| c.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::{read_vif, write_vif};

    fn no_foreign(r: &str) -> Result<Rc<VifNode>, VifError> {
        Err(VifError::Unresolved(r.to_string()))
    }

    fn sample() -> Rc<VifNode> {
        let shared = VifNode::build("type")
            .name("bit")
            .int_field("width", 1)
            .done();
        let port = VifNode::build("port")
            .name("clk")
            .node_field("type", Rc::clone(&shared))
            .done();
        VifNode::build("entity")
            .name("e")
            .list_field(
                "ports",
                vec![
                    VifValue::Node(port),
                    VifValue::Node(shared),
                    VifValue::list(vec![VifValue::Int(-7), VifValue::Bool(true)]),
                ],
            )
            .field("flag", VifValue::Bool(false))
            .field("ratio", VifValue::Real(-2.5))
            .field("none", VifValue::Nil)
            .str_field("note", "say \"hi\"\nline2")
            .done()
    }

    #[test]
    fn round_trip_reprints_byte_identical() {
        let root = sample();
        let text = write_vif(&root);
        let bytes = encode_vifb(&root, fnv1a(0, text.as_bytes()));
        let back = decode_vifb(&bytes, &mut no_foreign).unwrap();
        assert_eq!(back, root);
        assert_eq!(write_vif(&back), text, "text is the golden oracle");
        // Sharing survives: the type node is one allocation.
        let port = back.list_field("ports")[0].as_node().unwrap();
        let ty1 = port.node_field("type").unwrap();
        let ty2 = back.list_field("ports")[1].as_node().unwrap();
        assert!(Rc::ptr_eq(ty1, ty2));
    }

    #[test]
    fn probe_reads_hash_and_foreigns_without_building() {
        let root = VifNode::build("arch")
            .name("rtl")
            .field("entity", VifValue::Foreign("work.entity.e".into()))
            .field("again", VifValue::Foreign("work.entity.e".into()))
            .field("pkg", VifValue::Foreign("ieee.pkg.base".into()))
            .done();
        let bytes = encode_vifb(&root, 0x1234);
        let hdr = probe_vifb(&bytes).unwrap();
        assert_eq!(hdr.text_hash, 0x1234);
        let refs: Vec<&str> = hdr.foreigns.iter().map(|r| &**r).collect();
        assert_eq!(
            refs,
            ["work.entity.e", "ieee.pkg.base"],
            "deduplicated, in order"
        );
    }

    #[test]
    fn foreigns_resolve_through_callback() {
        let root = VifNode::build("arch")
            .name("rtl")
            .field("entity", VifValue::Foreign("work.entity.e".into()))
            .done();
        let text = write_vif(&root);
        let bytes = encode_vifb(&root, fnv1a(0, text.as_bytes()));
        let mut resolve = |r: &str| -> Result<Rc<VifNode>, VifError> {
            assert_eq!(r, "work.entity.e");
            Ok(VifNode::build("entity").name("e").done())
        };
        let via_bin = decode_vifb(&bytes, &mut resolve).unwrap();
        let via_text = read_vif(&text, &mut resolve).unwrap();
        assert_eq!(via_bin, via_text);
        assert_eq!(write_vif(&via_bin), write_vif(&via_text));
    }

    #[test]
    fn hostile_bytes_are_errors_never_panics() {
        let root = sample();
        let good = encode_vifb(&root, 99);

        // Truncation at every prefix length.
        for n in 0..good.len() {
            assert!(
                decode_vifb(&good[..n], &mut no_foreign).is_err(),
                "prefix {n}"
            );
            assert!(probe_vifb(&good[..n]).is_err(), "probe prefix {n}");
        }
        // Single-byte corruption at every offset (checksum or structure
        // must catch it; flipping checksum bytes themselves fails too).
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(decode_vifb(&bad, &mut no_foreign).is_err(), "flip {i}");
        }
        // Wrong magic / wrong version, with a re-sealed checksum so the
        // rejection is attributed to the right check.
        let mut wrong_ver = good.clone();
        wrong_ver[4] = 9;
        let body_len = wrong_ver.len() - 8;
        let seal = fnv1a(0, &wrong_ver[..body_len]).to_le_bytes();
        wrong_ver[body_len..].copy_from_slice(&seal);
        match decode_vifb(&wrong_ver, &mut no_foreign) {
            Err(VifError::Binary(VifbError::BadVersion(9))) => {}
            other => panic!("expected BadVersion, got {other:?}"),
        }
        match decode_vifb(b"VSNPxxxxxxxxxxxxxxxxxxxxxxxx", &mut no_foreign) {
            Err(VifError::Binary(VifbError::BadMagic)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
        assert!(decode_vifb(&[], &mut no_foreign).is_err());
    }

    #[test]
    fn hostile_counts_and_nesting_rejected() {
        // A hand-built buffer claiming 2^40 strings must be rejected
        // before any allocation sized by the claim.
        let mut b = Vec::new();
        b.extend_from_slice(&VIFB_MAGIC);
        b.extend_from_slice(&VIFB_VERSION.to_le_bytes());
        b.extend_from_slice(&0u64.to_le_bytes());
        put_varint(&mut b, 1 << 40);
        let seal = fnv1a(0, &b).to_le_bytes();
        b.extend_from_slice(&seal);
        match decode_vifb(&b, &mut no_foreign) {
            Err(VifError::Binary(VifbError::Corrupt(_))) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // Deep list nesting: node 0 with one field whose value is a chain
        // of single-element lists far beyond the depth bound.
        let mut b = Vec::new();
        b.extend_from_slice(&VIFB_MAGIC);
        b.extend_from_slice(&VIFB_VERSION.to_le_bytes());
        b.extend_from_slice(&0u64.to_le_bytes());
        put_varint(&mut b, 1); // one string: "k"
        put_varint(&mut b, 1);
        b.push(b'k');
        put_varint(&mut b, 0); // no foreigns
        put_varint(&mut b, 1); // one node
        put_varint(&mut b, 0); // kind = "k"
        put_varint(&mut b, 0); // unnamed
        put_varint(&mut b, 1); // one field
        put_varint(&mut b, 0); // field name = "k"
        for _ in 0..MAX_LIST_DEPTH + 8 {
            b.push(7); // list…
            put_varint(&mut b, 1); // …of one element
        }
        b.push(0); // innermost nil
        put_varint(&mut b, 0); // root
        let seal = fnv1a(0, &b).to_le_bytes();
        b.extend_from_slice(&seal);
        match decode_vifb(&b, &mut no_foreign) {
            Err(VifError::Binary(VifbError::Corrupt(msg))) => {
                assert!(msg.contains("nesting"), "{msg}");
            }
            other => panic!("expected nesting rejection, got {other:?}"),
        }
    }

    #[test]
    fn forward_node_reference_rejected() {
        // One node whose field references node index 0 — itself. Postorder
        // references must be strictly backward.
        let mut b = Vec::new();
        b.extend_from_slice(&VIFB_MAGIC);
        b.extend_from_slice(&VIFB_VERSION.to_le_bytes());
        b.extend_from_slice(&0u64.to_le_bytes());
        put_varint(&mut b, 1);
        put_varint(&mut b, 1);
        b.push(b'k');
        put_varint(&mut b, 0);
        put_varint(&mut b, 1);
        put_varint(&mut b, 0);
        put_varint(&mut b, 0);
        put_varint(&mut b, 1);
        put_varint(&mut b, 0);
        b.push(6); // node ref…
        put_varint(&mut b, 0); // …to itself
        put_varint(&mut b, 0);
        let seal = fnv1a(0, &b).to_le_bytes();
        b.extend_from_slice(&seal);
        match decode_vifb(&b, &mut no_foreign) {
            Err(VifError::Binary(VifbError::Corrupt(msg))) => {
                assert!(msg.contains("forward"), "{msg}");
            }
            other => panic!("expected forward-ref rejection, got {other:?}"),
        }
    }

    #[test]
    fn node_cache_shares_pointers_and_counts() {
        clear_node_cache();
        let before = vifb_stats();
        let root = sample();
        assert!(cache_lookup(0xfeed_face).is_none());
        cache_insert(0xfeed_face, &root);
        let hit = cache_lookup(0xfeed_face).expect("cached");
        assert!(Rc::ptr_eq(&hit, &root));
        let after = vifb_stats();
        assert_eq!(after.cache_hits - before.cache_hits, 1);
        assert_eq!(after.cache_misses - before.cache_misses, 1);
        clear_node_cache();
    }
}
