//! Property tests for the VIFB binary encoding: `decode ∘ encode`
//! re-prints byte-identically to `write_vif` on arbitrary node graphs
//! (text is the golden oracle), sharing survives, foreign references
//! resolve exactly as the text path resolves them, and corrupted,
//! truncated, or version-bumped buffers are rejected as errors — never
//! panics — under shrinking.

use std::rc::Rc;

use ag_harness::{check, check_eq, forall, Config, Source};
use vhdl_vif::{
    decode_vifb, encode_vifb, probe_vifb, read_vif, read_vif_unresolved, write_vif, VifError,
    VifNode, VifValue,
};

/// Random leaf-or-composite values (the same input space as the text
/// round-trip suite in `prop.rs`).
fn value(s: &mut Source, depth: u32) -> VifValue {
    let max_choice = if depth == 0 { 4 } else { 6 };
    match s.usize_in(0, max_choice) {
        0 => VifValue::Nil,
        1 => VifValue::Bool(s.bool()),
        2 => VifValue::Int(s.i64_in(i64::MIN, i64::MAX)),
        3 => VifValue::Real(s.f64_in(-1e9, 1e9)),
        4 => VifValue::str(s.string_of("abcxyz019 .\"\\", 12)),
        5 => VifValue::Node(node(s, depth - 1)),
        _ => VifValue::list(s.vec(0, 3, |s| value(s, depth - 1))),
    }
}

fn node(s: &mut Source, depth: u32) -> Rc<VifNode> {
    let kind = s.string_from("abkxyz", "abkxyz.", 8);
    let name = s.option(|s| s.string_from("abcnpq", "abcnpq019_", 8));
    let fields = s.vec(0, 4, |s| {
        let f = s.string_from("fghuvw", "fghuvw019_", 6);
        let v = value(s, depth);
        (f, v)
    });
    let mut b = VifNode::build(kind.as_str());
    if let Some(n) = name {
        b = b.name(n.as_str());
    }
    for (f, v) in fields {
        b = b.field(f.as_str(), v);
    }
    b.done()
}

fn no_foreign(r: &str) -> Result<Rc<VifNode>, VifError> {
    Err(VifError::Unresolved(r.to_string()))
}

fn text_hash(text: &str) -> u64 {
    vhdl_vif::binary::fnv1a(0, text.as_bytes())
}

/// decode ∘ encode re-prints byte-identically to the original text —
/// the text-as-oracle invariant.
#[test]
fn vifb_round_trip_reprints_byte_identical() {
    forall!(
        Config::new("vifb_round_trip_reprints_byte_identical").cases(128),
        |s| {
            let n = node(s, 3);
            let text = write_vif(&n);
            let vifb = encode_vifb(&n, text_hash(&text));
            let back = decode_vifb(&vifb, &mut no_foreign).unwrap();
            check_eq!(back, n);
            check_eq!(write_vif(&back), text, "re-print must be byte-identical");
            check_eq!(probe_vifb(&vifb).unwrap().text_hash, text_hash(&text));
        }
    );
}

/// Encoding the tree the library would re-parse from its own text yields
/// the same bytes as encoding the original tree — the sidecar is a pure
/// function of the text.
#[test]
fn vifb_encoding_is_canonical_over_text() {
    forall!(
        Config::new("vifb_encoding_is_canonical_over_text").cases(96),
        |s| {
            let n = node(s, 3);
            let text = write_vif(&n);
            let direct = encode_vifb(&n, text_hash(&text));
            let reparsed = encode_vifb(&read_vif_unresolved(&text).unwrap(), text_hash(&text));
            check_eq!(direct, reparsed);
        }
    );
}

/// Sharing survives the binary round trip: a diamond stays one allocation.
#[test]
fn vifb_preserves_sharing() {
    forall!(Config::new("vifb_preserves_sharing").cases(96), |s| {
        let shared = node(s, 1);
        let a = VifNode::build("a")
            .node_field("t", Rc::clone(&shared))
            .done();
        let b = VifNode::build("b")
            .node_field("t", Rc::clone(&shared))
            .done();
        let root = VifNode::build("root")
            .node_field("l", a)
            .node_field("r", b)
            .done();
        let vifb = encode_vifb(&root, 0);
        let back = decode_vifb(&vifb, &mut no_foreign).unwrap();
        check_eq!(back.reachable_size(), root.reachable_size());
        let l = back.node_field("l").unwrap().node_field("t").unwrap();
        let r = back.node_field("r").unwrap().node_field("t").unwrap();
        check!(Rc::ptr_eq(l, r), "diamond collapsed to one allocation");
    });
}

/// Foreign references resolve through the callback exactly as the text
/// path resolves them.
#[test]
fn vifb_foreigns_match_text_path() {
    forall!(
        Config::new("vifb_foreigns_match_text_path").cases(96),
        |s| {
            let dep = node(s, 1);
            let refs = s.vec(1, 3, |s| {
                format!("work.pkg.{}", s.string_from("mn", "mn01", 4))
            });
            let mut b = VifNode::build("arch").name("rtl");
            for (i, r) in refs.iter().enumerate() {
                b = b.field(
                    format!("u{i}").as_str(),
                    VifValue::Foreign(r.as_str().into()),
                );
            }
            let root = b.done();
            let text = write_vif(&root);
            let vifb = encode_vifb(&root, text_hash(&text));

            let mut resolve_a = |_: &str| Ok(Rc::clone(&dep));
            let via_text = read_vif(&text, &mut resolve_a).unwrap();
            let mut resolve_b = |_: &str| Ok(Rc::clone(&dep));
            let via_vifb = decode_vifb(&vifb, &mut resolve_b).unwrap();
            check_eq!(via_vifb, via_text);
        }
    );
}

/// Hostile bytes — random single-byte flips, truncations, and version
/// bumps of valid buffers — are rejected with errors, never panics.
#[test]
fn vifb_corruption_is_rejected_not_panicking() {
    forall!(
        Config::new("vifb_corruption_is_rejected_not_panicking").cases(160),
        |s| {
            let n = node(s, 2);
            let text = write_vif(&n);
            let good = encode_vifb(&n, text_hash(&text));
            check!(decode_vifb(&good, &mut no_foreign).is_ok());

            match s.usize_in(0, 2) {
                0 => {
                    // Flip one byte anywhere: the checksum (or magic)
                    // must catch it.
                    let mut bad = good.clone();
                    let i = s.usize_in(0, bad.len() - 1);
                    bad[i] ^= s.u64_in(1, 255) as u8;
                    check!(
                        decode_vifb(&bad, &mut no_foreign).is_err(),
                        "flipped byte at {i} must be rejected"
                    );
                }
                1 => {
                    // Truncate at a random point.
                    let keep = s.usize_in(0, good.len() - 1);
                    check!(
                        decode_vifb(&good[..keep], &mut no_foreign).is_err(),
                        "truncation to {keep} bytes must be rejected"
                    );
                }
                _ => {
                    // Bump the version and re-seal the checksum so only
                    // the version check can reject it.
                    let mut bad = good.clone();
                    bad[4] = bad[4].wrapping_add(s.u64_in(1, 200) as u8);
                    let body = bad.len() - 8;
                    let seal = vhdl_vif::binary::fnv1a(0, &bad[..body]);
                    let tail = body;
                    bad[tail..].copy_from_slice(&seal.to_le_bytes());
                    let e = decode_vifb(&bad, &mut no_foreign).unwrap_err();
                    check!(
                        matches!(e, VifError::Binary(vhdl_vif::VifbError::BadVersion(_))),
                        "wrong version must be BadVersion, got {e}"
                    );
                }
            }
        }
    );
}
