//! Golden backward-compatibility test: a `.vif` text written before the
//! interning refactor (kinds, names, and field names were plain strings
//! then) must keep parsing, with the same structure, sharing, and field
//! access — the format is the §2 interchange representation and symbol
//! ids must never leak into it.

use std::rc::Rc;

use vhdl_vif::{kinds, read_vif, write_vif, VifError, VifNode, VifValue};

/// Captured verbatim from the pre-refactor writer: an entity with two
/// ports sharing one `ty.enum` node, dotted kinds, every scalar value
/// shape, a list, and a string with escapes.
const GOLDEN: &str = r#"VIF1
#0 (entity "adder" (ports [#1 #3]) (flag true) (ratio r2.5) (none nil) (note "say \"hi\"\nline2") (width 8))
#1 (obj "a" (ty #2) (line 3))
#2 (ty.enum "bit" (lits ["'0'" "'1'"]))
#3 (obj "b" (ty #2) (line 4))
root #0
"#;

fn no_foreign(r: &str) -> Result<Rc<VifNode>, VifError> {
    Err(VifError::Unresolved(r.to_string()))
}

#[test]
fn pre_refactor_text_parses_unchanged() {
    let root = read_vif(GOLDEN, &mut no_foreign).expect("old-format text parses");

    // String-based accessors still see the spelled-out names…
    assert_eq!(root.kind(), "entity");
    assert_eq!(root.name(), Some("adder"));
    assert_eq!(root.int_field("width"), Some(8));
    assert_eq!(root.str_field("note"), Some("say \"hi\"\nline2"));
    assert!(matches!(root.field("flag"), Some(VifValue::Bool(true))));
    assert!(matches!(root.field("none"), Some(VifValue::Nil)));

    // …and the interned view agrees with the typed kind constants.
    let ports = root.list_field("ports");
    assert_eq!(ports.len(), 2);
    let a = ports[0].as_node().unwrap();
    let b = ports[1].as_node().unwrap();
    assert_eq!(a.kind_sym(), kinds::obj());
    let ty = a.node_field("ty").unwrap();
    assert_eq!(ty.kind_sym(), kinds::ty_enum());
    assert!(kinds::is_ty(ty.kind_sym()));

    // Sharing from the numbered node table survives interning.
    assert!(Rc::ptr_eq(ty, b.node_field("ty").unwrap()));
    assert_eq!(root.reachable_size(), 4);

    // Re-serializing emits spelled-out names again, never symbol ids,
    // so the text round-trips exactly.
    let text = write_vif(&root);
    assert_eq!(text, GOLDEN);
}
