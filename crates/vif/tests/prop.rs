//! Property tests for the VIF: serialization round-trips arbitrary node
//! graphs, preserves sharing, and library history obeys the
//! latest-compiled-architecture rule.
//!
//! Ported from proptest to the in-repo `ag-harness` framework; the input
//! space and every invariant are unchanged.

use std::rc::Rc;

use ag_harness::{check, check_eq, forall, Config, Source};
use vhdl_vif::{read_vif, write_vif, Library, VifError, VifNode, VifValue};

/// Random leaf-or-composite values (sharing is tested separately and
/// deterministically). Mirrors the old `value_strategy(depth)`.
fn value(s: &mut Source, depth: u32) -> VifValue {
    // Composites only below the depth limit; choice 0 (minimal) is Nil.
    let max_choice = if depth == 0 { 4 } else { 6 };
    match s.usize_in(0, max_choice) {
        0 => VifValue::Nil,
        1 => VifValue::Bool(s.bool()),
        2 => VifValue::Int(s.i64_in(i64::MIN, i64::MAX)),
        3 => VifValue::Real(s.f64_in(-1e9, 1e9)),
        4 => VifValue::str(s.string_of("abcxyz019 .\"\\", 12)),
        5 => VifValue::Node(node(s, depth - 1)),
        _ => VifValue::list(s.vec(0, 3, |s| value(s, depth - 1))),
    }
}

/// Random node trees, mirroring the old `node_strategy(depth)`:
/// kind `[a-z][a-z.]{0,8}`, optional name `[a-z][a-z0-9_]{0,8}`,
/// 0–4 fields named `[a-z][a-z0-9_]{0,6}`.
fn node(s: &mut Source, depth: u32) -> Rc<VifNode> {
    let kind = s.string_from("abkxyz", "abkxyz.", 8);
    let name = s.option(|s| s.string_from("abcnpq", "abcnpq019_", 8));
    let fields = s.vec(0, 4, |s| {
        let f = s.string_from("fghuvw", "fghuvw019_", 6);
        let v = value(s, depth);
        (f, v)
    });
    let mut b = VifNode::build(kind.as_str());
    if let Some(n) = name {
        b = b.name(n.as_str());
    }
    for (f, v) in fields {
        b = b.field(f.as_str(), v);
    }
    b.done()
}

fn no_foreign(r: &str) -> Result<Rc<VifNode>, VifError> {
    Err(VifError::Unresolved(r.to_string()))
}

/// write → read is the identity on arbitrary node graphs.
#[test]
fn round_trip() {
    forall!(Config::new("round_trip").cases(128), |s| {
        let n = node(s, 3);
        let text = write_vif(&n);
        let back = read_vif(&text, &mut no_foreign).unwrap();
        check_eq!(back, n);
    });
}

/// Sharing is preserved: a diamond keeps its shared leaf single.
#[test]
fn sharing_survives() {
    forall!(Config::new("sharing_survives").cases(128), |s| {
        let shared = node(s, 1);
        let a = VifNode::build("a")
            .node_field("t", Rc::clone(&shared))
            .done();
        let b = VifNode::build("b")
            .node_field("t", Rc::clone(&shared))
            .done();
        let root = VifNode::build("root")
            .node_field("l", a)
            .node_field("r", b)
            .done();
        let n_before = root.reachable_size();
        let back = read_vif(&write_vif(&root), &mut no_foreign).unwrap();
        check_eq!(back.reachable_size(), n_before);
        let l = back.node_field("l").unwrap().node_field("t").unwrap();
        let r = back.node_field("r").unwrap().node_field("t").unwrap();
        check!(Rc::ptr_eq(l, r), "diamond collapsed to one allocation");
    });
}

/// The latest-architecture rule returns the most recent put, under any
/// interleaving of architectures for any entities.
#[test]
fn latest_architecture_is_history_order() {
    forall!(
        Config::new("latest_architecture_is_history_order").cases(128),
        |s| {
            let puts = s.vec(1, 19, |s| (s.u64_in(0, 2) as u8, s.u64_in(0, 2) as u8));
            let lib = Library::in_memory("work");
            let node = VifNode::build("arch").done();
            let mut last: std::collections::HashMap<u8, u8> = Default::default();
            for (e, a) in &puts {
                lib.put(&format!("arch.e{e}.a{a}"), &node).unwrap();
                last.insert(*e, *a);
            }
            for (e, a) in last {
                check_eq!(
                    lib.latest_architecture(&format!("e{e}")),
                    Some(format!("a{a}"))
                );
            }
            check_eq!(lib.latest_architecture("zz"), None);
        }
    );
}
