//! Property tests for the VIF: serialization round-trips arbitrary node
//! graphs, preserves sharing, and library history obeys the
//! latest-compiled-architecture rule.

use std::rc::Rc;

use proptest::prelude::*;
use vhdl_vif::{read_vif, write_vif, Library, VifError, VifNode, VifValue};

/// Random node trees (sharing is tested separately and deterministically).
fn value_strategy(depth: u32) -> BoxedStrategy<VifValue> {
    let leaf = prop_oneof![
        Just(VifValue::Nil),
        any::<bool>().prop_map(VifValue::Bool),
        any::<i64>().prop_map(VifValue::Int),
        (-1e9f64..1e9).prop_map(VifValue::Real),
        "[a-z0-9 .\"\\\\]{0,12}".prop_map(|s| VifValue::str(s)),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        prop_oneof![
            leaf,
            node_strategy(depth - 1).prop_map(VifValue::Node),
            proptest::collection::vec(value_strategy(depth - 1), 0..4)
                .prop_map(VifValue::list),
        ]
        .boxed()
    }
}

fn node_strategy(depth: u32) -> BoxedStrategy<Rc<VifNode>> {
    (
        "[a-z][a-z.]{0,8}",
        proptest::option::of("[a-z][a-z0-9_]{0,8}"),
        proptest::collection::vec(("[a-z][a-z0-9_]{0,6}", value_strategy(depth)), 0..5),
    )
        .prop_map(|(kind, name, fields)| {
            let mut b = VifNode::build(kind.as_str());
            if let Some(n) = name {
                b = b.name(n.as_str());
            }
            for (f, v) in fields {
                b = b.field(f.as_str(), v);
            }
            b.done()
        })
        .boxed()
}

fn no_foreign(r: &str) -> Result<Rc<VifNode>, VifError> {
    Err(VifError::Unresolved(r.to_string()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// write → read is the identity on arbitrary node graphs.
    #[test]
    fn round_trip(node in node_strategy(3)) {
        let text = write_vif(&node);
        let back = read_vif(&text, &mut no_foreign).unwrap();
        prop_assert_eq!(back, node);
    }

    /// Sharing is preserved: a diamond keeps its shared leaf single.
    #[test]
    fn sharing_survives(shared in node_strategy(1)) {
        let a = VifNode::build("a").node_field("t", Rc::clone(&shared)).done();
        let b = VifNode::build("b").node_field("t", Rc::clone(&shared)).done();
        let root = VifNode::build("root")
            .node_field("l", a)
            .node_field("r", b)
            .done();
        let n_before = root.reachable_size();
        let back = read_vif(&write_vif(&root), &mut no_foreign).unwrap();
        prop_assert_eq!(back.reachable_size(), n_before);
        let l = back.node_field("l").unwrap().node_field("t").unwrap();
        let r = back.node_field("r").unwrap().node_field("t").unwrap();
        prop_assert!(Rc::ptr_eq(l, r), "diamond collapsed to one allocation");
    }

    /// The latest-architecture rule returns the most recent put, under any
    /// interleaving of architectures for any entities.
    #[test]
    fn latest_architecture_is_history_order(
        puts in proptest::collection::vec((0u8..3, 0u8..3), 1..20)
    ) {
        let lib = Library::in_memory("work");
        let node = VifNode::build("arch").done();
        let mut last: std::collections::HashMap<u8, u8> = Default::default();
        for (e, a) in &puts {
            lib.put(&format!("arch.e{e}.a{a}"), &node).unwrap();
            last.insert(*e, *a);
        }
        for (e, a) in last {
            prop_assert_eq!(
                lib.latest_architecture(&format!("e{e}")),
                Some(format!("a{a}"))
            );
        }
        prop_assert_eq!(lib.latest_architecture("zz"), None);
    }
}
