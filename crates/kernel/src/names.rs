//! The Name Server: hierarchical path names for simulation objects.
//!
//! §2.1 lists four virtual-machine modules; this is the fourth. During
//! elaboration every signal, process, and region scope is registered under
//! its hierarchical path (`tb.dut.x1.y`), and the Name Server resolves
//! external spellings of those paths — `:tb:dut:x1:y` in the VHDL
//! path-name style, or dot-separated — back to kernel objects. It is the
//! hook interactive simulation control hangs off: signal inspection, VCD
//! probe selection, and per-object event counters all address objects
//! through it.
//!
//! Per VHDL's identifier rules (LRM §13.3) resolution is case-insensitive:
//! every segment is folded through [`Symbol::intern_ci`], so `:TB:DUT:Sum`
//! and `:tb:dut:sum` are the same path. Lookups never panic — unknown
//! paths and malformed glob patterns come back as [`NameError`]
//! diagnostics that name the deepest prefix that *did* resolve.

use std::collections::HashMap;

use ag_intern::Symbol;

use crate::isa::{Program, SigId};

/// What a resolved name designates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NsObject {
    /// A signal.
    Signal(SigId),
    /// A process (index into [`Program::processes`]).
    Process(u32),
    /// A region scope (an instance, block, or other declarative region).
    Region,
}

impl NsObject {
    /// Short kind tag for diagnostics and protocol payloads.
    pub fn kind(&self) -> &'static str {
        match self {
            NsObject::Signal(_) => "signal",
            NsObject::Process(_) => "process",
            NsObject::Region => "region",
        }
    }
}

/// A resolution failure. Never a panic: bad input is a client mistake,
/// not a kernel invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NameError {
    /// The path is syntactically empty.
    EmptyPath,
    /// A segment did not resolve; `resolved` is the deepest prefix that
    /// did (rendered canonically), `segment` the offending spelling.
    NoSuchName {
        /// Canonical path of the deepest resolved prefix.
        resolved: String,
        /// The segment that failed to resolve under it.
        segment: String,
    },
    /// A glob pattern is malformed (e.g. `**` mixed with other text in
    /// one segment).
    BadGlob(String),
}

impl std::fmt::Display for NameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NameError::EmptyPath => write!(f, "empty path name"),
            NameError::NoSuchName { resolved, segment } => {
                if resolved.is_empty() {
                    write!(f, "no object named `{segment}` at the design root")
                } else {
                    write!(f, "no object named `{segment}` under `{resolved}`")
                }
            }
            NameError::BadGlob(p) => {
                write!(f, "bad glob `{p}`: `**` must be a whole segment")
            }
        }
    }
}

impl std::error::Error for NameError {}

struct Node {
    name: Symbol,
    parent: usize,
    children: Vec<usize>,
    /// Child index by folded segment symbol.
    by_name: HashMap<Symbol, usize>,
    object: NsObject,
}

/// One resolved entry: the object plus its canonical path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NsEntry {
    /// Canonical colon-separated path (`:tb:dut:sum`).
    pub path: String,
    /// The designated object.
    pub object: NsObject,
}

/// The hierarchical namespace of one elaborated design.
pub struct NameServer {
    /// Node 0 is the anonymous root.
    nodes: Vec<Node>,
}

impl NameServer {
    /// An empty namespace (root only).
    pub fn new() -> NameServer {
        NameServer {
            nodes: vec![Node {
                name: Symbol::intern(""),
                parent: 0,
                children: Vec::new(),
                by_name: HashMap::new(),
                object: NsObject::Region,
            }],
        }
    }

    /// Builds the namespace for a program: every region path the
    /// elaborator recorded, then every signal and process under its
    /// hierarchical name. Intermediate segments become regions even when
    /// the elaborator recorded none (hand-built programs).
    pub fn from_program(program: &Program) -> NameServer {
        let mut ns = NameServer::new();
        for r in &program.regions {
            ns.insert(r, NsObject::Region);
        }
        for (i, s) in program.signals.iter().enumerate() {
            ns.insert(&s.name, NsObject::Signal(SigId(i as u32)));
        }
        for (i, p) in program.processes.iter().enumerate() {
            ns.insert(&p.name, NsObject::Process(i as u32));
        }
        ns
    }

    /// Registers `path` (dot- or colon-separated) as `object`, creating
    /// intermediate regions. Re-registering a path upgrades a plain
    /// region to the concrete object; it never downgrades.
    pub fn insert(&mut self, path: &str, object: NsObject) {
        let mut cur = 0usize;
        for seg in split_path(path) {
            let sym = Symbol::intern_ci(seg);
            cur = match self.nodes[cur].by_name.get(&sym) {
                Some(&c) => c,
                None => {
                    let idx = self.nodes.len();
                    self.nodes.push(Node {
                        name: sym,
                        parent: cur,
                        children: Vec::new(),
                        by_name: HashMap::new(),
                        object: NsObject::Region,
                    });
                    self.nodes[cur].children.push(idx);
                    self.nodes[cur].by_name.insert(sym, idx);
                    idx
                }
            };
        }
        if cur != 0 && !matches!(object, NsObject::Region) {
            self.nodes[cur].object = object;
        }
    }

    /// Total registered names (excluding the root).
    pub fn len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Resolves one path name (case-insensitive; `:a:b` or `a.b`).
    ///
    /// # Errors
    ///
    /// [`NameError::EmptyPath`] / [`NameError::NoSuchName`]; never panics.
    pub fn resolve(&self, path: &str) -> Result<NsEntry, NameError> {
        let segs: Vec<&str> = split_path(path).collect();
        if segs.is_empty() {
            return Err(NameError::EmptyPath);
        }
        let mut cur = 0usize;
        for seg in segs {
            let sym = Symbol::intern_ci(seg);
            match self.nodes[cur].by_name.get(&sym) {
                Some(&c) => cur = c,
                None => {
                    return Err(NameError::NoSuchName {
                        resolved: self.path_of(cur),
                        segment: seg.to_string(),
                    })
                }
            }
        }
        Ok(self.entry(cur))
    }

    /// Resolves a glob pattern to every matching object, in canonical
    /// path order. `*` and `?` match within a segment; a segment that is
    /// exactly `**` matches zero or more whole segments. Matching is
    /// case-insensitive, like [`NameServer::resolve`].
    ///
    /// # Errors
    ///
    /// [`NameError::BadGlob`] for `**` mixed into a longer segment,
    /// [`NameError::EmptyPath`] for an empty pattern; never panics.
    pub fn glob(&self, pattern: &str) -> Result<Vec<NsEntry>, NameError> {
        let segs: Vec<String> = split_path(pattern)
            .map(|s| s.to_ascii_lowercase())
            .collect();
        if segs.is_empty() {
            return Err(NameError::EmptyPath);
        }
        for s in &segs {
            if s.contains("**") && s != "**" {
                return Err(NameError::BadGlob(pattern.to_string()));
            }
        }
        let mut out = Vec::new();
        self.glob_walk(0, &segs, &mut out);
        out.sort_unstable();
        out.dedup();
        let mut entries: Vec<NsEntry> = out.into_iter().map(|i| self.entry(i)).collect();
        entries.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(entries)
    }

    fn glob_walk(&self, node: usize, segs: &[String], out: &mut Vec<usize>) {
        let Some(first) = segs.first() else {
            if node != 0 {
                out.push(node);
            }
            return;
        };
        if first == "**" {
            // Zero segments …
            self.glob_walk(node, &segs[1..], out);
            // … or one more, keeping the `**`.
            for &c in &self.nodes[node].children {
                self.glob_walk(c, segs, out);
            }
            return;
        }
        for &c in &self.nodes[node].children {
            if seg_match(first, self.nodes[c].name.as_str()) {
                self.glob_walk(c, &segs[1..], out);
            }
        }
    }

    /// Reverse lookup: the entry designating `object`, if registered.
    /// Regions are ambiguous (every scope is one), so only concrete
    /// objects — signals and processes — are found. Linear in the
    /// namespace; meant for inspection surfaces, not hot paths.
    pub fn find(&self, object: NsObject) -> Option<NsEntry> {
        if matches!(object, NsObject::Region) {
            return None;
        }
        self.nodes
            .iter()
            .position(|n| n.object == object)
            .map(|i| self.entry(i))
    }

    /// All entries, in canonical path order (root excluded).
    pub fn all(&self) -> Vec<NsEntry> {
        let mut idx: Vec<usize> = (1..self.nodes.len()).collect();
        idx.sort();
        let mut out: Vec<NsEntry> = idx.into_iter().map(|i| self.entry(i)).collect();
        out.sort_by(|a, b| a.path.cmp(&b.path));
        out
    }

    fn entry(&self, node: usize) -> NsEntry {
        NsEntry {
            path: self.path_of(node),
            object: self.nodes[node].object,
        }
    }

    /// Canonical rendering of a node: `:a:b:c` (folded spellings).
    fn path_of(&self, mut node: usize) -> String {
        if node == 0 {
            return String::new();
        }
        let mut segs = Vec::new();
        while node != 0 {
            segs.push(self.nodes[node].name.as_str());
            node = self.nodes[node].parent;
        }
        segs.reverse();
        let mut out = String::new();
        for s in segs {
            out.push(':');
            out.push_str(s);
        }
        out
    }
}

impl Default for NameServer {
    fn default() -> Self {
        NameServer::new()
    }
}

/// Splits a path on `:` and `.`, dropping empty segments (so a leading
/// `:` is accepted, as are doubled separators).
fn split_path(path: &str) -> impl Iterator<Item = &str> {
    path.split([':', '.']).filter(|s| !s.is_empty())
}

/// Glob match of one folded pattern segment against one folded name:
/// `*` matches any run, `?` any single char. Iterative two-pointer
/// backtracking (no recursion, no allocation).
fn seg_match(pat: &str, name: &str) -> bool {
    let (p, n) = (pat.as_bytes(), name.as_bytes());
    let (mut pi, mut ni) = (0usize, 0usize);
    let (mut star, mut mark) = (None::<usize>, 0usize);
    while ni < n.len() {
        if pi < p.len() && (p[pi] == b'?' || p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = Some(pi);
            mark = ni;
            pi += 1;
        } else if let Some(s) = star {
            pi = s + 1;
            mark += 1;
            ni = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Val;

    fn sample() -> NameServer {
        let mut p = Program::default();
        p.regions.push("tb".into());
        p.regions.push("tb.dut".into());
        p.add_signal("tb.clk", Val::Int(0));
        p.add_signal("tb.dut.sum", Val::Int(0));
        p.add_signal("tb.dut.cout", Val::Int(0));
        p.add_process("tb.stim", 0, vec![]);
        NameServer::from_program(&p)
    }

    #[test]
    fn resolve_colon_dot_and_case() {
        let ns = sample();
        let e = ns.resolve(":tb:dut:sum").unwrap();
        assert_eq!(e.path, ":tb:dut:sum");
        assert_eq!(e.object, NsObject::Signal(SigId(1)));
        assert_eq!(ns.resolve("tb.dut.sum").unwrap(), e);
        assert_eq!(ns.resolve(":TB:Dut:SUM").unwrap(), e);
        assert_eq!(
            ns.resolve(":tb").unwrap().object.kind(),
            "region",
            "intermediate scopes resolve as regions"
        );
        assert_eq!(ns.resolve(":tb:stim").unwrap().object, NsObject::Process(0));
    }

    #[test]
    fn resolve_errors_are_diagnostics() {
        let ns = sample();
        match ns.resolve(":tb:dut:nope").unwrap_err() {
            NameError::NoSuchName { resolved, segment } => {
                assert_eq!(resolved, ":tb:dut");
                assert_eq!(segment, "nope");
            }
            e => panic!("wrong error {e}"),
        }
        assert_eq!(ns.resolve("").unwrap_err(), NameError::EmptyPath);
        assert_eq!(ns.resolve(":::").unwrap_err(), NameError::EmptyPath);
    }

    #[test]
    fn globs() {
        let ns = sample();
        let sigs: Vec<String> = ns
            .glob(":tb:dut:*")
            .unwrap()
            .into_iter()
            .map(|e| e.path)
            .collect();
        assert_eq!(sigs, [":tb:dut:cout", ":tb:dut:sum"]);
        let all = ns.glob(":**").unwrap();
        assert_eq!(all.len(), ns.len());
        let deep: Vec<String> = ns
            .glob("**.s*")
            .unwrap()
            .into_iter()
            .map(|e| e.path)
            .collect();
        assert_eq!(deep, [":tb:dut:sum", ":tb:stim"]);
        assert_eq!(ns.glob(":tb:c?k").unwrap().len(), 1);
        assert!(matches!(
            ns.glob(":tb:**x").unwrap_err(),
            NameError::BadGlob(_)
        ));
        assert!(ns.glob(":tb:zzz:*").unwrap().is_empty());
    }

    #[test]
    fn reverse_lookup() {
        let ns = sample();
        let e = ns.find(NsObject::Signal(SigId(1))).unwrap();
        assert_eq!(e.path, ":tb:dut:sum");
        assert_eq!(ns.find(NsObject::Process(0)).unwrap().path, ":tb:stim");
        assert!(ns.find(NsObject::Region).is_none());
        assert!(ns.find(NsObject::Signal(SigId(99))).is_none());
    }

    #[test]
    fn seg_match_cases() {
        assert!(seg_match("*", "anything"));
        assert!(seg_match("a*b", "axxb"));
        assert!(seg_match("a*b", "ab"));
        assert!(!seg_match("a*b", "axc"));
        assert!(seg_match("??", "ab"));
        assert!(!seg_match("??", "a"));
        assert!(seg_match("*x*", "axb"));
    }
}
