//! The delta-cycle worker pool: long-lived named threads with one
//! mailbox slot each, no work stealing. Each cycle the coordinator
//! hands every worker an owned chunk of ready processes plus a shared
//! read-only cycle context ([`Ctx`]); workers execute the chunk with
//! [`crate::sim::run_chunk`], buffering every side effect locally, and
//! post the buffer back. All mutation happens on the coordinator at the
//! cycle barrier, in seed scan order — so the observable outcome never
//! depends on thread scheduling, only on the partition, which is itself
//! a pure function of the ready set.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use crate::compile::CompiledProgram;
use crate::isa::Program;
use crate::sim::{run_chunk, JobBuf};
use crate::value::Time;

/// The read-only cycle context shared by every worker during one
/// process phase. Holding clones of the simulator's `Arc`s is what
/// makes the phase safe: the coordinator cannot regain `Arc::get_mut`
/// access to the signal table until every worker has dropped its clone,
/// which happens before the worker posts its results back.
pub(crate) struct Ctx {
    pub(crate) program: Arc<Program>,
    pub(crate) signals: Arc<Vec<crate::sim::SigState>>,
    pub(crate) compiled: Option<Arc<CompiledProgram>>,
    pub(crate) now: Time,
    pub(crate) fuel_budget: u64,
    pub(crate) compiled_backend: bool,
}

impl Ctx {
    fn clone_for_worker(&self) -> Ctx {
        Ctx {
            program: Arc::clone(&self.program),
            signals: Arc::clone(&self.signals),
            compiled: self.compiled.clone(),
            now: self.now,
            fuel_budget: self.fuel_budget,
            compiled_backend: self.compiled_backend,
        }
    }
}

/// One worker's mailbox. `Empty` → idle; the coordinator moves a job
/// in, the worker moves its finished buffer back.
enum Mail {
    Empty,
    Job(Ctx, JobBuf),
    Done(JobBuf),
}

struct Slot {
    mail: Mutex<Mail>,
    cv: Condvar,
    quit: AtomicBool,
}

struct Worker {
    slot: Arc<Slot>,
    join: Option<JoinHandle<()>>,
}

/// A fixed pool of simulation workers, created lazily on the first
/// parallel cycle and kept for the simulator's lifetime.
pub(crate) struct Pool {
    workers: Vec<Worker>,
}

/// Locks a slot's mailbox, recovering from poisoning: a worker that
/// panicked mid-job leaves the mail in whatever state it reached, and
/// shutdown must still proceed.
fn lock_mail(slot: &Slot) -> MutexGuard<'_, Mail> {
    slot.mail.lock().unwrap_or_else(|p| p.into_inner())
}

impl Pool {
    pub(crate) fn new(jobs: usize) -> Pool {
        let mut workers = Vec::with_capacity(jobs);
        for i in 0..jobs {
            let slot = Arc::new(Slot {
                mail: Mutex::new(Mail::Empty),
                cv: Condvar::new(),
                quit: AtomicBool::new(false),
            });
            let ws = Arc::clone(&slot);
            let join = std::thread::Builder::new()
                .name(format!("sim-worker-{i}"))
                .spawn(move || worker_loop(&ws))
                .expect("spawn simulation worker");
            workers.push(Worker {
                slot,
                join: Some(join),
            });
        }
        Pool { workers }
    }

    /// Runs one process phase: dispatches every non-empty buffer to its
    /// worker, then blocks until all dispatched workers post back.
    /// Buffers are moved out and back in place, so `bufs[w]` still
    /// belongs to worker `w` afterwards.
    pub(crate) fn run(&self, ctx: &Ctx, bufs: &mut [JobBuf]) {
        debug_assert!(bufs.len() <= self.workers.len());
        debug_assert!(bufs.len() <= u64::BITS as usize);
        let mut dispatched: u64 = 0;
        for (w, buf) in bufs.iter_mut().enumerate() {
            if buf.procs.is_empty() {
                continue;
            }
            let job = std::mem::take(buf);
            let slot = &self.workers[w].slot;
            {
                let mut mail = lock_mail(slot);
                *mail = Mail::Job(ctx.clone_for_worker(), job);
            }
            slot.cv.notify_one();
            dispatched |= 1 << w;
        }
        for (w, buf) in bufs.iter_mut().enumerate() {
            if dispatched & (1 << w) == 0 {
                continue;
            }
            let slot = &self.workers[w].slot;
            let mut mail = lock_mail(slot);
            loop {
                if let Mail::Done(_) = &*mail {
                    let Mail::Done(done) = std::mem::replace(&mut *mail, Mail::Empty) else {
                        unreachable!()
                    };
                    *buf = done;
                    break;
                }
                mail = slot.cv.wait(mail).unwrap_or_else(|p| p.into_inner());
            }
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        for w in &self.workers {
            // Set the flag under the lock so a worker between its wake
            // check and its wait cannot miss the notification.
            let _mail = lock_mail(&w.slot);
            w.slot.quit.store(true, Ordering::Release);
            drop(_mail);
            w.slot.cv.notify_all();
        }
        for w in &mut self.workers {
            if let Some(j) = w.join.take() {
                let _ = j.join();
            }
        }
    }
}

fn worker_loop(slot: &Slot) {
    loop {
        let (ctx, mut buf) = {
            let mut mail = lock_mail(slot);
            loop {
                if slot.quit.load(Ordering::Acquire) {
                    return;
                }
                if let Mail::Job(..) = &*mail {
                    let Mail::Job(ctx, buf) = std::mem::replace(&mut *mail, Mail::Empty) else {
                        unreachable!()
                    };
                    break (ctx, buf);
                }
                mail = slot.cv.wait(mail).unwrap_or_else(|p| p.into_inner());
            }
        };
        run_chunk(&ctx, &mut buf);
        // Release the context's `Arc`s *before* posting the result: once
        // the coordinator sees `Done` for every worker it expects sole
        // ownership of the signal table again.
        drop(ctx);
        let mut mail = lock_mail(slot);
        *mail = Mail::Done(buf);
        drop(mail);
        slot.cv.notify_all();
    }
}
