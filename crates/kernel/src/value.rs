//! Runtime values of the simulation virtual machine.
//!
//! Scalars are uniform: enumeration values are their positions, physical
//! values their base-unit magnitudes, booleans 0/1. Arrays carry their
//! bounds so indexing, slicing, and attributes work on dynamic values.

use std::fmt;
use std::sync::Arc;

/// Simulation time in femtoseconds plus a delta-cycle counter.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default, Hash)]
pub struct Time {
    /// Femtoseconds since simulation start.
    pub fs: u64,
    /// Delta cycle within the instant.
    pub delta: u32,
}

impl Time {
    /// Time zero.
    pub const ZERO: Time = Time { fs: 0, delta: 0 };

    /// A physical instant (delta 0).
    pub fn fs(fs: u64) -> Time {
        Time { fs, delta: 0 }
    }

    /// In nanoseconds (for display).
    pub fn as_ns(&self) -> f64 {
        self.fs as f64 / 1e6
    }

    /// The next delta cycle at the same instant.
    pub fn next_delta(&self) -> Time {
        Time {
            fs: self.fs,
            delta: self.delta + 1,
        }
    }

    /// The instant `fs` femtoseconds later (delta resets).
    pub fn plus_fs(&self, fs: u64) -> Time {
        Time {
            fs: self.fs + fs,
            delta: 0,
        }
    }

    /// Parses a VHDL-style time literal: an integer or decimal magnitude
    /// followed by a unit (`fs`, `ps`, `ns`, `us`, `ms`, `sec`, `min`,
    /// `hr`), case-insensitive, with optional whitespace before the unit
    /// — `100ns`, `2.5 us`, `1SEC`. A bare number is nanoseconds (the
    /// historical `vhdlc --run` convention). Shared by `vhdlc --run` and
    /// the `vhdld` `run` request.
    ///
    /// # Errors
    ///
    /// A description of the malformed literal (empty, unknown unit,
    /// non-numeric magnitude, or femtosecond overflow).
    pub fn parse(text: &str) -> Result<Time, String> {
        let s = text.trim();
        if s.is_empty() {
            return Err("empty time literal".to_string());
        }
        let digits_end = s
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '_'))
            .unwrap_or(s.len());
        let (mag, unit) = s.split_at(digits_end);
        let mag = mag.replace('_', "");
        let unit = unit.trim();
        let fs_per: u64 = match unit.to_ascii_lowercase().as_str() {
            "fs" => 1,
            "ps" => 1_000,
            "" | "ns" => 1_000_000,
            "us" => 1_000_000_000,
            "ms" => 1_000_000_000_000,
            "s" | "sec" => 1_000_000_000_000_000,
            "min" => 60_000_000_000_000_000,
            "hr" => 3_600_000_000_000_000_000,
            u => return Err(format!("unknown time unit `{u}` in `{text}`")),
        };
        if mag.is_empty() {
            return Err(format!("missing magnitude in time literal `{text}`"));
        }
        let fs = match mag.split_once('.') {
            None => mag
                .parse::<u64>()
                .map_err(|_| format!("bad magnitude `{mag}` in `{text}`"))?
                .checked_mul(fs_per),
            Some((int, frac)) => {
                let whole = if int.is_empty() {
                    0
                } else {
                    int.parse::<u64>()
                        .map_err(|_| format!("bad magnitude `{mag}` in `{text}`"))?
                };
                if frac.contains('.') || frac.chars().any(|c| !c.is_ascii_digit()) {
                    return Err(format!("bad magnitude `{mag}` in `{text}`"));
                }
                // Fractional part, truncated to the femtosecond grid.
                // Trailing zeros carry no information; after stripping
                // them, 18 digits bound `num` below 10^18, so
                // `num * fs_per` stays well inside u128 and `f` below
                // `fs_per` — every step here is overflow-free by
                // construction rather than by unchecked luck.
                let frac = frac.trim_end_matches('0');
                if frac.len() > 18 {
                    return Err(format!(
                        "time literal `{text}` has too many fractional digits \
                         (max 18 significant)"
                    ));
                }
                let mut num: u64 = 0;
                let mut den: u64 = 1;
                for c in frac.chars() {
                    num = num * 10 + (c as u8 - b'0') as u64;
                    den *= 10;
                }
                whole.checked_mul(fs_per).and_then(|w| {
                    let f = (num as u128 * fs_per as u128 / den as u128) as u64;
                    w.checked_add(f)
                })
            }
        };
        match fs {
            Some(fs) => Ok(Time::fs(fs)),
            None => Err(format!("time literal `{text}` overflows femtoseconds")),
        }
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.delta == 0 {
            write!(f, "{}fs", self.fs)
        } else {
            write!(f, "{}fs+{}d", self.fs, self.delta)
        }
    }
}

/// Direction of array bounds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VDir {
    /// Ascending.
    To,
    /// Descending.
    Downto,
}

/// An array value with bounds.
#[derive(Clone, PartialEq, Debug)]
pub struct ArrVal {
    /// Left bound.
    pub left: i64,
    /// Direction.
    pub dir: VDir,
    /// Elements, left-to-right as written.
    pub data: Arc<Vec<Val>>,
}

impl ArrVal {
    /// Right bound.
    pub fn right(&self) -> i64 {
        let n = self.data.len() as i64;
        match self.dir {
            VDir::To => self.left + n - 1,
            VDir::Downto => self.left - n + 1,
        }
    }

    /// Offset of logical index `i`, if in range.
    pub fn offset(&self, i: i64) -> Option<usize> {
        let off = match self.dir {
            VDir::To => i - self.left,
            VDir::Downto => self.left - i,
        };
        if off >= 0 && (off as usize) < self.data.len() {
            Some(off as usize)
        } else {
            None
        }
    }
}

/// A runtime value.
#[derive(Clone, PartialEq, Debug)]
pub enum Val {
    /// Integer / enumeration position / physical magnitude / boolean.
    Int(i64),
    /// Floating point.
    Real(f64),
    /// Array with bounds.
    Arr(ArrVal),
    /// Record (fields in declaration order).
    Rec(Arc<Vec<Val>>),
}

impl Val {
    /// Builds an array value.
    pub fn arr(left: i64, dir: VDir, data: Vec<Val>) -> Val {
        Val::Arr(ArrVal {
            left,
            dir,
            data: Arc::new(data),
        })
    }

    /// Builds a `bit`-style vector from 0/1 codes, descending bounds
    /// `n-1 downto 0`.
    pub fn bits(codes: &[i64]) -> Val {
        Val::arr(
            codes.len() as i64 - 1,
            VDir::Downto,
            codes.iter().map(|&c| Val::Int(c)).collect(),
        )
    }

    /// As integer (panics otherwise — IR is typed, so a mismatch is a
    /// compiler bug).
    pub fn as_int(&self) -> i64 {
        match self {
            Val::Int(i) => *i,
            v => panic!("expected integer value, got {v:?}"),
        }
    }

    /// As real.
    pub fn as_real(&self) -> f64 {
        match self {
            Val::Real(r) => *r,
            Val::Int(i) => *i as f64,
            v => panic!("expected real value, got {v:?}"),
        }
    }

    /// As bool (nonzero = true).
    pub fn as_bool(&self) -> bool {
        self.as_int() != 0
    }

    /// As array.
    pub fn as_arr(&self) -> &ArrVal {
        match self {
            Val::Arr(a) => a,
            v => panic!("expected array value, got {v:?}"),
        }
    }

    /// Renders an array of character codes as a string (for reports).
    pub fn as_string(&self) -> String {
        match self {
            Val::Arr(a) => a
                .data
                .iter()
                .map(|v| char::from_u32((v.as_int() as u32) + 32).unwrap_or('?'))
                .collect(),
            v => format!("{v}"),
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Int(i) => write!(f, "{i}"),
            Val::Real(r) => write!(f, "{r}"),
            Val::Arr(a) => {
                write!(f, "(")?;
                for (i, v) in a.data.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Val::Rec(fields) => {
                write!(f, "[")?;
                for (i, v) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ordering_and_deltas() {
        let t0 = Time::ZERO;
        let d1 = t0.next_delta();
        let t1 = t0.plus_fs(5);
        assert!(t0 < d1);
        assert!(d1 < t1);
        assert_eq!(t1.delta, 0);
        assert_eq!(d1.delta, 1);
        assert_eq!(Time::fs(1_000_000).as_ns(), 1.0);
        assert_eq!(format!("{d1}"), "0fs+1d");
    }

    #[test]
    fn time_literal_parsing() {
        assert_eq!(Time::parse("100ns").unwrap(), Time::fs(100_000_000));
        assert_eq!(Time::parse("2us").unwrap(), Time::fs(2_000_000_000));
        assert_eq!(
            Time::parse("40").unwrap(),
            Time::fs(40_000_000),
            "bare = ns"
        );
        assert_eq!(Time::parse(" 5 PS ").unwrap(), Time::fs(5_000));
        assert_eq!(Time::parse("2.5us").unwrap(), Time::fs(2_500_000_000));
        assert_eq!(Time::parse("0.5ns").unwrap(), Time::fs(500_000));
        assert_eq!(Time::parse("1_000fs").unwrap(), Time::fs(1_000));
        assert_eq!(
            Time::parse("1sec").unwrap(),
            Time::fs(1_000_000_000_000_000)
        );
        assert_eq!(
            Time::parse("1min").unwrap().fs,
            60 * Time::parse("1s").unwrap().fs
        );
        for bad in [
            "",
            "ns",
            "x7ns",
            "7 parsecs",
            "1.2.3ns",
            "99999999hr",
            "1.xns",
        ] {
            assert!(Time::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn array_bounds() {
        let a = Val::arr(7, VDir::Downto, vec![Val::Int(1); 8]);
        let a = a.as_arr();
        assert_eq!(a.right(), 0);
        assert_eq!(a.offset(7), Some(0));
        assert_eq!(a.offset(0), Some(7));
        assert_eq!(a.offset(8), None);
        assert_eq!(a.offset(-1), None);
        let b = Val::arr(1, VDir::To, vec![Val::Int(1); 3]);
        let b = b.as_arr();
        assert_eq!(b.right(), 3);
        assert_eq!(b.offset(2), Some(1));
    }

    #[test]
    fn bits_and_strings() {
        let v = Val::bits(&[1, 0, 1]);
        let a = v.as_arr();
        assert_eq!(a.left, 2);
        assert_eq!(a.dir, VDir::Downto);
        // "hi" as printable-offset codes: 'h' = 104-32, 'i' = 105-32.
        let s = Val::arr(1, VDir::To, vec![Val::Int(72), Val::Int(73)]);
        assert_eq!(s.as_string(), "hi");
    }

    #[test]
    fn accessors() {
        assert_eq!(Val::Int(4).as_int(), 4);
        assert!(Val::Int(1).as_bool());
        assert!(!Val::Int(0).as_bool());
        assert_eq!(Val::Real(2.5).as_real(), 2.5);
        assert_eq!(Val::Int(2).as_real(), 2.0);
        assert_eq!(format!("{}", Val::bits(&[1, 0])), "(1 0)");
    }
}
