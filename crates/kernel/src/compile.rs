//! The compiled process backend: translates each process's `Insn` stream
//! into basic blocks of threaded code ahead of simulation.
//!
//! The paper compiled process bodies to C that was "combined with other
//! elements of the simulation environment"; the interpreter in [`crate::sim`]
//! replays the same stack ISA one instruction at a time instead. This
//! module recovers the compiled form inside the kernel: a one-time pass
//! splits every process (and subprogram) into basic blocks, folds runs of
//! pure value instructions into flat postfix *tapes*, and leaves the side
//! effects (variable stores, driver scheduling, assertions) as explicit
//! steps between them. Blocks end at control transfers; a `Wait` block
//! records the instruction index execution resumes at (`resume_pc`), which
//! is exactly the `Frame::pc` the interpreter would have stored — the two
//! backends can take over from each other at any suspension point.
//!
//! Tapes whose every operation stays in the integer domain additionally
//! run on a raw `i64` stack with no `Val` boxing; a type guard on every
//! local/signal leaf bails out to the generic evaluator when the runtime
//! value is not an integer, so the fast path never has to be *proven*
//! type-safe, only checked. Each tape operation corresponds to exactly one
//! source instruction and is charged one unit of fuel when evaluated, in
//! original program order, so instruction counts, fuel exhaustion, and
//! error points are identical to the interpreter's — the equivalence
//! property suite (`crate::equiv`) holds both backends to byte-identical
//! observables.
//!
//! Shapes the translator cannot prove well-formed (inconsistent stack
//! depths at a join, recursion, code that reads below its own frame's
//! stack base) make the whole process fall back to the interpreter rather
//! than risk divergence; `fallback_procs` in the statistics counts them.

use std::sync::Arc;

use crate::isa::{ArrAttrKind, FnId, Insn, Program, SigAttr, SigId, VarAddr};
use crate::rts::Op;
use crate::value::{VDir, Val};

/// One postfix tape operation. Every variant corresponds 1:1 to a pure
/// value instruction of the ISA, so evaluating a tape charges the same
/// fuel in the same order as interpreting the run it was folded from.
#[derive(Clone, Debug)]
pub(crate) enum EOp {
    /// Integer literal (`PushInt`, or `PushConst` of an integer).
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Shared constant.
    Const(Val),
    /// Local variable load (type-guarded on the integer fast path).
    Local(VarAddr),
    /// Signal effective value (type-guarded on the integer fast path).
    Sig(SigId),
    /// Signal attribute.
    Attr(SigId, SigAttr),
    /// Aggregate: pop `n`, push an array.
    MakeArr {
        /// Element count.
        n: u16,
        /// Left bound.
        left: i64,
        /// Direction.
        dir: VDir,
    },
    /// Aggregate: pop `n`, push a record.
    MakeRec {
        /// Field count.
        n: u16,
    },
    /// Pop index and array, push element.
    Index,
    /// Pop right, left, array; push slice.
    Slice(VDir),
    /// Pop record, push field.
    Field(u16),
    /// Pop array, push bound attribute.
    ArrAttr(ArrAttrKind),
    /// Binary runtime-support op.
    Binop(Op),
    /// Unary runtime-support op.
    Unop(Op),
    /// Bounds trap; value stays on the tape stack.
    RangeCheck {
        /// Low bound.
        lo: i64,
        /// High bound.
        hi: i64,
    },
}

/// A folded run of pure value instructions, evaluated on demand at its
/// consumer.
#[derive(Clone, Debug)]
pub(crate) struct Tape {
    /// Postfix operations, in original program order.
    pub(crate) ops: Vec<EOp>,
    /// Every operation has an integer-domain interpretation, so the
    /// `i64` fast path may be attempted (leaf guards still apply).
    pub(crate) int_ok: bool,
    /// The integer fast-path form, built by [`finalize_tapes`] once the
    /// tape stops growing: compact, immediate-fused, cache-friendly.
    pub(crate) int_tape: Option<IntTape>,
}

impl Tape {
    fn new(ops: Vec<EOp>, int_ok: bool) -> Tape {
        Tape {
            ops,
            int_ok,
            int_tape: None,
        }
    }
}

/// One operation of the integer fast path. Unlike [`EOp`] these are
/// small (16 bytes), carry no `Val` payloads, and fuse a pushed
/// immediate into the binop that consumes it — the shape integer
/// expression code overwhelmingly takes.
#[derive(Clone, Copy, Debug)]
pub(crate) enum IntOp {
    /// Push an immediate.
    Imm(i64),
    /// Push a local (bails to the generic path on a non-integer).
    Local(VarAddr),
    /// Push a signal's effective value (same guard).
    Sig(SigId),
    /// Push a signal attribute (guard on `'last_value`).
    Attr(SigId, SigAttr),
    /// Pop two, push the result.
    Binop(Op),
    /// Pop one, combine with the fused immediate right operand
    /// (`x op k`): a folded `[Imm k, Binop op]` pair.
    BinopImm(Op, i64),
    /// `BinopImm(Add, k)`, split out so the checked add inlines into
    /// the dispatch loop instead of going through `int_binop`.
    AddImm(i64),
    /// `BinopImm(Mul, k)`, same rationale.
    MulImm(i64),
    /// Strength-reduced `x mod 2^n` for `n >= 0`: push `x & mask` with
    /// `mask = 2^n - 1`. Exact for every `x`: VHDL `mod` by a positive
    /// divisor yields the euclidean remainder, which for a power-of-two
    /// divisor is the low bits of the two's-complement representation.
    ModMask(i64),
    /// Pop one, push the result.
    Unop(Op),
    /// Trap when the top of the stack leaves `lo..=hi`.
    RangeCheck(i64, i64),
}

/// The compact integer form of a whole tape, plus the bookkeeping that
/// keeps its fuel accounting bit-identical to the unfused evaluation.
#[derive(Clone, Debug)]
pub(crate) struct IntTape {
    /// Fused operations.
    pub(crate) ops: Vec<IntOp>,
    /// Per fused op: how many *source* operations have completed once
    /// it finishes — the exact fuel to charge when it faults. Cold;
    /// only read on the error path.
    pub(crate) ends: Vec<u32>,
    /// Source operation count (the fuel charged on success).
    pub(crate) cost: u64,
    /// Peak value-stack depth, for one up-front reserve.
    pub(crate) max_depth: usize,
}

/// Lowers an `int_ok` tape's ops into the fused integer form. Returns
/// `None` for any op outside the integer domain (defensive: `int_ok`
/// construction should already exclude them).
fn build_int_tape(ops: &[EOp]) -> Option<IntTape> {
    let mut out: Vec<IntOp> = Vec::with_capacity(ops.len());
    let mut ends: Vec<u32> = Vec::with_capacity(ops.len());
    let mut depth = 0usize;
    let mut max_depth = 0usize;
    for (i, op) in ops.iter().enumerate() {
        let end = (i + 1) as u32;
        match op {
            EOp::Int(v) => {
                out.push(IntOp::Imm(*v));
                depth += 1;
            }
            EOp::Local(a) => {
                out.push(IntOp::Local(*a));
                depth += 1;
            }
            EOp::Sig(s) => {
                out.push(IntOp::Sig(*s));
                depth += 1;
            }
            EOp::Attr(s, a) => {
                out.push(IntOp::Attr(*s, *a));
                depth += 1;
            }
            EOp::Binop(op) => {
                depth = depth.checked_sub(2)? + 1;
                if let Some(IntOp::Imm(k)) = out.last().copied() {
                    out.pop();
                    ends.pop();
                    out.push(match op {
                        Op::Mod if k > 0 && k.count_ones() == 1 => IntOp::ModMask(k - 1),
                        Op::Add => IntOp::AddImm(k),
                        Op::Mul | Op::MulRev => IntOp::MulImm(k),
                        _ => IntOp::BinopImm(*op, k),
                    });
                } else {
                    out.push(IntOp::Binop(*op));
                }
            }
            EOp::Unop(op) => {
                depth.checked_sub(1)?;
                out.push(IntOp::Unop(*op));
            }
            EOp::RangeCheck { lo, hi } => {
                depth.checked_sub(1)?;
                out.push(IntOp::RangeCheck(*lo, *hi));
            }
            _ => return None,
        }
        ends.push(end);
        max_depth = max_depth.max(depth);
    }
    out.shrink_to_fit();
    ends.shrink_to_fit();
    Some(IntTape {
        ops: out,
        ends,
        cost: ops.len() as u64,
        max_depth,
    })
}

/// Attaches the fused integer form to every `int_ok` tape in a finished
/// unit. Runs once the tapes stop growing (they are assembled
/// incrementally during abstract interpretation).
fn finalize_tapes(blocks: &mut [Block]) {
    fn fin(t: &mut Tape) {
        if t.int_ok {
            t.int_tape = build_int_tape(&t.ops);
        }
    }
    fn fin_arg(a: &mut Arg) {
        if let Arg::T(t) = a {
            fin(t);
        }
    }
    for b in blocks {
        for s in &mut b.steps {
            match s {
                Step::Push(t) | Step::Drop(t) => fin(t),
                Step::Store { val, .. } | Step::StoreField { val, .. } => fin_arg(val),
                Step::StoreIndex { idx, val, .. } => {
                    fin_arg(idx);
                    fin_arg(val);
                }
                Step::Sched { val, delay, .. } => {
                    fin_arg(val);
                    fin_arg(delay);
                }
                Step::SchedIndex {
                    idx, val, delay, ..
                } => {
                    fin_arg(idx);
                    fin_arg(val);
                    fin_arg(delay);
                }
                Step::Assert {
                    cond,
                    report,
                    severity,
                    ..
                } => {
                    fin_arg(cond);
                    fin_arg(report);
                    fin_arg(severity);
                }
                Step::PopRt | Step::Raw(_) => {}
            }
        }
        match &mut b.term {
            Term::Branch { cond, .. } => fin_arg(cond),
            Term::Wait {
                timeout: Some(a), ..
            } => fin_arg(a),
            _ => {}
        }
    }
}

/// An operand of a step or terminator: either already materialized on the
/// process value stack (`Rt`) or a deferred tape evaluated in place.
#[derive(Clone, Debug)]
pub(crate) enum Arg {
    /// Pop the process value stack.
    Rt,
    /// Evaluate this tape.
    T(Tape),
}

/// One side-effecting (or stack-shuffling) step inside a block.
#[derive(Clone, Debug)]
pub(crate) enum Step {
    /// Materialize a tape onto the process value stack (its value is
    /// consumed across a block boundary or by a stack-order-sensitive
    /// instruction).
    Push(Tape),
    /// `Pop` of a materialized value.
    PopRt,
    /// `Pop` of a deferred tape: evaluate (for its faults and fuel) and
    /// discard.
    Drop(Tape),
    /// Execute one instruction interpreter-style on the process value
    /// stack (operands were materialized).
    Raw(Insn),
    /// `StoreVar`.
    Store {
        /// Target.
        addr: VarAddr,
        /// Value (top of stack).
        val: Arg,
    },
    /// `StoreVarIndex`: pops value, then index.
    StoreIndex {
        /// Target.
        addr: VarAddr,
        /// Element index.
        idx: Arg,
        /// Value.
        val: Arg,
    },
    /// `StoreVarField`: pops value.
    StoreField {
        /// Target.
        addr: VarAddr,
        /// Field number.
        field: u16,
        /// Value.
        val: Arg,
    },
    /// `Sched`: pops delay, then value.
    Sched {
        /// Target signal.
        sig: SigId,
        /// Transport vs inertial.
        transport: bool,
        /// Scheduled value.
        val: Arg,
        /// Delay in fs (−1 = delta).
        delay: Arg,
    },
    /// `SchedIndex`: pops delay, value, index.
    SchedIndex {
        /// Target signal.
        sig: SigId,
        /// Transport vs inertial.
        transport: bool,
        /// Element index.
        idx: Arg,
        /// Scheduled value.
        val: Arg,
        /// Delay in fs.
        delay: Arg,
    },
    /// `Assert`: pops severity, report, condition; may end the activation.
    Assert {
        /// Condition (false = report).
        cond: Arg,
        /// Message value.
        report: Arg,
        /// Severity (3 = failure).
        severity: Arg,
        /// `Frame::pc` to record when a failure halts the process.
        pc_after: u32,
    },
}

/// How a block ends.
#[derive(Clone, Debug)]
pub(crate) enum Term {
    /// Explicit `Jump` (charges one instruction).
    Jump(u32),
    /// Fallthrough into the next block (free: no source instruction).
    Fall(u32),
    /// `JumpIfFalse`.
    Branch {
        /// Condition operand.
        cond: Arg,
        /// Block when the condition is false.
        on_false: u32,
        /// Block when the condition is true (fallthrough).
        next: u32,
    },
    /// `Wait`: suspend; execution resumes at `resume_pc` / `resume_block`.
    Wait {
        /// Sensitivity set.
        sens: Arc<Vec<SigId>>,
        /// Timeout operand, when present.
        timeout: Option<Arg>,
        /// Instruction index stored into `Frame::pc` at suspension — the
        /// interpreter-compatible resume point (always a leader; the
        /// engine re-enters through `Unit::leader`).
        resume_pc: u32,
    },
    /// `Call`: push a frame, continue in the callee's unit.
    Call {
        /// Callee.
        f: FnId,
        /// Caller `Frame::pc` after the call (a block leader).
        ret_pc: u32,
    },
    /// `Ret`: pop a frame (halt when it is the process frame).
    Ret {
        /// `Frame::pc` recorded on a process-level return.
        end_pc: u32,
    },
    /// `Halt`.
    Halt {
        /// `Frame::pc` recorded at the halt.
        end_pc: u32,
    },
    /// Ran past the end of the code: return from a subprogram, halt a
    /// process. Charges nothing (the interpreter's fetch fails before the
    /// fuel is touched).
    FallOff {
        /// `Frame::pc` recorded on a process-level fall-off.
        end_pc: u32,
    },
    /// Unreachable block (jump-target bookkeeping only).
    Dead,
}

/// A basic block: zero or more steps, then a terminator.
#[derive(Debug)]
pub(crate) struct Block {
    /// Steps, in order.
    pub(crate) steps: Vec<Step>,
    /// Exit.
    pub(crate) term: Term,
}

/// One compiled code unit (a process body or a subprogram body).
#[derive(Debug)]
pub(crate) struct Unit {
    /// Blocks, in leader order.
    pub(crate) blocks: Vec<Block>,
    /// Instruction index → block index for every leader; `u32::MAX`
    /// elsewhere. Length `code.len() + 1` (the end is a leader).
    pub(crate) leader: Vec<u32>,
    /// Every subprogram this unit calls (for transitive fallback).
    pub(crate) calls: Vec<FnId>,
    /// For subprograms: net value-stack effect of a call, when every exit
    /// agrees (callers need it to keep tracking stack depths).
    pub(crate) net: Option<isize>,
}

/// The whole program, compiled. Unit `i` for `i < n_procs` is process
/// `i`; unit `n_procs + f` is subprogram `f`.
#[derive(Debug)]
pub(crate) struct CompiledProgram {
    /// Compiled units; `None` marks an interpreter-fallback unit.
    pub(crate) units: Vec<Option<Unit>>,
    /// Process count (units below this index are processes).
    pub(crate) n_procs: usize,
    /// Per process: may it run compiled (its unit and every transitively
    /// called unit compiled successfully)?
    pub(crate) proc_ok: Vec<bool>,
    /// Total basic blocks across all compiled units.
    pub(crate) total_blocks: u64,
    /// Processes forced onto the interpreter.
    pub(crate) n_fallback: u64,
}

impl CompiledProgram {
    /// Unit index for a subprogram.
    pub(crate) fn fn_unit(&self, f: FnId) -> usize {
        self.n_procs + f.0 as usize
    }
}

/// Compiles every process and subprogram of `prog`. Infallible: shapes
/// the translator cannot handle become per-process interpreter fallbacks.
pub(crate) fn compile(prog: &Program) -> CompiledProgram {
    let n_procs = prog.processes.len();
    let mut c = Compiler {
        prog,
        fn_done: vec![FnState::NotStarted; prog.functions.len()],
        fn_units: Vec::new(),
    };
    c.fn_units = (0..prog.functions.len()).map(|_| None).collect();
    // Subprograms first (callers need their net stack effect), then
    // processes.
    for f in 0..prog.functions.len() {
        c.fn_net(FnId(f as u32));
    }
    let mut units: Vec<Option<Unit>> = Vec::with_capacity(n_procs + prog.functions.len());
    for p in &prog.processes {
        units.push(c.build_unit(&p.code, false).ok());
    }
    for fu in std::mem::take(&mut c.fn_units) {
        units.push(fu);
    }
    // A process runs compiled only when its unit and every transitively
    // reachable callee unit compiled.
    let mut proc_ok = vec![false; n_procs];
    for (pi, ok) in proc_ok.iter_mut().enumerate() {
        *ok = closure_ok(&units, n_procs, pi);
    }
    let total_blocks = units
        .iter()
        .flatten()
        .map(|u| u.blocks.len() as u64)
        .sum::<u64>();
    let n_fallback = proc_ok.iter().filter(|ok| !**ok).count() as u64;
    CompiledProgram {
        units,
        n_procs,
        proc_ok,
        total_blocks,
        n_fallback,
    }
}

/// Is every unit reachable from process `pi` through `Call` compiled?
fn closure_ok(units: &[Option<Unit>], n_procs: usize, pi: usize) -> bool {
    let mut seen = vec![pi];
    let mut work = vec![pi];
    while let Some(u) = work.pop() {
        let Some(unit) = units.get(u).and_then(|u| u.as_ref()) else {
            return false;
        };
        for f in &unit.calls {
            let fu = n_procs + f.0 as usize;
            if !seen.contains(&fu) {
                seen.push(fu);
                work.push(fu);
            }
        }
    }
    true
}

#[derive(Clone, Copy, PartialEq)]
enum FnState {
    NotStarted,
    InProgress,
    Done(Option<isize>),
}

struct Compiler<'p> {
    prog: &'p Program,
    fn_done: Vec<FnState>,
    fn_units: Vec<Option<Unit>>,
}

impl Compiler<'_> {
    /// Net value-stack effect of calling subprogram `f`, compiling its
    /// unit on first use. `None` (unknown: recursion, fallback, or
    /// disagreeing exits) makes the *caller* fall back.
    fn fn_net(&mut self, f: FnId) -> Option<isize> {
        let i = f.0 as usize;
        match self.fn_done[i] {
            FnState::Done(net) => net,
            FnState::InProgress => None, // recursion: depth unknowable
            FnState::NotStarted => {
                self.fn_done[i] = FnState::InProgress;
                let code = Arc::clone(&self.prog.functions[i].code);
                let built = self.build_unit(&code, true).ok();
                let net = built.as_ref().and_then(|u| u.net);
                self.fn_units[i] = built;
                self.fn_done[i] = FnState::Done(net);
                net
            }
        }
    }

    /// Translates one code body into blocks, or reports why it cannot be.
    fn build_unit(&mut self, code: &[Insn], is_fn: bool) -> Result<Unit, String> {
        let len = code.len();
        // Leaders: entry, the end, every jump target, and the instruction
        // after every control transfer.
        let mut is_leader = vec![false; len + 1];
        is_leader[0] = true;
        is_leader[len] = true;
        for (pc, insn) in code.iter().enumerate() {
            match insn {
                Insn::Jump(t) | Insn::JumpIfFalse(t) => {
                    is_leader[(*t as usize).min(len)] = true;
                    is_leader[pc + 1] = true;
                }
                Insn::Wait { .. } | Insn::Call(_) | Insn::Ret { .. } | Insn::Halt => {
                    is_leader[pc + 1] = true;
                }
                _ => {}
            }
        }
        let mut leader = vec![u32::MAX; len + 1];
        let mut starts: Vec<usize> = Vec::new();
        for (pc, l) in is_leader.iter().enumerate() {
            if *l {
                leader[pc] = starts.len() as u32;
                starts.push(pc);
            }
        }
        let n_blocks = starts.len();
        let block_of = |pc: usize| leader[pc.min(len)];
        // Depth-tracking worklist from the entry block; each block is
        // translated on first reach, when its entry depth is known.
        let mut entry: Vec<Option<usize>> = vec![None; n_blocks];
        let mut blocks: Vec<Option<Block>> = (0..n_blocks).map(|_| None).collect();
        let mut calls: Vec<FnId> = Vec::new();
        let mut exits: Vec<isize> = Vec::new(); // fn net candidates
        let mut work: Vec<u32> = Vec::new();
        entry[block_of(0) as usize] = Some(0);
        work.push(block_of(0));
        while let Some(bi) = work.pop() {
            if blocks[bi as usize].is_some() {
                continue;
            }
            let start = starts[bi as usize];
            let end = starts.get(bi as usize + 1).copied().unwrap_or(len).min(len);
            let depth = entry[bi as usize].expect("reached block has a depth");
            let (block, succs, exit) =
                self.sim_block(code, start, end, depth, &block_of, &mut calls)?;
            for (succ, d) in succs {
                let s = succ as usize;
                match entry[s] {
                    Some(prev) if prev != d => {
                        return Err(format!(
                            "join at block {s} with disagreeing stack depths {prev} vs {d}"
                        ));
                    }
                    Some(_) => {}
                    None => {
                        entry[s] = Some(d);
                        work.push(succ);
                    }
                }
            }
            if let Some(e) = exit {
                exits.push(e);
            }
            blocks[bi as usize] = Some(block);
        }
        let mut blocks: Vec<Block> = blocks
            .into_iter()
            .map(|b| {
                b.unwrap_or(Block {
                    steps: Vec::new(),
                    term: Term::Dead,
                })
            })
            .collect();
        finalize_tapes(&mut blocks);
        calls.sort_unstable_by_key(|f| f.0);
        calls.dedup();
        let net = if is_fn && exits.windows(2).all(|w| w[0] == w[1]) {
            exits.first().copied()
        } else {
            None
        };
        Ok(Unit {
            blocks,
            leader,
            calls,
            net,
        })
    }

    /// Translates the instruction range `[start, end)` given its entry
    /// stack depth. Returns the block, its successors with their entry
    /// depths, and — when the block exits the unit — the exit depth.
    #[allow(clippy::too_many_lines)]
    fn sim_block(
        &mut self,
        code: &[Insn],
        start: usize,
        end: usize,
        entry_depth: usize,
        block_of: &dyn Fn(usize) -> u32,
        calls: &mut Vec<FnId>,
    ) -> Result<(Block, Vec<(u32, usize)>, Option<isize>), String> {
        enum E {
            Rt,
            T(Tape),
        }
        let mut abs: Vec<E> = (0..entry_depth).map(|_| E::Rt).collect();
        let mut steps: Vec<Step> = Vec::new();
        // Materialize every deferred tape except the top `keep` entries
        // (pending values that cross a side effect or a block boundary
        // must exist on the real stack, in program order).
        fn materialize(abs: &mut [E], steps: &mut Vec<Step>, keep: usize) {
            let upto = abs.len().saturating_sub(keep);
            for e in abs.iter_mut().take(upto) {
                if let E::T(tape) = std::mem::replace(e, E::Rt) {
                    steps.push(Step::Push(tape));
                }
            }
        }
        // Pop one operand as a step/terminator argument.
        fn pop_arg(abs: &mut Vec<E>) -> Result<Arg, String> {
            match abs.pop() {
                Some(E::Rt) => Ok(Arg::Rt),
                Some(E::T(t)) => Ok(Arg::T(t)),
                None => Err("value-stack underflow during translation".into()),
            }
        }
        // Fold the top `n` operands and `op` into one tape; when any
        // operand is already materialized, fall back to a Raw step so the
        // real stack keeps interpreter order.
        fn combine(
            abs: &mut Vec<E>,
            steps: &mut Vec<Step>,
            n: usize,
            op: EOp,
            int_op: bool,
            insn: &Insn,
        ) -> Result<(), String> {
            if abs.len() < n {
                return Err("value-stack underflow during translation".into());
            }
            let all_tapes = abs[abs.len() - n..].iter().all(|e| matches!(e, E::T(_)));
            if all_tapes {
                let mut ops = Vec::new();
                let mut int_ok = int_op;
                for e in abs.drain(abs.len() - n..) {
                    let E::T(t) = e else { unreachable!() };
                    int_ok &= t.int_ok;
                    ops.extend(t.ops);
                }
                ops.push(op);
                abs.push(E::T(Tape::new(ops, int_ok)));
            } else {
                materialize(abs, steps, 0);
                steps.push(Step::Raw(insn.clone()));
                abs.truncate(abs.len() - n);
                abs.push(E::Rt);
            }
            Ok(())
        }
        fn leaf(abs: &mut Vec<E>, op: EOp, int_ok: bool) {
            abs.push(E::T(Tape::new(vec![op], int_ok)));
        }
        let int_binop = |op: Op| {
            use Op::*;
            matches!(
                op,
                Add | Sub
                    | Mul
                    | MulRev
                    | Div
                    | DivPhys
                    | Mod
                    | Rem
                    | Pow
                    | Eq
                    | Ne
                    | Lt
                    | Le
                    | Gt
                    | Ge
                    | And
                    | Or
                    | Nand
                    | Nor
                    | Xor
            )
        };
        let int_unop = |op: Op| {
            use Op::*;
            matches!(op, Neg | Pos | Abs | Not | ToInt)
        };
        let mut pc = start;
        while pc < end {
            let insn = &code[pc];
            let next_pc = pc + 1;
            match insn {
                // Pure value producers: defer onto a tape.
                Insn::PushInt(v) => leaf(&mut abs, EOp::Int(*v), true),
                Insn::PushReal(v) => leaf(&mut abs, EOp::Real(*v), false),
                Insn::PushConst(v) => match v {
                    Val::Int(i) => leaf(&mut abs, EOp::Int(*i), true),
                    _ => leaf(&mut abs, EOp::Const(v.clone()), false),
                },
                Insn::LoadVar(a) => leaf(&mut abs, EOp::Local(*a), true),
                Insn::LoadSig(s) => leaf(&mut abs, EOp::Sig(*s), true),
                Insn::LoadSigAttr(s, attr) => leaf(&mut abs, EOp::Attr(*s, *attr), true),
                // Pure combiners.
                Insn::MakeArr { n, left, dir } => combine(
                    &mut abs,
                    &mut steps,
                    *n as usize,
                    EOp::MakeArr {
                        n: *n,
                        left: *left,
                        dir: *dir,
                    },
                    false,
                    insn,
                )?,
                Insn::MakeRec { n } => combine(
                    &mut abs,
                    &mut steps,
                    *n as usize,
                    EOp::MakeRec { n: *n },
                    false,
                    insn,
                )?,
                Insn::Index => combine(&mut abs, &mut steps, 2, EOp::Index, false, insn)?,
                Insn::Slice(dir) => {
                    combine(&mut abs, &mut steps, 3, EOp::Slice(*dir), false, insn)?
                }
                Insn::Field(i) => combine(&mut abs, &mut steps, 1, EOp::Field(*i), false, insn)?,
                Insn::ArrAttr(k) => {
                    combine(&mut abs, &mut steps, 1, EOp::ArrAttr(*k), false, insn)?
                }
                Insn::Binop(op) => {
                    combine(
                        &mut abs,
                        &mut steps,
                        2,
                        EOp::Binop(*op),
                        int_binop(*op),
                        insn,
                    )?;
                }
                Insn::Unop(op) => {
                    combine(&mut abs, &mut steps, 1, EOp::Unop(*op), int_unop(*op), insn)?;
                }
                Insn::RangeCheck { lo, hi } => match abs.last_mut() {
                    Some(E::T(t)) => {
                        t.ops.push(EOp::RangeCheck { lo: *lo, hi: *hi });
                    }
                    Some(E::Rt) => steps.push(Step::Raw(insn.clone())),
                    None => return Err("value-stack underflow during translation".into()),
                },
                Insn::Dup => {
                    if abs.is_empty() {
                        return Err("value-stack underflow during translation".into());
                    }
                    materialize(&mut abs, &mut steps, 0);
                    steps.push(Step::Raw(Insn::Dup));
                    abs.push(E::Rt);
                }
                Insn::Pop => match pop_arg(&mut abs)? {
                    Arg::Rt => steps.push(Step::PopRt),
                    Arg::T(t) => {
                        materialize(&mut abs, &mut steps, 0);
                        steps.push(Step::Drop(t));
                    }
                },
                // Side effects: pop args, materialize the rest, emit a step.
                Insn::StoreVar(a) => {
                    let val = pop_arg(&mut abs)?;
                    materialize(&mut abs, &mut steps, 0);
                    steps.push(Step::Store { addr: *a, val });
                }
                Insn::StoreVarIndex(a) => {
                    let val = pop_arg(&mut abs)?;
                    let idx = pop_arg(&mut abs)?;
                    materialize(&mut abs, &mut steps, 0);
                    steps.push(Step::StoreIndex { addr: *a, idx, val });
                }
                Insn::StoreVarField(a, field) => {
                    let val = pop_arg(&mut abs)?;
                    materialize(&mut abs, &mut steps, 0);
                    steps.push(Step::StoreField {
                        addr: *a,
                        field: *field,
                        val,
                    });
                }
                Insn::Sched { sig, transport } => {
                    let delay = pop_arg(&mut abs)?;
                    let val = pop_arg(&mut abs)?;
                    materialize(&mut abs, &mut steps, 0);
                    steps.push(Step::Sched {
                        sig: *sig,
                        transport: *transport,
                        val,
                        delay,
                    });
                }
                Insn::SchedIndex { sig, transport } => {
                    let delay = pop_arg(&mut abs)?;
                    let val = pop_arg(&mut abs)?;
                    let idx = pop_arg(&mut abs)?;
                    materialize(&mut abs, &mut steps, 0);
                    steps.push(Step::SchedIndex {
                        sig: *sig,
                        transport: *transport,
                        idx,
                        val,
                        delay,
                    });
                }
                Insn::Assert => {
                    let severity = pop_arg(&mut abs)?;
                    let report = pop_arg(&mut abs)?;
                    let cond = pop_arg(&mut abs)?;
                    materialize(&mut abs, &mut steps, 0);
                    steps.push(Step::Assert {
                        cond,
                        report,
                        severity,
                        pc_after: next_pc as u32,
                    });
                }
                // Terminators.
                Insn::Jump(t) => {
                    materialize(&mut abs, &mut steps, 0);
                    let to = block_of(*t as usize);
                    return Ok((
                        Block {
                            steps,
                            term: Term::Jump(to),
                        },
                        vec![(to, abs.len())],
                        None,
                    ));
                }
                Insn::JumpIfFalse(t) => {
                    let cond = pop_arg(&mut abs)?;
                    materialize(&mut abs, &mut steps, 0);
                    let on_false = block_of(*t as usize);
                    let next = block_of(next_pc);
                    return Ok((
                        Block {
                            steps,
                            term: Term::Branch {
                                cond,
                                on_false,
                                next,
                            },
                        },
                        vec![(on_false, abs.len()), (next, abs.len())],
                        None,
                    ));
                }
                Insn::Wait { sens, with_timeout } => {
                    let timeout = if *with_timeout {
                        Some(pop_arg(&mut abs)?)
                    } else {
                        None
                    };
                    materialize(&mut abs, &mut steps, 0);
                    let resume_block = block_of(next_pc);
                    // The scheduler pushes the timed-out flag at resumption.
                    let succs = vec![(resume_block, abs.len() + 1)];
                    return Ok((
                        Block {
                            steps,
                            term: Term::Wait {
                                sens: Arc::clone(sens),
                                timeout,
                                resume_pc: next_pc as u32,
                            },
                        },
                        succs,
                        None,
                    ));
                }
                Insn::Call(f) => {
                    // Arguments travel on the real stack; the callee's net
                    // effect keeps the depth tracking going.
                    materialize(&mut abs, &mut steps, 0);
                    calls.push(*f);
                    let n_params = self.prog.functions[f.0 as usize].n_params as usize;
                    if abs.len() < n_params {
                        return Err("value-stack underflow during translation".into());
                    }
                    let net = self.fn_net(*f).ok_or_else(|| {
                        format!(
                            "callee {} has unknown stack effect",
                            self.prog.functions[f.0 as usize].name
                        )
                    })?;
                    let after = abs.len() as isize - n_params as isize + net;
                    let after = usize::try_from(after)
                        .map_err(|_| "value-stack underflow during translation".to_string())?;
                    let ret = block_of(next_pc);
                    return Ok((
                        Block {
                            steps,
                            term: Term::Call {
                                f: *f,
                                ret_pc: next_pc as u32,
                            },
                        },
                        vec![(ret, after)],
                        None,
                    ));
                }
                Insn::Ret { has_value: _ } => {
                    materialize(&mut abs, &mut steps, 0);
                    // Exit depth is absolute: unit-level tracking starts
                    // at 0, so this IS the call's net stack effect.
                    return Ok((
                        Block {
                            steps,
                            term: Term::Ret {
                                end_pc: next_pc as u32,
                            },
                        },
                        Vec::new(),
                        Some(abs.len() as isize),
                    ));
                }
                Insn::Halt => {
                    materialize(&mut abs, &mut steps, 0);
                    return Ok((
                        Block {
                            steps,
                            term: Term::Halt {
                                end_pc: next_pc as u32,
                            },
                        },
                        Vec::new(),
                        None,
                    ));
                }
            }
            pc = next_pc;
        }
        // No terminator in the range: fall through to the next leader, or
        // off the end of the code.
        materialize(&mut abs, &mut steps, 0);
        if pc >= code.len() {
            // The end pseudo-block (or a block ending exactly at the
            // code's end): running past the last instruction returns from
            // a subprogram / halts a process.
            return Ok((
                Block {
                    steps,
                    term: Term::FallOff { end_pc: pc as u32 },
                },
                Vec::new(),
                Some(abs.len() as isize),
            ));
        }
        let to = block_of(pc);
        Ok((
            Block {
                steps,
                term: Term::Fall(to),
            },
            vec![(to, abs.len())],
            None,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Insn;

    fn slot(n: u16) -> VarAddr {
        VarAddr { depth: 0, slot: n }
    }

    /// The canonical oscillator shape compiles into blocks with a folded
    /// tape feeding the scheduler step and an explicit wait terminator.
    #[test]
    fn oscillator_shape_compiles() {
        let mut p = Program::default();
        let clk = p.add_signal("clk", Val::Int(0));
        p.add_process(
            "osc",
            1,
            vec![
                Insn::LoadSig(clk),
                Insn::Unop(Op::Not),
                Insn::PushInt(1_000),
                Insn::Sched {
                    sig: clk,
                    transport: false,
                },
                Insn::Wait {
                    sens: Arc::new(vec![clk]),
                    with_timeout: false,
                },
                Insn::Pop,
                Insn::Jump(0),
            ],
        );
        let cp = compile(&p);
        assert_eq!(cp.n_procs, 1);
        assert!(cp.proc_ok[0], "oscillator must compile");
        assert_eq!(cp.n_fallback, 0);
        let unit = cp.units[0].as_ref().unwrap();
        // Entry block: one Sched step (value + delay as tapes), Wait term.
        let b0 = &unit.blocks[unit.leader[0] as usize];
        assert!(matches!(b0.term, Term::Wait { resume_pc: 5, .. }));
        assert!(
            matches!(
                &b0.steps[..],
                [Step::Sched {
                    val: Arg::T(_),
                    delay: Arg::T(_),
                    ..
                }]
            ),
            "sched consumes deferred tapes: {:?}",
            b0.steps
        );
        // Resume block: pop the timed-out flag, jump back to the entry.
        let b1 = &unit.blocks[unit.leader[5] as usize];
        assert!(matches!(&b1.steps[..], [Step::PopRt]));
        assert!(matches!(b1.term, Term::Jump(t) if t == unit.leader[0]));
    }

    /// Integer-only expressions fold into `int_ok` tapes; array ops do
    /// not.
    #[test]
    fn int_tapes_are_marked() {
        let mut p = Program::default();
        p.add_process(
            "arith",
            1,
            vec![
                Insn::LoadVar(slot(0)),
                Insn::PushInt(3),
                Insn::Binop(Op::Add),
                Insn::StoreVar(slot(0)),
                Insn::Halt,
            ],
        );
        let cp = compile(&p);
        let unit = cp.units[0].as_ref().unwrap();
        let b0 = &unit.blocks[0];
        let Step::Store {
            val: Arg::T(tape), ..
        } = &b0.steps[0]
        else {
            panic!("expected a store of a tape: {:?}", b0.steps);
        };
        assert!(tape.int_ok);
        assert_eq!(tape.ops.len(), 3, "one tape op per instruction");
    }

    /// A stack depth disagreement at a join falls back instead of
    /// compiling wrong code.
    #[test]
    fn inconsistent_join_falls_back() {
        let mut p = Program::default();
        p.add_process(
            "bad",
            1,
            vec![
                // if (v) goto 4; push an extra value; 4: halt — the halt
                // block is reached with depths 0 and 1.
                Insn::LoadVar(slot(0)),
                Insn::JumpIfFalse(4),
                Insn::PushInt(7),
                Insn::Jump(4),
                Insn::Halt,
            ],
        );
        let cp = compile(&p);
        assert!(!cp.proc_ok[0]);
        assert_eq!(cp.n_fallback, 1);
    }

    /// Recursive subprograms poison every calling process, but only those.
    #[test]
    fn recursion_falls_back_transitively() {
        let mut p = Program::default();
        let f = p.add_function(crate::isa::FnDecl {
            name: "rec".into(),
            n_params: 1,
            n_locals: 1,
            code: Arc::new(vec![
                Insn::LoadVar(slot(0)),
                Insn::Call(FnId(0)),
                Insn::Ret { has_value: true },
            ]),
            level: 1,
        });
        p.add_process(
            "caller",
            1,
            vec![Insn::PushInt(1), Insn::Call(f), Insn::Pop, Insn::Halt],
        );
        p.add_process("clean", 1, vec![Insn::Halt]);
        let cp = compile(&p);
        assert!(!cp.proc_ok[0], "recursion cannot be depth-tracked");
        assert!(cp.proc_ok[1], "unrelated process still compiles");
        assert_eq!(cp.n_fallback, 1);
    }

    /// Values produced before a branch and consumed after it are
    /// materialized onto the real stack and combined via Raw steps.
    #[test]
    fn cross_block_values_materialize() {
        let mut p = Program::default();
        p.add_process(
            "crossing",
            1,
            vec![
                Insn::PushInt(5), // value crossing the branch
                Insn::LoadVar(slot(0)),
                Insn::JumpIfFalse(4),
                Insn::Jump(4),
                Insn::PushInt(2),     // 4:
                Insn::Binop(Op::Add), // consumes the crossing value (Rt)
                Insn::StoreVar(slot(0)),
                Insn::Halt,
            ],
        );
        let cp = compile(&p);
        assert!(cp.proc_ok[0]);
        let unit = cp.units[0].as_ref().unwrap();
        let b0 = &unit.blocks[0];
        assert!(
            matches!(&b0.steps[..], [Step::Push(_)]),
            "crossing value pushed for real: {:?}",
            b0.steps
        );
        let bj = &unit.blocks[unit.leader[4] as usize];
        assert!(
            bj.steps
                .iter()
                .any(|s| matches!(s, Step::Raw(Insn::Binop(_)))),
            "mixed Rt/tape operands combine via Raw: {:?}",
            bj.steps
        );
    }
}
