//! Scheduler- and backend-equivalence property suite.
//!
//! The event-driven scheduler (calendar + sensitivity index + worklists)
//! must be observably indistinguishable from the seed kernel's full-scan
//! scheduler, which survives as the `ref_*` methods on [`Simulator`].
//! Randomly generated programs — mixed waits (sensitivity subsets,
//! timeouts including the zero-delay backward-time case), preempting
//! drivers (inertial and transport), resolved multi-driver signals,
//! nested resolution calls, data-dependent branches, failing division,
//! assertion reports — run through both steppers, optionally with
//! the event-driven run split into incremental slices, and every
//! observable must match byte for byte: VCD output, statistics,
//! per-object Name-Server counters, final values, reports, and the run
//! outcome.
//!
//! The same randomized designs are also the oracle for the compiled
//! process backend ([`crate::compile`]): every case additionally runs
//! under [`Backend::Compiled`] and must reproduce the interpreter's
//! snapshot byte for byte — including instruction counts, error
//! messages, and the fuel-exhaustion boundary.

use std::cell::RefCell;
use std::sync::Arc;

use ag_harness::{check_eq, forall, Config, Source};

use crate::io::Vcd;
use crate::isa::{ArrAttrKind, FnDecl, Insn, Program, SigId, VarAddr};
use crate::rts::Op;
use crate::sim::{Backend, RunOutcome, SimError, Simulator};
use crate::value::{Time, Val};

fn slot(n: u16) -> VarAddr {
    VarAddr { depth: 0, slot: n }
}

/// `sum(drivers) mod 4` — a resolution function with a loop and an array
/// parameter, so resolved signals exercise the reused-scratch call path.
fn sum_mod4() -> FnDecl {
    let code = vec![
        Insn::PushInt(0),
        Insn::StoreVar(slot(1)), // i = 0
        Insn::PushInt(0),
        Insn::StoreVar(slot(2)), // acc = 0
        Insn::LoadVar(slot(1)),  // 4: loop head
        Insn::LoadVar(slot(0)),
        Insn::ArrAttr(ArrAttrKind::Length),
        Insn::Binop(Op::Lt),
        Insn::JumpIfFalse(20),
        Insn::LoadVar(slot(2)),
        Insn::LoadVar(slot(0)),
        Insn::LoadVar(slot(1)),
        Insn::Index,
        Insn::Binop(Op::Add),
        Insn::StoreVar(slot(2)), // acc += arg[i]
        Insn::LoadVar(slot(1)),
        Insn::PushInt(1),
        Insn::Binop(Op::Add),
        Insn::StoreVar(slot(1)), // i += 1
        Insn::Jump(4),
        Insn::LoadVar(slot(2)), // 20: exit
        Insn::PushInt(4),
        Insn::Binop(Op::Mod),
        Insn::Ret { has_value: true },
    ];
    FnDecl {
        name: "sum_mod4".into(),
        n_params: 1,
        n_locals: 3,
        code: Arc::new(code),
        level: 1,
    }
}

/// Draws a random program: 1–3 processes, each with its own plain
/// signals, plus 0–2 resolved bus signals every process may drive.
/// Processes loop forever: bump a counter, schedule 1–3 transactions
/// (delta or timed, inertial or transport, counter-derived or constant
/// values), then wait on a random sensitivity subset with an optional
/// timeout.
pub(crate) fn gen_program(s: &mut Source) -> Program {
    let mut prog = Program::default();
    let n_procs = s.usize_in(1, 3);
    let mut own: Vec<Vec<SigId>> = Vec::new();
    for pi in 0..n_procs {
        let k = s.usize_in(1, 2);
        own.push(
            (0..k)
                .map(|j| prog.add_signal(format!("top.p{pi}.s{j}"), Val::Int(0)))
                .collect(),
        );
    }
    let n_res = s.usize_in(0, 2);
    let mut res: Vec<SigId> = Vec::new();
    if n_res > 0 {
        let f = prog.add_function(sum_mod4());
        for r in 0..n_res {
            let sid = prog.add_signal(format!("top.bus{r}"), Val::Int(0));
            prog.signals[sid.0 as usize].resolution = Some(f);
            res.push(sid);
        }
    }
    let all: Vec<SigId> = own.iter().flatten().chain(res.iter()).copied().collect();
    for pi in 0..n_procs {
        let mut code = vec![
            Insn::LoadVar(slot(0)),
            Insn::PushInt(1),
            Insn::Binop(Op::Add),
            Insn::StoreVar(slot(0)),
        ];
        let targets: Vec<SigId> = own[pi].iter().chain(res.iter()).copied().collect();
        for _ in 0..s.usize_in(1, 3) {
            let sig = *s.pick(&targets);
            if s.bool() {
                // Counter-derived value: changes over time, so events and
                // no-change active cycles both occur.
                let m = *s.pick(&[2i64, 3, 4]);
                code.push(Insn::LoadVar(slot(0)));
                code.push(Insn::PushInt(m));
                code.push(Insn::Binop(Op::Mod));
            } else {
                code.push(Insn::PushInt(s.i64_in(0, 3)));
            }
            // −1 is the "no delay" marker (delta), 0 is an explicit zero
            // delay (also delta); positive delays go through the far heap.
            code.push(Insn::PushInt(*s.pick(&[-1i64, 0, 1, 2, 3, 5, 10])));
            code.push(Insn::Sched {
                sig,
                transport: s.bool(),
            });
        }
        // Optional data-dependent branch: an extra assignment taken only
        // on odd counters (basic-block boundaries with a consistent join
        // for the compiled backend).
        if s.bool() {
            code.push(Insn::LoadVar(slot(0)));
            code.push(Insn::PushInt(2));
            code.push(Insn::Binop(Op::Mod));
            let jif_at = code.len();
            code.push(Insn::JumpIfFalse(0)); // patched below
            let sig = *s.pick(&targets);
            code.push(Insn::LoadVar(slot(0)));
            code.push(Insn::PushInt(5));
            code.push(Insn::Binop(Op::Mod));
            code.push(Insn::PushInt(*s.pick(&[-1i64, 1, 4])));
            code.push(Insn::Sched {
                sig,
                transport: s.bool(),
            });
            code[jif_at] = Insn::JumpIfFalse(code.len() as u32);
        }
        // Occasional failing arithmetic: dividing by `counter mod k`
        // eventually divides by zero, so both steppers and both backends
        // must fail at the same instruction with the same message.
        if s.usize_in(0, 3) == 0 {
            let k = *s.pick(&[3i64, 5, 7]);
            code.push(Insn::PushInt(97));
            code.push(Insn::LoadVar(slot(0)));
            code.push(Insn::PushInt(k));
            code.push(Insn::Binop(Op::Mod));
            code.push(Insn::Binop(Op::Div));
            code.push(Insn::StoreVar(slot(1)));
        }
        // Optional periodic report (assert severity warning): exercises
        // the report stream and the compiled Assert step.
        if s.bool() {
            code.push(Insn::LoadVar(slot(0)));
            code.push(Insn::PushInt(3));
            code.push(Insn::Binop(Op::Mod));
            code.push(Insn::PushInt(7));
            code.push(Insn::PushInt(1));
            code.push(Insn::Assert);
        }
        let mut sens: Vec<SigId> = s.vec(0, 3, |s| *s.pick(&all));
        sens.sort_unstable();
        sens.dedup();
        // A zero-fs timeout at delta > 0 yields a wake time *behind* now —
        // the backward-time edge case both steppers must agree on.
        let timeout = s.option(|s| s.i64_in(0, 15));
        if let Some(fs) = timeout {
            code.push(Insn::PushInt(fs));
        }
        code.push(Insn::Wait {
            sens: Arc::new(sens),
            with_timeout: timeout.is_some(),
        });
        code.push(Insn::Pop);
        code.push(Insn::Jump(0));
        prog.add_process(format!("top.p{pi}"), 2, code);
    }
    // Exercise both sensitivity sources: elaborator metadata and the
    // kernel's fallback code walk.
    if s.bool() {
        prog.finalize_sensitivity();
    }
    prog
}

/// Everything observable about a finished run.
#[derive(Debug, PartialEq)]
pub(crate) struct Snapshot {
    outcome: String,
    vcd: String,
    now: Time,
    // Core stats only: the scheduler-introspection counters
    // (calendar_ops, woken_procs, scanned_signals) are new-path-only.
    stats: (u64, u64, u64, u64, u64, u64),
    sig_vals: Vec<Val>,
    sig_events: Vec<u64>,
    sig_last: Vec<Option<Time>>,
    proc_res: Vec<u64>,
    reports: Vec<(Time, i64, String)>,
}

pub(crate) fn snapshot(
    sim: &Simulator<'_>,
    outcome: &Result<RunOutcome, SimError>,
    vcd: String,
    n_sigs: usize,
    n_procs: usize,
) -> Snapshot {
    let st = sim.stats();
    Snapshot {
        outcome: match outcome {
            Ok(o) => format!("{o:?}"),
            Err(e) => format!("err: {e}"),
        },
        vcd,
        now: sim.now(),
        stats: (
            st.cycles,
            st.delta_cycles,
            st.events,
            st.transactions,
            st.resumptions,
            st.insns,
        ),
        sig_vals: (0..n_sigs)
            .map(|i| sim.signal_value(SigId(i as u32)).clone())
            .collect(),
        sig_events: (0..n_sigs)
            .map(|i| sim.signal_events(SigId(i as u32)))
            .collect(),
        sig_last: (0..n_sigs)
            .map(|i| sim.signal_last_event(SigId(i as u32)))
            .collect(),
        proc_res: (0..n_procs)
            .map(|i| sim.process_resumptions(i as u32))
            .collect(),
        reports: sim
            .reports()
            .iter()
            .map(|r| (r.time, r.severity, r.text.clone()))
            .collect(),
    }
}

/// Runs the event-driven path on the given process backend, optionally
/// split into slices (incremental stepping must land on the same state as
/// one uninterrupted run).
pub(crate) fn run_new(
    prog: &Program,
    deadline: Time,
    budgets: &[u64],
    backend: Backend,
) -> Snapshot {
    let (n_sigs, n_procs) = (prog.signals.len(), prog.processes.len());
    let vcd = RefCell::new(Vcd::new("1fs"));
    let vcd_ref = &vcd;
    let mut sim = Simulator::new(prog.clone());
    sim.set_backend(backend);
    sim.observe(Box::new(move |t, sig, name, v| {
        vcd_ref.borrow_mut().change(t, sig, name, v);
    }));
    let mut outcome = Ok(RunOutcome::CycleBudget);
    for &b in budgets {
        outcome = sim.run_slice(deadline, b, &mut || false);
        if !matches!(outcome, Ok(RunOutcome::CycleBudget)) {
            break;
        }
    }
    let snap = snapshot(&sim, &outcome, vcd.borrow().finish(), n_sigs, n_procs);
    drop(sim);
    snap
}

/// Runs the retained scan-based reference stepper over the same program.
fn run_ref(prog: &Program, deadline: Time, max_cycles: u64) -> Snapshot {
    let (n_sigs, n_procs) = (prog.signals.len(), prog.processes.len());
    let vcd = RefCell::new(Vcd::new("1fs"));
    let vcd_ref = &vcd;
    let mut sim = Simulator::new(prog.clone());
    sim.observe(Box::new(move |t, sig, name, v| {
        vcd_ref.borrow_mut().change(t, sig, name, v);
    }));
    let outcome = sim.ref_run_slice(deadline, max_cycles);
    let snap = snapshot(&sim, &outcome, vcd.borrow().finish(), n_sigs, n_procs);
    drop(sim);
    snap
}

#[test]
fn scheduler_equivalent_to_reference() {
    forall!(
        Config::new("scheduler_equivalent_to_reference").cases(96),
        |s| {
            let prog = gen_program(s);
            let deadline = Time::fs(s.u64_in(5, 60));
            let total = s.u64_in(20, 300);
            // Sometimes split the event-driven run into two slices to prove
            // incremental stepping resumes exactly where it stopped.
            let budgets = if s.bool() && total >= 2 {
                let c1 = s.u64_in(1, total - 1);
                vec![c1, total - c1]
            } else {
                vec![total]
            };
            let new = run_new(&prog, deadline, &budgets, Backend::Interp);
            let reference = run_ref(&prog, deadline, total);
            check_eq!(new.outcome, reference.outcome);
            check_eq!(new.vcd, reference.vcd);
            check_eq!(new.now, reference.now);
            check_eq!(
                new.stats,
                reference.stats,
                "cycles/deltas/events/txs/resumptions/insns"
            );
            check_eq!(new.sig_vals, reference.sig_vals);
            check_eq!(new.sig_events, reference.sig_events);
            check_eq!(new.sig_last, reference.sig_last);
            check_eq!(new.proc_res, reference.proc_res);
            check_eq!(new.reports, reference.reports);
            // The compiled backend is the third leg of the oracle: the
            // generated shapes must never fall back, and the snapshot must
            // match the interpreter's byte for byte.
            check_eq!(
                crate::compile::compile(&prog).n_fallback,
                0,
                "generated design must compile in full"
            );
            let compiled = run_new(&prog, deadline, &budgets, Backend::Compiled);
            check_eq!(compiled.outcome, new.outcome, "compiled vs interp");
            check_eq!(compiled.vcd, new.vcd, "compiled vs interp");
            check_eq!(
                compiled.stats,
                new.stats,
                "compiled vs interp cycles/deltas/events/txs/resumptions/insns"
            );
            check_eq!(compiled, new, "compiled vs interp full snapshot");
        }
    );
}

/// A fixed worst-case-ish program (every feature at once) as a cheap
/// deterministic smoke test alongside the property.
#[test]
fn scheduler_equivalent_fixed_case() {
    let mut prog = Program::default();
    let a = prog.add_signal("top.a", Val::Int(0));
    let b = prog.add_signal("top.b", Val::Int(0));
    let f = prog.add_function(sum_mod4());
    let bus = prog.add_signal("top.bus", Val::Int(0));
    prog.signals[bus.0 as usize].resolution = Some(f);
    for (pi, mine) in [a, b].into_iter().enumerate() {
        prog.add_process(
            format!("top.p{pi}"),
            1,
            vec![
                Insn::LoadVar(slot(0)),
                Insn::PushInt(1),
                Insn::Binop(Op::Add),
                Insn::StoreVar(slot(0)),
                // mine <= counter mod 2 after 2 fs (transport);
                Insn::LoadVar(slot(0)),
                Insn::PushInt(2),
                Insn::Binop(Op::Mod),
                Insn::PushInt(2),
                Insn::Sched {
                    sig: mine,
                    transport: true,
                },
                // bus <= counter mod 3, delta (inertial preemption);
                Insn::LoadVar(slot(0)),
                Insn::PushInt(3),
                Insn::Binop(Op::Mod),
                Insn::PushInt(-1),
                Insn::Sched {
                    sig: bus,
                    transport: false,
                },
                // wait on the other signal, 3 fs timeout.
                Insn::PushInt(3),
                Insn::Wait {
                    sens: Arc::new(vec![if pi == 0 { b } else { a }]),
                    with_timeout: true,
                },
                Insn::Pop,
                Insn::Jump(0),
            ],
        );
    }
    prog.finalize_sensitivity();
    let new = run_new(&prog, Time::fs(40), &[17, 500], Backend::Interp);
    let reference = run_ref(&prog, Time::fs(40), 517);
    assert_eq!(new, reference);
    let compiled = run_new(&prog, Time::fs(40), &[17, 500], Backend::Compiled);
    assert_eq!(compiled, new);
    // Guard against the oracle going vacuous: the compiled run must have
    // actually executed threaded blocks, with no process falling back.
    let mut sim = Simulator::new(prog);
    sim.set_backend(Backend::Compiled);
    sim.run_until(Time::fs(40)).unwrap();
    assert!(sim.stats().compiled_blocks > 0, "no compiled blocks ran");
    assert_eq!(sim.stats().fallback_procs, 0);
}

/// Both backends must exhaust their fuel budget on exactly the same
/// instruction: the budget is charged per instruction *before* execution,
/// and the compiled backend's bulk-charged integer tapes may not smear
/// that boundary.
#[test]
fn fuel_exhaustion_boundary_identical_across_backends() {
    let mut prog = Program::default();
    // A runaway counter loop that never suspends: 5 instructions per
    // iteration, so a 1000-instruction budget dies mid-iteration.
    prog.add_process(
        "top.spin",
        1,
        vec![
            Insn::LoadVar(slot(0)),
            Insn::PushInt(1),
            Insn::Binop(Op::Add),
            Insn::StoreVar(slot(0)),
            Insn::Jump(0),
        ],
    );
    let snap = |backend: Backend| {
        let mut sim = Simulator::new(prog.clone());
        sim.set_backend(backend);
        sim.set_fuel_budget(1000);
        let outcome = sim.run_slice(Time::fs(10), u64::MAX, &mut || false);
        let st = sim.stats();
        (
            match outcome {
                Ok(o) => format!("{o:?}"),
                Err(e) => format!("err: {e}"),
            },
            st.insns,
            st.cycles,
        )
    };
    let interp = snap(Backend::Interp);
    let compiled = snap(Backend::Compiled);
    assert_eq!(interp.0, "err: process top.spin looped without suspending");
    assert_eq!(interp.1, 1000, "the exhausting instruction is charged");
    assert_eq!(compiled, interp);
}

/// A run that dies of arithmetic overflow must fail at the same
/// instruction with the same message and instruction count under both
/// backends (the integer fast path charges partial tapes exactly).
#[test]
fn runtime_error_boundary_identical_across_backends() {
    let mut prog = Program::default();
    let clk = prog.add_signal("top.clk", Val::Int(0));
    // x := x * 2 + 1 every delta cycle: overflows i64 after 62 rounds.
    prog.add_process(
        "top.grow",
        1,
        vec![
            Insn::LoadVar(slot(0)),
            Insn::PushInt(2),
            Insn::Binop(Op::Mul),
            Insn::PushInt(1),
            Insn::Binop(Op::Add),
            Insn::StoreVar(slot(0)),
            Insn::LoadSig(clk),
            Insn::Unop(Op::Not),
            Insn::PushInt(1),
            Insn::Sched {
                sig: clk,
                transport: false,
            },
            Insn::Wait {
                sens: Arc::new(vec![clk]),
                with_timeout: false,
            },
            Insn::Pop,
            Insn::Jump(0),
        ],
    );
    prog.finalize_sensitivity();
    let deadline = Time::fs(10_000);
    let interp = run_new(&prog, deadline, &[u64::MAX], Backend::Interp);
    let compiled = run_new(&prog, deadline, &[u64::MAX], Backend::Compiled);
    assert_eq!(
        interp.outcome,
        "err: runtime error in top.grow: arithmetic overflow"
    );
    assert_eq!(compiled, interp);
}

/// The injected-fault knob the conformance oracle relies on must really
/// change observable behavior: with `ResolutionFirstDriverOnly` armed, a
/// two-writer resolved bus resolves to the first driver's value alone.
#[test]
fn test_fault_breaks_resolution_commit() {
    use crate::sim::TestFault;
    let build = || {
        let mut prog = Program::default();
        let f = prog.add_function(sum_mod4());
        let bus = prog.add_signal("top.bus", Val::Int(0));
        prog.signals[bus.0 as usize].resolution = Some(f);
        // Two one-shot drivers: 1 and 2. Faithful resolution sums to 3;
        // the faulted commit sees only the first driver's 1.
        for (pi, v) in [1i64, 2].into_iter().enumerate() {
            prog.add_process(
                format!("top.p{pi}"),
                0,
                vec![
                    Insn::PushInt(v),
                    Insn::PushInt(1),
                    Insn::Sched {
                        sig: bus,
                        transport: false,
                    },
                    Insn::Wait {
                        sens: Arc::new(vec![]),
                        with_timeout: false,
                    },
                    Insn::Pop,
                    Insn::Halt,
                ],
            );
        }
        prog.finalize_sensitivity();
        (prog, bus)
    };
    let (prog, bus) = build();
    let mut honest = Simulator::new(prog.clone());
    honest.run_until(Time::fs(5)).unwrap();
    assert_eq!(honest.signal_value(bus), &Val::Int(3));
    let mut faulted = Simulator::new(prog);
    faulted.set_test_fault(Some(TestFault::ResolutionFirstDriverOnly));
    faulted.run_until(Time::fs(5)).unwrap();
    assert_eq!(faulted.signal_value(bus), &Val::Int(1));
}

/// The compiled backend strength-reduces `x mod 2^n` (positive `n`th
/// power, immediate operand) to a bit mask. VHDL `mod` is the euclidean
/// remainder, so the reduction must hold for negative `x` too — where
/// truncated `%` would give a different (negative) answer.
#[test]
fn mod_by_power_of_two_matches_interp_for_negative_operands() {
    let mut prog = Program::default();
    let clk = prog.add_signal("top.clk", Val::Int(0));
    let rem = prog.add_signal("top.rem", Val::Int(0));
    // x := x - 7; rem <= x mod 8 (delta): x dives negative on the first
    // activation and stays there.
    prog.add_process(
        "top.neg",
        1,
        vec![
            Insn::LoadVar(slot(0)),
            Insn::PushInt(7),
            Insn::Binop(Op::Sub),
            Insn::StoreVar(slot(0)),
            Insn::LoadVar(slot(0)),
            Insn::PushInt(8),
            Insn::Binop(Op::Mod),
            Insn::PushInt(-1),
            Insn::Sched {
                sig: rem,
                transport: false,
            },
            Insn::LoadSig(clk),
            Insn::Unop(Op::Not),
            Insn::PushInt(1),
            Insn::Sched {
                sig: clk,
                transport: false,
            },
            Insn::Wait {
                sens: Arc::new(vec![clk]),
                with_timeout: false,
            },
            Insn::Pop,
            Insn::Jump(0),
        ],
    );
    prog.finalize_sensitivity();
    let deadline = Time::fs(100);
    let interp = run_new(&prog, deadline, &[u64::MAX], Backend::Interp);
    let compiled = run_new(&prog, deadline, &[u64::MAX], Backend::Compiled);
    assert_eq!(compiled, interp);
    let mut sim = Simulator::new(prog);
    sim.set_backend(Backend::Compiled);
    sim.run_until(deadline).unwrap();
    assert_eq!(sim.stats().fallback_procs, 0);
    // Euclidean, not truncated: -7k mod 8 is always in 0..8, and for
    // x = -7 specifically it is 1 (truncated % would say -7).
    match sim.signal_value(rem) {
        Val::Int(v) => assert!((0..8).contains(v), "euclidean remainder, got {v}"),
        other => panic!("integer remainder expected, got {other:?}"),
    }
}
