//! Runtime support: "the runtime support functions perform all the
//! predefined VHDL operations" (§2.1).

use std::sync::Arc;

use crate::value::{ArrVal, Val};

/// Predefined operation codes (matching the `builtin` strings the analyzer
/// attaches to implicit operator declarations).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// `+`
    Add,
    /// binary `-`
    Sub,
    /// `*`
    Mul,
    /// `*` with reversed physical operands
    MulRev,
    /// `/`
    Div,
    /// physical `/` physical → integer
    DivPhys,
    /// `mod`
    Mod,
    /// `rem`
    Rem,
    /// `**`
    Pow,
    /// unary `-`
    Neg,
    /// unary `+`
    Pos,
    /// `abs`
    Abs,
    /// `=`
    Eq,
    /// `/=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
    /// `nand`
    Nand,
    /// `nor`
    Nor,
    /// `xor`
    Xor,
    /// `not`
    Not,
    /// `&`
    Concat,
    /// `&` array, element
    ConcatRe,
    /// `&` element, array
    ConcatLe,
    /// integer → real conversion
    ToReal,
    /// real → integer conversion (rounds to nearest)
    ToInt,
}

impl Op {
    /// Decodes the analyzer's builtin code string.
    pub fn decode(s: &str) -> Option<Op> {
        Some(match s {
            "add" => Op::Add,
            "sub" => Op::Sub,
            "mul" => Op::Mul,
            "mul_rev" => Op::MulRev,
            "div" => Op::Div,
            "div_phys" => Op::DivPhys,
            "mod" => Op::Mod,
            "rem" => Op::Rem,
            "pow" => Op::Pow,
            "neg" => Op::Neg,
            "pos" => Op::Pos,
            "abs" => Op::Abs,
            "eq" => Op::Eq,
            "ne" => Op::Ne,
            "lt" => Op::Lt,
            "le" => Op::Le,
            "gt" => Op::Gt,
            "ge" => Op::Ge,
            "and" => Op::And,
            "or" => Op::Or,
            "nand" => Op::Nand,
            "nor" => Op::Nor,
            "xor" => Op::Xor,
            "not" => Op::Not,
            "concat" => Op::Concat,
            "concat_re" => Op::ConcatRe,
            "concat_le" => Op::ConcatLe,
            "to_real" => Op::ToReal,
            "to_int" => Op::ToInt,
            _ => return None,
        })
    }

    /// Arity (1 or 2).
    pub fn arity(self) -> usize {
        match self {
            Op::Neg | Op::Pos | Op::Abs | Op::Not | Op::ToReal | Op::ToInt => 1,
            _ => 2,
        }
    }
}

/// Runtime errors (bounds violations, division by zero, assertion
/// failures are reported separately).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RtError {
    /// Division or modulus by zero.
    DivByZero,
    /// Value outside its subtype range.
    RangeError {
        /// The offending value.
        value: i64,
        /// Low bound.
        lo: i64,
        /// High bound.
        hi: i64,
    },
    /// Array index out of bounds.
    IndexError {
        /// The offending index.
        index: i64,
    },
    /// Arithmetic overflow.
    Overflow,
    /// Internal inconsistency (typed IR violated).
    Internal(String),
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::DivByZero => write!(f, "division by zero"),
            RtError::RangeError { value, lo, hi } => {
                write!(f, "value {value} outside range {lo} to {hi}")
            }
            RtError::IndexError { index } => write!(f, "index {index} out of bounds"),
            RtError::Overflow => write!(f, "arithmetic overflow"),
            RtError::Internal(m) => write!(f, "internal: {m}"),
        }
    }
}

impl std::error::Error for RtError {}

/// Applies a binary operation.
pub fn binop(op: Op, a: &Val, b: &Val) -> Result<Val, RtError> {
    use Op::*;
    Ok(match (op, a, b) {
        // Integer / physical arithmetic.
        (Add, Val::Int(x), Val::Int(y)) => Val::Int(x.checked_add(*y).ok_or(RtError::Overflow)?),
        (Sub, Val::Int(x), Val::Int(y)) => Val::Int(x.checked_sub(*y).ok_or(RtError::Overflow)?),
        (Mul | MulRev, Val::Int(x), Val::Int(y)) => {
            Val::Int(x.checked_mul(*y).ok_or(RtError::Overflow)?)
        }
        (Div | DivPhys, Val::Int(x), Val::Int(y)) => {
            Val::Int(x.checked_div(*y).ok_or(RtError::DivByZero)?)
        }
        (Mod, Val::Int(x), Val::Int(y)) => {
            Val::Int(x.checked_rem_euclid(*y).ok_or(RtError::DivByZero)?)
        }
        (Rem, Val::Int(x), Val::Int(y)) => Val::Int(x.checked_rem(*y).ok_or(RtError::DivByZero)?),
        (Pow, Val::Int(x), Val::Int(y)) => Val::Int(
            u32::try_from(*y)
                .ok()
                .and_then(|e| x.checked_pow(e))
                .ok_or(RtError::Overflow)?,
        ),
        // Real arithmetic.
        (Add, Val::Real(x), Val::Real(y)) => Val::Real(x + y),
        (Sub, Val::Real(x), Val::Real(y)) => Val::Real(x - y),
        (Mul, Val::Real(x), Val::Real(y)) => Val::Real(x * y),
        (Div, Val::Real(x), Val::Real(y)) => Val::Real(x / y),
        // Comparisons.
        (Eq, a, b) => Val::Int((a == b) as i64),
        (Ne, a, b) => Val::Int((a != b) as i64),
        (Lt | Le | Gt | Ge, a, b) => {
            let ord = compare(a, b)?;
            let r = match op {
                Lt => ord == std::cmp::Ordering::Less,
                Le => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                _ => ord != std::cmp::Ordering::Less,
            };
            Val::Int(r as i64)
        }
        // Logical (scalar and elementwise array).
        (And | Or | Nand | Nor | Xor, Val::Int(x), Val::Int(y)) => Val::Int(logical(op, *x, *y)),
        (And | Or | Nand | Nor | Xor, Val::Arr(x), Val::Arr(y)) => {
            if x.data.len() != y.data.len() {
                return Err(RtError::Internal("logical op on unequal lengths".into()));
            }
            let data = x
                .data
                .iter()
                .zip(y.data.iter())
                .map(|(a, b)| match (a, b) {
                    (Val::Int(x), Val::Int(y)) => Ok(Val::Int(logical(op, *x, *y))),
                    _ => Err(RtError::Internal("logical op on non-bit elements".into())),
                })
                .collect::<Result<Vec<Val>, RtError>>()?;
            Val::Arr(ArrVal {
                left: x.left,
                dir: x.dir,
                data: Arc::new(data),
            })
        }
        // Concatenation (result bounds per VHDL-87: left of the left
        // operand when it is an array, index from 0-based otherwise).
        (Concat, Val::Arr(x), Val::Arr(y)) => {
            let mut data = (*x.data).clone();
            data.extend(y.data.iter().cloned());
            Val::Arr(ArrVal {
                left: x.left,
                dir: x.dir,
                data: Arc::new(data),
            })
        }
        (ConcatRe, Val::Arr(x), e) => {
            let mut data = (*x.data).clone();
            data.push(e.clone());
            Val::Arr(ArrVal {
                left: x.left,
                dir: x.dir,
                data: Arc::new(data),
            })
        }
        (ConcatLe, e, Val::Arr(y)) => {
            let mut data = vec![e.clone()];
            data.extend(y.data.iter().cloned());
            Val::Arr(ArrVal {
                left: y.left,
                dir: y.dir,
                data: Arc::new(data),
            })
        }
        (op, a, b) => {
            return Err(RtError::Internal(format!(
                "bad operands for {op:?}: {a:?}, {b:?}"
            )))
        }
    })
}

pub(crate) fn logical(op: Op, x: i64, y: i64) -> i64 {
    let (x, y) = (x != 0, y != 0);
    let r = match op {
        Op::And => x && y,
        Op::Or => x || y,
        Op::Nand => !(x && y),
        Op::Nor => !(x || y),
        Op::Xor => x ^ y,
        _ => unreachable!("logical called with non-logical op"),
    };
    r as i64
}

/// Applies a unary operation.
pub fn unop(op: Op, a: &Val) -> Result<Val, RtError> {
    Ok(match (op, a) {
        (Op::Neg, Val::Int(x)) => Val::Int(x.checked_neg().ok_or(RtError::Overflow)?),
        (Op::Neg, Val::Real(x)) => Val::Real(-x),
        (Op::Pos, v) => v.clone(),
        (Op::Abs, Val::Int(x)) => Val::Int(x.checked_abs().ok_or(RtError::Overflow)?),
        (Op::Abs, Val::Real(x)) => Val::Real(x.abs()),
        (Op::Not, Val::Int(x)) => Val::Int((*x == 0) as i64),
        (Op::Not, Val::Arr(x)) => {
            let data = x
                .data
                .iter()
                .map(|v| match v {
                    Val::Int(i) => Ok(Val::Int((*i == 0) as i64)),
                    _ => Err(RtError::Internal("not on non-bit elements".into())),
                })
                .collect::<Result<Vec<Val>, RtError>>()?;
            Val::Arr(ArrVal {
                left: x.left,
                dir: x.dir,
                data: Arc::new(data),
            })
        }
        (Op::ToReal, Val::Int(x)) => Val::Real(*x as f64),
        (Op::ToReal, Val::Real(x)) => Val::Real(*x),
        (Op::ToInt, Val::Real(x)) => Val::Int(x.round() as i64),
        (Op::ToInt, Val::Int(x)) => Val::Int(*x),
        (op, a) => return Err(RtError::Internal(format!("bad operand for {op:?}: {a:?}"))),
    })
}

/// VHDL ordering: scalars numerically, arrays lexicographically.
pub fn compare(a: &Val, b: &Val) -> Result<std::cmp::Ordering, RtError> {
    match (a, b) {
        (Val::Int(x), Val::Int(y)) => Ok(x.cmp(y)),
        (Val::Real(x), Val::Real(y)) => x
            .partial_cmp(y)
            .ok_or_else(|| RtError::Internal("NaN comparison".into())),
        (Val::Arr(x), Val::Arr(y)) => {
            for (a, b) in x.data.iter().zip(y.data.iter()) {
                match compare(a, b)? {
                    std::cmp::Ordering::Equal => continue,
                    o => return Ok(o),
                }
            }
            Ok(x.data.len().cmp(&y.data.len()))
        }
        _ => Err(RtError::Internal("incomparable values".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_ops() {
        assert_eq!(
            binop(Op::Add, &Val::Int(2), &Val::Int(3)).unwrap(),
            Val::Int(5)
        );
        assert_eq!(
            binop(Op::Pow, &Val::Int(2), &Val::Int(8)).unwrap(),
            Val::Int(256)
        );
        assert_eq!(
            binop(Op::Mod, &Val::Int(-7), &Val::Int(3)).unwrap(),
            Val::Int(2)
        );
        assert_eq!(
            binop(Op::Rem, &Val::Int(-7), &Val::Int(3)).unwrap(),
            Val::Int(-1)
        );
        assert_eq!(
            binop(Op::Div, &Val::Int(1), &Val::Int(0)).unwrap_err(),
            RtError::DivByZero
        );
        assert_eq!(
            binop(Op::Add, &Val::Int(i64::MAX), &Val::Int(1)).unwrap_err(),
            RtError::Overflow
        );
        assert_eq!(unop(Op::Neg, &Val::Int(4)).unwrap(), Val::Int(-4));
        assert_eq!(unop(Op::Abs, &Val::Int(-4)).unwrap(), Val::Int(4));
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(
            binop(Op::Lt, &Val::Int(1), &Val::Int(2)).unwrap(),
            Val::Int(1)
        );
        assert_eq!(
            binop(Op::Ge, &Val::Int(1), &Val::Int(2)).unwrap(),
            Val::Int(0)
        );
        assert_eq!(
            binop(Op::Xor, &Val::Int(1), &Val::Int(1)).unwrap(),
            Val::Int(0)
        );
        assert_eq!(
            binop(Op::Nand, &Val::Int(1), &Val::Int(1)).unwrap(),
            Val::Int(0)
        );
        assert_eq!(unop(Op::Not, &Val::Int(0)).unwrap(), Val::Int(1));
    }

    #[test]
    fn array_ops() {
        let a = Val::bits(&[1, 0]);
        let b = Val::bits(&[1, 1]);
        assert_eq!(binop(Op::And, &a, &b).unwrap(), Val::bits(&[1, 0]));
        assert_eq!(unop(Op::Not, &a).unwrap(), Val::bits(&[0, 1]));
        let c = binop(Op::Concat, &a, &b).unwrap();
        assert_eq!(c.as_arr().data.len(), 4);
        // Lexicographic comparison.
        assert_eq!(binop(Op::Lt, &a, &b).unwrap(), Val::Int(1));
        assert_eq!(binop(Op::Eq, &a, &a).unwrap(), Val::Int(1));
        // Element concat.
        let d = binop(Op::ConcatRe, &a, &Val::Int(1)).unwrap();
        assert_eq!(d.as_arr().data.len(), 3);
        let e = binop(Op::ConcatLe, &Val::Int(1), &a).unwrap();
        assert_eq!(e.as_arr().data.len(), 3);
    }

    #[test]
    fn op_decode_round_trip() {
        for code in [
            "add",
            "sub",
            "mul",
            "div",
            "mod",
            "rem",
            "pow",
            "neg",
            "pos",
            "abs",
            "eq",
            "ne",
            "lt",
            "le",
            "gt",
            "ge",
            "and",
            "or",
            "nand",
            "nor",
            "xor",
            "not",
            "concat",
            "concat_re",
            "concat_le",
            "mul_rev",
            "div_phys",
        ] {
            assert!(Op::decode(code).is_some(), "{code}");
        }
        assert!(Op::decode("zzz").is_none());
        assert_eq!(Op::Not.arity(), 1);
        assert_eq!(Op::Add.arity(), 2);
    }
}
