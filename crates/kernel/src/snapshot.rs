//! Versioned binary snapshots of live simulation state.
//!
//! A snapshot captures everything [`Simulator`] needs to continue a run
//! exactly where it stopped: current time, cumulative statistics, report
//! log, signal and driver state (projected output waveforms included),
//! process frames (interpreter `pc` doubles as the compiled backend's
//! `resume_pc` — both engines keep it current at every suspension point),
//! the Name Server's per-object event/resumption counters, and the
//! pending-event calendar. Restoring into a freshly elaborated program
//! yields a simulator whose subsequent VCD output, statistics, and
//! counters are byte-identical to an uninterrupted run, under either
//! backend (`src/snapshot.rs` property suite).
//!
//! ## Format
//!
//! Little-endian binary: magic `VSNP`, format version, a fingerprint of
//! the elaborated program (restore refuses state from a different
//! design), the state sections, and a trailing FNV-1a checksum over
//! everything before it. All decoding is bounds-checked and total:
//! hostile bytes produce a [`SnapshotError`], never a panic and never an
//! oversized allocation (collection lengths are validated against the
//! remaining input before reserving).
//!
//! ## Versioning rules
//!
//! The version number covers the whole layout: any change to field
//! order, widths, or sections bumps it, and old versions are rejected
//! rather than migrated (a snapshot is a resumable suspension image, not
//! an archival format). The program fingerprint pins a snapshot to the
//! exact design it was taken from — same signals (names, initial values,
//! resolution wiring), processes, subprogram code, and region tree — so
//! state is never spliced into a design it did not come from.
//!
//! ## What is *not* serialized
//!
//! Scratch worklists (`due_drivers`, `fired`, `cand`, `ready`,
//! resolution buffers, compiled-tape stacks) are empty at every
//! activation boundary and are rebuilt on demand. The sensitivity index,
//! Name Server tree, and compiled translation are pure functions of the
//! program and are rebuilt by elaboration. Observers are host-side and
//! re-attach after restore.
//!
//! ## Calendar normalization
//!
//! Checkpoint first runs one [`Simulator::next_time`] sweep. That pass
//! discards stale near-bucket entries and stale far-heap tops, charging
//! `calendar_ops` exactly as the next scheduling decision of an
//! uninterrupted run would — and because the sweep is idempotent (valid
//! entries survive re-validation for free), the restored run's own
//! `next_time` re-check diverges nothing. Stale entries buried *under*
//! valid far-heap tops are serialized verbatim instead of being dropped:
//! their lazy-invalidation cost is charged when the original run would
//! have reached them, keeping `calendar_ops` byte-identical.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::isa::{Program, SigId};
use crate::sched::{CalEntry, CalKind, Calendar};
use crate::sim::{Backend, Driver, Frame, ProcStatus, ReportEvent, SimStats, Simulator};
use crate::value::{ArrVal, Time, VDir, Val};

/// Magic bytes opening every kernel snapshot.
pub const MAGIC: [u8; 4] = *b"VSNP";

/// Current snapshot format version.
pub const VERSION: u32 = 1;

/// Why a snapshot could not be produced or applied. Never a panic:
/// snapshot bytes cross process boundaries and are treated as hostile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input does not start with [`MAGIC`].
    BadMagic,
    /// The input's format version is not [`VERSION`].
    BadVersion(u32),
    /// The input ended before the structure did.
    Truncated,
    /// The structure decoded but describes impossible state (an index
    /// out of range, an unknown tag, a checksum mismatch, …).
    Corrupt(String),
    /// The snapshot was taken from a different elaborated program.
    ProgramMismatch,
    /// The simulator has already failed; its state is not resumable.
    Failed(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a simulation snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {VERSION})")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
            SnapshotError::ProgramMismatch => {
                write!(f, "snapshot was taken from a different elaborated design")
            }
            SnapshotError::Failed(why) => {
                write!(
                    f,
                    "simulation already failed, state is not resumable: {why}"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a over a byte slice (the checksum and the program fingerprint
/// both use it; no cryptographic claims, just corruption detection).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Append-only little-endian byte encoder. Public so the server layer
/// can wrap kernel snapshots in its own session envelope with the same
/// primitives.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// The bytes so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Finishes encoding, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends the FNV-1a checksum of everything written so far.
    pub fn seal(mut self) -> Vec<u8> {
        let sum = fnv1a(&self.buf);
        self.u64(sum);
        self.buf
    }

    /// One raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `f64` by its IEEE-754 bit pattern (round trips NaN payloads and
    /// signed zeros exactly).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Collection length (`u32`; snapshots of realistic designs stay far
    /// below 4 G elements).
    pub fn len(&mut self, n: usize) {
        debug_assert!(n <= u32::MAX as usize);
        self.u32(n as u32);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Length-prefixed raw bytes.
    pub fn blob(&mut self, b: &[u8]) {
        self.len(b.len());
        self.buf.extend_from_slice(b);
    }

    fn time(&mut self, t: Time) {
        self.u64(t.fs);
        self.u32(t.delta);
    }

    fn opt_time(&mut self, t: Option<Time>) {
        match t {
            None => self.u8(0),
            Some(t) => {
                self.u8(1);
                self.time(t);
            }
        }
    }

    fn val(&mut self, v: &Val) {
        match v {
            Val::Int(i) => {
                self.u8(0);
                self.i64(*i);
            }
            Val::Real(r) => {
                self.u8(1);
                self.f64(*r);
            }
            Val::Arr(a) => {
                self.u8(2);
                self.i64(a.left);
                self.u8(match a.dir {
                    VDir::To => 0,
                    VDir::Downto => 1,
                });
                self.len(a.data.len());
                for e in a.data.iter() {
                    self.val(e);
                }
            }
            Val::Rec(fs) => {
                self.u8(3);
                self.len(fs.len());
                for e in fs.iter() {
                    self.val(e);
                }
            }
        }
    }
}

/// Bounds-checked little-endian byte decoder (counterpart of [`Enc`]).
pub struct Dec<'b> {
    bytes: &'b [u8],
    pos: usize,
}

impl<'b> Dec<'b> {
    /// A decoder over `bytes`, positioned at the start.
    pub fn new(bytes: &'b [u8]) -> Dec<'b> {
        Dec { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Checks the trailing FNV-1a checksum of `bytes` without consuming
    /// anything; call before structural decoding.
    pub fn verify_checksum(bytes: &[u8]) -> Result<(), SnapshotError> {
        if bytes.len() < 8 {
            return Err(SnapshotError::Truncated);
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let want = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if fnv1a(body) != want {
            return Err(SnapshotError::Corrupt("checksum mismatch".into()));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'b [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Collection length, validated against the remaining input so a
    /// corrupt count cannot drive an oversized allocation (`min_elem` is
    /// the smallest possible encoding of one element).
    pub fn len(&mut self, min_elem: usize) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem.max(1)) > self.remaining() {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("string is not UTF-8".into()))
    }

    /// Length-prefixed raw bytes.
    pub fn blob(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let n = self.len(1)?;
        Ok(self.take(n)?.to_vec())
    }

    fn time(&mut self) -> Result<Time, SnapshotError> {
        let fs = self.u64()?;
        let delta = self.u32()?;
        Ok(Time { fs, delta })
    }

    fn opt_time(&mut self) -> Result<Option<Time>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.time()?)),
            t => Err(SnapshotError::Corrupt(format!("bad Option<Time> tag {t}"))),
        }
    }

    fn val(&mut self) -> Result<Val, SnapshotError> {
        match self.u8()? {
            0 => Ok(Val::Int(self.i64()?)),
            1 => Ok(Val::Real(self.f64()?)),
            2 => {
                let left = self.i64()?;
                let dir = match self.u8()? {
                    0 => VDir::To,
                    1 => VDir::Downto,
                    t => return Err(SnapshotError::Corrupt(format!("bad VDir tag {t}"))),
                };
                let n = self.len(1)?;
                let mut data = Vec::with_capacity(n);
                for _ in 0..n {
                    data.push(self.val()?);
                }
                Ok(Val::Arr(ArrVal {
                    left,
                    dir,
                    data: Arc::new(data),
                }))
            }
            3 => {
                let n = self.len(1)?;
                let mut fs = Vec::with_capacity(n);
                for _ in 0..n {
                    fs.push(self.val()?);
                }
                Ok(Val::Rec(Arc::new(fs)))
            }
            t => Err(SnapshotError::Corrupt(format!("bad Val tag {t}"))),
        }
    }
}

/// A fingerprint of the elaborated program: everything simulation
/// semantics depend on — signal names, initial values, and resolution
/// wiring; process and subprogram names, frame shapes, and full
/// instruction streams; the region tree. Two programs with equal
/// fingerprints elaborate to interchangeable simulators.
pub fn program_fingerprint(program: &Program) -> u64 {
    let mut text = String::new();
    let mut e = Enc::new();
    e.len(program.signals.len());
    for s in &program.signals {
        e.str(&s.name);
        e.val(&s.init);
        e.u32(s.resolution.map_or(u32::MAX, |f| f.0));
    }
    e.len(program.processes.len());
    for p in &program.processes {
        e.str(&p.name);
        e.u32(p.n_locals as u32);
        text.clear();
        use std::fmt::Write as _;
        let _ = write!(text, "{:?}", p.code);
        e.str(&text);
    }
    e.len(program.functions.len());
    for f in &program.functions {
        e.str(&f.name);
        e.u32(f.n_params as u32);
        e.u32(f.n_locals as u32);
        e.u32(f.level as u32);
        text.clear();
        use std::fmt::Write as _;
        let _ = write!(text, "{:?}", f.code);
        e.str(&text);
    }
    e.len(program.regions.len());
    for r in &program.regions {
        e.str(r);
    }
    fnv1a(e.bytes())
}

fn enc_cal_entry(e: &mut Enc, c: &CalEntry) {
    e.time(c.time);
    match c.kind {
        CalKind::Driver { sig, di } => {
            e.u8(0);
            e.u32(sig);
            e.u32(di);
        }
        CalKind::Timeout { proc } => {
            e.u8(1);
            e.u32(proc);
            e.u32(0);
        }
    }
}

fn dec_cal_entry(
    d: &mut Dec<'_>,
    n_sigs: usize,
    n_procs: usize,
) -> Result<CalEntry, SnapshotError> {
    let time = d.time()?;
    let tag = d.u8()?;
    let a = d.u32()?;
    let b = d.u32()?;
    let kind = match tag {
        0 => {
            if a as usize >= n_sigs {
                return Err(SnapshotError::Corrupt(format!(
                    "calendar driver entry names signal {a} of {n_sigs}"
                )));
            }
            CalKind::Driver { sig: a, di: b }
        }
        1 => {
            if a as usize >= n_procs {
                return Err(SnapshotError::Corrupt(format!(
                    "calendar timeout entry names process {a} of {n_procs}"
                )));
            }
            CalKind::Timeout { proc: a }
        }
        t => return Err(SnapshotError::Corrupt(format!("bad calendar tag {t}"))),
    };
    Ok(CalEntry { time, kind })
}

impl<'a> Simulator<'a> {
    /// Serializes the full resumable state of this simulator (see module
    /// docs for the format). `&mut` because the calendar is normalized
    /// first — an operation the next scheduling decision would perform
    /// anyway, so an uninterrupted run and a checkpointed one stay
    /// byte-identical.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Failed`] when the simulation has already failed:
    /// a failed run is not resumable.
    pub fn checkpoint(&mut self) -> Result<Vec<u8>, SnapshotError> {
        if let Some(err) = &self.failed {
            return Err(SnapshotError::Failed(err.to_string()));
        }
        // Normalize: sweep stale entries exactly as the next `next_time`
        // would (idempotent; see module docs).
        let _ = self.next_time();

        let mut e = Enc::new();
        e.buf.extend_from_slice(&MAGIC);
        e.u32(VERSION);
        e.u64(program_fingerprint(&self.program));
        e.u8(match self.backend {
            Backend::Interp => 0,
            Backend::Compiled => 1,
        });
        e.u64(self.fuel_budget);
        e.time(self.now);

        let st = &self.stats;
        for v in [
            st.cycles,
            st.delta_cycles,
            st.events,
            st.transactions,
            st.resumptions,
            st.insns,
            st.woken_procs,
            st.scanned_signals,
            st.compiled_blocks,
            st.fallback_procs,
        ] {
            e.u64(v);
        }

        e.len(self.reports.len());
        for r in &self.reports {
            e.time(r.time);
            e.i64(r.severity);
            e.str(&r.text);
        }

        e.len(self.signals.len());
        for s in self.signals.iter() {
            e.val(&s.current);
            e.val(&s.last_value);
            e.opt_time(s.last_event);
            e.u8(s.event as u8);
            e.u8(s.active as u8);
            e.u64(s.events);
            e.len(s.drivers.len());
            for d in &s.drivers {
                e.u64(d.proc as u64);
                e.val(&d.driving);
                e.len(d.tx.len());
                for (t, v) in &d.tx {
                    e.time(*t);
                    e.val(v);
                }
            }
        }

        e.len(self.procs.len());
        for p in &self.procs {
            match &p.status {
                ProcStatus::Ready => e.u8(0),
                ProcStatus::Suspended { sens, timeout } => {
                    e.u8(1);
                    e.len(sens.len());
                    for s in sens.iter() {
                        e.u32(s.0);
                    }
                    e.opt_time(*timeout);
                }
                ProcStatus::Halted => e.u8(2),
            }
            e.len(p.frames.len());
            for f in &p.frames {
                e.u32(f.unit);
                e.u64(f.pc as u64);
                e.u32(f.level as u32);
                match f.static_link {
                    None => e.u8(0),
                    Some(l) => {
                        e.u8(1);
                        e.u64(l as u64);
                    }
                }
                e.len(f.locals.len());
                for v in &f.locals {
                    e.val(v);
                }
            }
            e.len(p.stack.len());
            for v in &p.stack {
                e.val(v);
            }
            e.u64(p.resumptions);
        }

        e.len(self.active_clear.len());
        for s in &self.active_clear {
            e.u32(*s);
        }

        let (near_fs, near, far) = self.calendar.parts();
        e.u64(self.calendar.ops);
        e.u64(near_fs);
        e.len(near.len());
        for c in near {
            enc_cal_entry(&mut e, c);
        }
        e.len(far.len());
        for c in &far {
            enc_cal_entry(&mut e, c);
        }

        Ok(e.seal())
    }

    /// Rebuilds a simulator from `bytes` against a freshly elaborated
    /// `program` — which must be the same design the snapshot was taken
    /// from (fingerprint-checked). The result has no observers; attach
    /// them before resuming.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]; hostile bytes never panic.
    pub fn restore(program: Program, bytes: &[u8]) -> Result<Simulator<'a>, SnapshotError> {
        Dec::verify_checksum(bytes)?;
        let body = &bytes[..bytes.len() - 8];
        let mut d = Dec::new(body);
        if d.take(4)? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = d.u32()?;
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        if d.u64()? != program_fingerprint(&program) {
            return Err(SnapshotError::ProgramMismatch);
        }
        let backend = match d.u8()? {
            0 => Backend::Interp,
            1 => Backend::Compiled,
            t => return Err(SnapshotError::Corrupt(format!("bad backend tag {t}"))),
        };
        let fuel_budget = d.u64()?;
        let now = d.time()?;

        let mut sim = Simulator::new(program);
        let n_sigs = sim.program.signals.len();
        let n_procs = sim.program.processes.len();
        let n_fns = sim.program.functions.len();

        // `set_backend` before overwriting stats: compiling records
        // `fallback_procs`, which the serialized stats then replace with
        // the identical value the original run recorded.
        sim.set_backend(backend);
        sim.fuel_budget = fuel_budget;
        sim.now = now;

        let mut st = SimStats::default();
        st.cycles = d.u64()?;
        st.delta_cycles = d.u64()?;
        st.events = d.u64()?;
        st.transactions = d.u64()?;
        st.resumptions = d.u64()?;
        st.insns = d.u64()?;
        st.woken_procs = d.u64()?;
        st.scanned_signals = d.u64()?;
        st.compiled_blocks = d.u64()?;
        st.fallback_procs = d.u64()?;
        sim.stats = st;

        let n_reports = d.len(1)?;
        let mut reports = Vec::with_capacity(n_reports);
        for _ in 0..n_reports {
            let time = d.time()?;
            let severity = d.i64()?;
            let text = d.str()?;
            reports.push(ReportEvent {
                time,
                severity,
                text,
            });
        }
        sim.reports = reports;

        if d.len(1)? != n_sigs {
            return Err(SnapshotError::Corrupt("signal count mismatch".into()));
        }
        for si in 0..n_sigs {
            let current = d.val()?;
            let last_value = d.val()?;
            let last_event = d.opt_time()?;
            let event = d.u8()? != 0;
            let active = d.u8()? != 0;
            let events = d.u64()?;
            let n_drivers = d.len(1)?;
            let mut drivers = Vec::with_capacity(n_drivers);
            for _ in 0..n_drivers {
                let proc = d.u64()? as usize;
                let driving = d.val()?;
                let n_tx = d.len(1)?;
                let mut tx = VecDeque::with_capacity(n_tx);
                for _ in 0..n_tx {
                    let t = d.time()?;
                    let v = d.val()?;
                    tx.push_back((t, v));
                }
                drivers.push(Driver { proc, tx, driving });
            }
            let s = &mut sim.sigs_mut()[si];
            s.current = current;
            s.last_value = last_value;
            s.last_event = last_event;
            s.event = event;
            s.active = active;
            s.events = events;
            s.drivers = drivers;
        }

        if d.len(1)? != n_procs {
            return Err(SnapshotError::Corrupt("process count mismatch".into()));
        }
        for pi in 0..n_procs {
            let status = match d.u8()? {
                0 => ProcStatus::Ready,
                1 => {
                    let n = d.len(4)?;
                    let mut sens = Vec::with_capacity(n);
                    for _ in 0..n {
                        let s = d.u32()?;
                        if s as usize >= n_sigs {
                            return Err(SnapshotError::Corrupt(format!(
                                "sensitivity names signal {s} of {n_sigs}"
                            )));
                        }
                        sens.push(SigId(s));
                    }
                    let timeout = d.opt_time()?;
                    ProcStatus::Suspended {
                        sens: Arc::new(sens),
                        timeout,
                    }
                }
                2 => ProcStatus::Halted,
                t => return Err(SnapshotError::Corrupt(format!("bad status tag {t}"))),
            };
            let n_frames = d.len(1)?;
            let mut frames = Vec::with_capacity(n_frames);
            for _ in 0..n_frames {
                let unit = d.u32()?;
                let pc = d.u64()? as usize;
                let level = d.u32()?;
                let static_link = match d.u8()? {
                    0 => None,
                    1 => Some(d.u64()? as usize),
                    t => return Err(SnapshotError::Corrupt(format!("bad static-link tag {t}"))),
                };
                // Recover the frame's code handle from its unit index.
                // Resolution scratch frames (`u32::MAX`) never appear in
                // a snapshot: resolution runs to completion within a
                // cycle and its frames are drained before any boundary.
                let (code, want_locals) = if (unit as usize) < n_procs {
                    let decl = &sim.program.processes[unit as usize];
                    (Arc::clone(&decl.code), decl.n_locals as usize)
                } else if (unit as usize) < n_procs + n_fns {
                    let decl = &sim.program.functions[unit as usize - n_procs];
                    (Arc::clone(&decl.code), decl.n_locals as usize)
                } else {
                    return Err(SnapshotError::Corrupt(format!(
                        "frame names unit {unit} of {}",
                        n_procs + n_fns
                    )));
                };
                if pc > code.len() {
                    return Err(SnapshotError::Corrupt(format!(
                        "frame pc {pc} beyond unit {unit} ({} insns)",
                        code.len()
                    )));
                }
                let n_locals = d.len(1)?;
                if n_locals != want_locals {
                    return Err(SnapshotError::Corrupt(format!(
                        "frame for unit {unit} has {n_locals} locals, wants {want_locals}"
                    )));
                }
                let mut locals = Vec::with_capacity(n_locals);
                for _ in 0..n_locals {
                    locals.push(d.val()?);
                }
                frames.push(Frame {
                    code,
                    pc,
                    locals,
                    static_link,
                    level: level as u16,
                    unit,
                });
            }
            for f in &frames {
                if let Some(l) = f.static_link {
                    if l >= frames.len() {
                        return Err(SnapshotError::Corrupt(format!(
                            "static link {l} beyond {} frames",
                            frames.len()
                        )));
                    }
                }
            }
            let n_stack = d.len(1)?;
            let mut stack = Vec::with_capacity(n_stack);
            for _ in 0..n_stack {
                stack.push(d.val()?);
            }
            let resumptions = d.u64()?;
            let p = &mut sim.procs[pi];
            p.status = status;
            p.frames = frames;
            p.stack = stack;
            p.resumptions = resumptions;
        }

        let n_clear = d.len(4)?;
        let mut active_clear = Vec::with_capacity(n_clear);
        for _ in 0..n_clear {
            let s = d.u32()?;
            if s as usize >= n_sigs {
                return Err(SnapshotError::Corrupt(format!(
                    "clear-list names signal {s} of {n_sigs}"
                )));
            }
            active_clear.push(s);
        }
        sim.active_clear = active_clear;

        let ops = d.u64()?;
        let near_fs = d.u64()?;
        let n_near = d.len(17)?;
        let mut near = Vec::with_capacity(n_near);
        for _ in 0..n_near {
            near.push(dec_cal_entry(&mut d, n_sigs, n_procs)?);
        }
        let n_far = d.len(17)?;
        let mut far = Vec::with_capacity(n_far);
        for _ in 0..n_far {
            far.push(dec_cal_entry(&mut d, n_sigs, n_procs)?);
        }
        sim.calendar = Calendar::from_parts(near_fs, near, far, ops);

        if d.remaining() != 0 {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after state",
                d.remaining()
            )));
        }
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use std::cell::RefCell;

    use ag_harness::{check_eq, forall, Config};

    use super::*;
    use crate::equiv::{gen_program, snapshot as observe, Snapshot as Observed};
    use crate::io::Vcd;
    use crate::sim::{RunOutcome, SimError, SimStats};

    /// The uninterrupted oracle: two slices on one simulator, full
    /// [`SimStats`] alongside the observable snapshot.
    fn run_oracle(
        prog: &Program,
        deadline: Time,
        cut: u64,
        rest: u64,
        backend: Backend,
    ) -> (Observed, SimStats) {
        let (n_sigs, n_procs) = (prog.signals.len(), prog.processes.len());
        let vcd = RefCell::new(Vcd::new("1fs"));
        let vcd_ref = &vcd;
        let mut sim = Simulator::new(prog.clone());
        sim.set_backend(backend);
        sim.observe(Box::new(move |t, sig, name, v| {
            vcd_ref.borrow_mut().change(t, sig, name, v);
        }));
        let mut outcome = sim.run_slice(deadline, cut, &mut || false);
        if matches!(outcome, Ok(RunOutcome::CycleBudget)) {
            outcome = sim.run_slice(deadline, rest, &mut || false);
        }
        let stats = sim.stats();
        let obs = observe(&sim, &outcome, vcd.borrow().finish(), n_sigs, n_procs);
        (obs, stats)
    }

    /// The resumed leg: run the first slice, checkpoint (kernel state plus
    /// VCD writer state), tear everything down, restore into a brand-new
    /// simulator and writer, run the second slice there.
    fn run_checkpointed(
        prog: &Program,
        deadline: Time,
        cut: u64,
        rest: u64,
        backend: Backend,
    ) -> (Observed, SimStats, Vec<u8>) {
        let (n_sigs, n_procs) = (prog.signals.len(), prog.processes.len());
        let vcd = RefCell::new(Vcd::new("1fs"));
        let (kernel_bytes, vcd_bytes, first) = {
            let vcd_ref = &vcd;
            let mut sim = Simulator::new(prog.clone());
            sim.set_backend(backend);
            sim.observe(Box::new(move |t, sig, name, v| {
                vcd_ref.borrow_mut().change(t, sig, name, v);
            }));
            let outcome = sim.run_slice(deadline, cut, &mut || false);
            if outcome.is_err() {
                // The design failed inside the first slice; a failed run
                // refuses to checkpoint, so the comparison is direct.
                let stats = sim.stats();
                let obs = observe(&sim, &outcome, vcd.borrow().finish(), n_sigs, n_procs);
                return (obs, stats, Vec::new());
            }
            let kernel = sim.checkpoint().expect("checkpoint of a healthy run");
            let mut e = Enc::new();
            vcd.borrow().encode(&mut e);
            (kernel, e.into_bytes(), outcome)
        };

        let vcd2 = RefCell::new(Vcd::decode(&mut Dec::new(&vcd_bytes)).expect("vcd state"));
        let vcd2_ref = &vcd2;
        let mut sim2 = Simulator::restore(prog.clone(), &kernel_bytes).expect("restore");
        sim2.observe(Box::new(move |t, sig, name, v| {
            vcd2_ref.borrow_mut().change(t, sig, name, v);
        }));
        let outcome = if matches!(first, Ok(RunOutcome::CycleBudget)) {
            sim2.run_slice(deadline, rest, &mut || false)
        } else {
            first
        };
        let stats = sim2.stats();
        let obs = observe(&sim2, &outcome, vcd2.borrow().finish(), n_sigs, n_procs);
        drop(sim2);
        (obs, stats, kernel_bytes)
    }

    /// The tentpole property: a run checkpointed mid-flight and restored
    /// into a fresh simulator is byte-identical — VCD text, the full
    /// statistics block (scheduler-introspection counters included), and
    /// the Name Server's per-object event/resumption counters — to the
    /// same run left uninterrupted, under both backends.
    #[test]
    fn checkpoint_restore_is_byte_identical_to_uninterrupted() {
        forall!(
            Config::new("checkpoint_restore_is_byte_identical").cases(96),
            |s| {
                let prog = gen_program(s);
                let deadline = Time::fs(s.u64_in(5, 60));
                let total = s.u64_in(20, 300);
                let cut = s.u64_in(1, total - 1);
                let backend = if s.bool() {
                    Backend::Compiled
                } else {
                    Backend::Interp
                };
                let (oracle, oracle_stats) = run_oracle(&prog, deadline, cut, total - cut, backend);
                let (resumed, resumed_stats, _) =
                    run_checkpointed(&prog, deadline, cut, total - cut, backend);
                check_eq!(resumed, oracle, "restored run vs uninterrupted oracle");
                check_eq!(
                    resumed_stats,
                    oracle_stats,
                    "full SimStats incl. calendar_ops/woken_procs/scanned_signals"
                );
            }
        );
    }

    /// Corruption rejection: every truncation of a real snapshot and a
    /// byte flip at every position must come back as a diagnostic, never
    /// a panic and never an `Ok`.
    #[test]
    fn corrupted_and_truncated_snapshots_are_rejected() {
        forall!(
            Config::new("corrupted_snapshots_are_rejected").cases(24),
            |s| {
                let prog = gen_program(s);
                let mut sim = Simulator::new(prog.clone());
                let _ = sim.run_slice(Time::fs(30), s.u64_in(1, 50), &mut || false);
                let Ok(bytes) = sim.checkpoint() else {
                    // The generated design failed (assertion/overflow):
                    // refusal is itself the contract under test.
                    return Ok(());
                };
                // Sanity: the untouched snapshot restores.
                Simulator::restore(prog.clone(), &bytes).expect("pristine snapshot restores");
                // Every truncation is rejected.
                let step = (bytes.len() / 64).max(1);
                for cut in (0..bytes.len()).step_by(step) {
                    let r = Simulator::restore(prog.clone(), &bytes[..cut]);
                    check_eq!(r.is_err(), true, "truncated at {cut} must be rejected");
                }
                // Every single-byte flip is rejected (the checksum seals
                // the whole image).
                for pos in (0..bytes.len()).step_by(step) {
                    let mut bad = bytes.clone();
                    bad[pos] ^= 0x5a;
                    let r = Simulator::restore(prog.clone(), &bad);
                    check_eq!(r.is_err(), true, "flip at {pos} must be rejected");
                }
            }
        );
    }

    /// A snapshot only restores into the design it came from.
    #[test]
    fn snapshot_refuses_a_different_program() {
        let mk = |names: [&str; 2]| {
            let mut p = Program::default();
            let a = p.add_signal(names[0], Val::Int(0));
            p.add_process(
                names[1],
                0,
                vec![
                    crate::isa::Insn::PushInt(1),
                    crate::isa::Insn::PushInt(2),
                    crate::isa::Insn::Sched {
                        sig: a,
                        transport: false,
                    },
                    crate::isa::Insn::PushInt(3),
                    crate::isa::Insn::Wait {
                        sens: Arc::new(vec![a]),
                        with_timeout: true,
                    },
                    crate::isa::Insn::Pop,
                    crate::isa::Insn::Jump(0),
                ],
            );
            p.finalize_sensitivity();
            p
        };
        let prog = mk(["top.a", "top.p"]);
        let other = mk(["top.b", "top.p"]);
        let mut sim = Simulator::new(prog.clone());
        sim.run_slice(Time::fs(10), 5, &mut || false).unwrap();
        let bytes = sim.checkpoint().unwrap();
        assert!(matches!(
            Simulator::restore(other, &bytes),
            Err(SnapshotError::ProgramMismatch)
        ));
        assert!(Simulator::restore(prog, &bytes).is_ok());
    }

    /// A failed simulation refuses to checkpoint: its state is not a
    /// resumable suspension image.
    #[test]
    fn failed_simulation_refuses_to_checkpoint() {
        let mut p = Program::default();
        p.add_process(
            "top.div",
            0,
            vec![
                crate::isa::Insn::PushInt(1),
                crate::isa::Insn::PushInt(0),
                crate::isa::Insn::Binop(crate::rts::Op::Div),
                crate::isa::Insn::Pop,
                crate::isa::Insn::Halt,
            ],
        );
        p.finalize_sensitivity();
        let mut sim = Simulator::new(p);
        assert!(matches!(
            sim.run_slice(Time::fs(10), 10, &mut || false),
            Err(SimError::Runtime { .. })
        ));
        assert!(matches!(sim.checkpoint(), Err(SnapshotError::Failed(_))));
    }

    /// Version and magic gates fire before anything else is believed.
    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let mut p = Program::default();
        p.add_signal("top.a", Val::Int(0));
        p.finalize_sensitivity();
        let mut sim = Simulator::new(p.clone());
        let bytes = sim.checkpoint().unwrap();

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        // Re-seal so only the magic is wrong.
        let mut e = Enc::new();
        e.buf
            .extend_from_slice(&wrong_magic[..wrong_magic.len() - 8]);
        match Simulator::restore(p.clone(), &e.seal()) {
            Err(SnapshotError::BadMagic) => {}
            Err(other) => panic!("expected BadMagic, got {other:?}"),
            Ok(_) => panic!("expected BadMagic, got Ok"),
        }

        let mut wrong_version = bytes.clone();
        wrong_version[4..8].copy_from_slice(&99u32.to_le_bytes());
        let mut e = Enc::new();
        e.buf
            .extend_from_slice(&wrong_version[..wrong_version.len() - 8]);
        match Simulator::restore(p, &e.seal()) {
            Err(SnapshotError::BadVersion(99)) => {}
            Err(other) => panic!("expected BadVersion(99), got {other:?}"),
            Ok(_) => panic!("expected BadVersion(99), got Ok"),
        }
    }
}
