//! Event-driven scheduling structures: the pending-event calendar and the
//! static sensitivity index.
//!
//! The seed kernel found the next simulation time by scanning every driver
//! of every signal and every suspended process — O(design size) per cycle.
//! The structures here make both lookups O(activity):
//!
//! - [`Calendar`] is a time-ordered queue of pending instants, split into
//!   a *near* bucket (entries at the current femtosecond, including delta
//!   cycles — an unsorted vector swept linearly, since delta traffic is
//!   bursty and short-lived) and a *far* min-heap (entries at future
//!   instants). Entries are append-only and lazily invalidated: transaction
//!   preemption and early process resumption leave stale entries behind,
//!   and the consumer filters them against live kernel state instead of
//!   searching the queue.
//! - [`SensIndex`] inverts the processes' static wait sensitivities into a
//!   `SigId → processes` table at elaboration time, so a cycle's event set
//!   wakes only the processes that could care, not all of them.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::isa::{Insn, Program, SigId};
use crate::value::Time;

/// What a calendar entry announces.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub(crate) enum CalKind {
    /// The front transaction of driver `di` of signal `sig` matures.
    Driver {
        /// Signal index.
        sig: u32,
        /// Driver index within the signal.
        di: u32,
    },
    /// Process `proc`'s wait timeout expires.
    Timeout {
        /// Process index.
        proc: u32,
    },
}

/// One pending instant. `time` is the leading field so the derived order
/// (and therefore the far heap) is time-ordered.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub(crate) struct CalEntry {
    /// When the entry fires.
    pub time: Time,
    /// What fires.
    pub kind: CalKind,
}

/// The pending-event calendar (see module docs).
pub(crate) struct Calendar {
    /// Entries at femtosecond `near_fs` (any delta), unsorted.
    near: Vec<CalEntry>,
    /// The femtosecond the near bucket covers (tracks current time).
    near_fs: u64,
    /// Entries at later femtoseconds, min-first.
    far: BinaryHeap<Reverse<CalEntry>>,
    /// Pushes plus removals (the `calendar_ops` statistic).
    pub ops: u64,
}

impl Calendar {
    pub fn new() -> Calendar {
        Calendar {
            near: Vec::new(),
            near_fs: 0,
            far: BinaryHeap::new(),
            ops: 0,
        }
    }

    /// Appends an entry. Entries are never pushed for past femtoseconds
    /// (delays are non-negative), so anything not at `near_fs` is far.
    pub fn push(&mut self, time: Time, kind: CalKind) {
        self.ops += 1;
        let e = CalEntry { time, kind };
        if time.fs == self.near_fs {
            self.near.push(e);
        } else {
            self.far.push(Reverse(e));
        }
    }

    /// Moves the near bucket to a new femtosecond. Any entry still in it
    /// is provably stale: time only advances past a femtosecond once no
    /// valid entry remains there.
    pub fn advance_fs(&mut self, fs: u64) {
        if fs != self.near_fs {
            self.ops += self.near.len() as u64;
            self.near.clear();
            self.near_fs = fs;
        }
    }

    /// The earliest entry time for which `is_valid` holds, discarding
    /// stale entries on the way (near bucket: full sweep; far heap: pops
    /// until the top is valid).
    pub fn min_valid(&mut self, is_valid: impl Fn(&CalEntry) -> bool) -> Option<Time> {
        let mut best: Option<Time> = None;
        let mut i = 0;
        while i < self.near.len() {
            let e = self.near[i];
            if is_valid(&e) {
                best = Some(best.map_or(e.time, |b| b.min(e.time)));
                i += 1;
            } else {
                self.near.swap_remove(i);
                self.ops += 1;
            }
        }
        while let Some(Reverse(top)) = self.far.peek() {
            if is_valid(top) {
                let t = top.time;
                best = Some(best.map_or(t, |b| b.min(t)));
                break;
            }
            self.far.pop();
            self.ops += 1;
        }
        best
    }

    /// Snapshot view for [`crate::snapshot`]: the near-bucket femtosecond,
    /// the near entries (order is not observable: due entries are sorted
    /// and deduplicated downstream), and the far entries extracted in
    /// ascending time order. Entries are serialized verbatim — including
    /// stale far entries buried under valid ones — because normalizing
    /// them out would change when their lazy-invalidation `ops` are
    /// counted versus an uninterrupted run.
    pub fn parts(&self) -> (u64, &[CalEntry], Vec<CalEntry>) {
        let mut far: Vec<CalEntry> = self.far.iter().map(|Reverse(e)| *e).collect();
        far.sort_unstable();
        (self.near_fs, &self.near, far)
    }

    /// Rebuilds a calendar from snapshot parts. Equal entries are
    /// bit-identical (`CalEntry` is `Copy` + totally ordered), so heap
    /// pop order among ties is observationally the same as the original.
    pub fn from_parts(near_fs: u64, near: Vec<CalEntry>, far: Vec<CalEntry>, ops: u64) -> Calendar {
        Calendar {
            near,
            near_fs,
            far: far.into_iter().map(Reverse).collect(),
            ops,
        }
    }

    /// Removes every entry due at or before `now`, splitting them into
    /// driver maturations and timeout candidates. Stale entries among them
    /// are harmless: the kernel re-checks both kinds against live state.
    pub fn pop_due(&mut self, now: Time, drivers: &mut Vec<(u32, u32)>, timeouts: &mut Vec<u32>) {
        let mut i = 0;
        while i < self.near.len() {
            if self.near[i].time <= now {
                let e = self.near.swap_remove(i);
                self.ops += 1;
                match e.kind {
                    CalKind::Driver { sig, di } => drivers.push((sig, di)),
                    CalKind::Timeout { proc } => timeouts.push(proc),
                }
            } else {
                i += 1;
            }
        }
        while self.far.peek().is_some_and(|Reverse(e)| e.time <= now) {
            let Reverse(e) = self.far.pop().expect("peeked");
            self.ops += 1;
            match e.kind {
                CalKind::Driver { sig, di } => drivers.push((sig, di)),
                CalKind::Timeout { proc } => timeouts.push(proc),
            }
        }
    }
}

/// The static sensitivity index: for each signal, the processes whose
/// execution can reach a `wait` naming it (directly or through called
/// subprograms). Also carries the inverse-direction *drives* table — the
/// signals each process can schedule a transaction on — which the
/// parallel scheduler unions with the sensitivity sets to partition a
/// cycle's ready set by signal connectivity.
pub(crate) struct SensIndex {
    /// Process indices sensitive to each signal, ascending.
    by_sig: Vec<Vec<u32>>,
    /// Each process's full static sensitivity set, ascending (surfaced
    /// for inspection).
    per_proc: Vec<Arc<Vec<SigId>>>,
    /// Each process's driven-signal set (targets of `Sched`/`SchedIndex`
    /// reachable from its code), ascending.
    drives: Vec<Vec<SigId>>,
    /// Signal count (partitioner scratch sizing).
    n_signals: usize,
}

impl SensIndex {
    /// Builds the index, preferring elaboration-time metadata
    /// ([`crate::isa::ProcessDecl::static_sens`]) and falling back to a
    /// code walk for hand-built programs.
    pub fn build(program: &Program) -> SensIndex {
        let computed: Vec<Option<Vec<SigId>>> =
            if program.processes.iter().all(|p| p.static_sens.is_some()) {
                vec![None; program.processes.len()]
            } else {
                static_sensitivity(program).into_iter().map(Some).collect()
            };
        let per_proc: Vec<Arc<Vec<SigId>>> = program
            .processes
            .iter()
            .zip(computed)
            .map(|(p, c)| match (&p.static_sens, c) {
                (Some(s), _) => Arc::clone(s),
                (None, Some(c)) => Arc::new(c),
                (None, None) => unreachable!("fallback covers every process"),
            })
            .collect();
        let mut by_sig = vec![Vec::new(); program.signals.len()];
        for (pi, sens) in per_proc.iter().enumerate() {
            for s in sens.iter() {
                if let Some(procs) = by_sig.get_mut(s.0 as usize) {
                    procs.push(pi as u32);
                }
            }
        }
        SensIndex {
            by_sig,
            per_proc,
            drives: static_drives(program),
            n_signals: program.signals.len(),
        }
    }

    /// Processes statically sensitive to signal `sig`.
    pub fn watchers(&self, sig: usize) -> &[u32] {
        &self.by_sig[sig]
    }

    /// A process's full static sensitivity set.
    pub fn of_proc(&self, pi: usize) -> &[SigId] {
        &self.per_proc[pi]
    }

    /// A process's full driven-signal set.
    pub fn drives_of(&self, pi: usize) -> &[SigId] {
        &self.drives[pi]
    }

    /// The signal count the index was built over.
    pub fn n_signals(&self) -> usize {
        self.n_signals
    }
}

/// A deterministic partitioner for one delta cycle's ready set. Processes
/// are grouped by connectivity over their static signal footprints
/// (sensitivity ∪ driven signals, from [`SensIndex`]) with a union-find,
/// then connected clusters are placed greedily on the least-loaded worker.
/// Clusters larger than the per-worker cap spill onto other workers — this
/// is *safe*, not just tolerated: workers buffer every side effect and the
/// coordinator commits at the cycle barrier in seed scan order, so the
/// assignment only steers locality and balance, never semantics.
///
/// The assignment is a pure function of `(ready, sens, jobs)`: ties break
/// toward the lowest position / lowest worker index, so a given design
/// partitions identically on every host and every run.
pub(crate) struct Partitioner {
    /// Round stamp for the per-signal scratch (avoids clearing).
    stamp: u32,
    /// Per-signal: stamp of the round that last touched it.
    sig_stamp: Vec<u32>,
    /// Per-signal: first ready-position that touched it this round.
    sig_owner: Vec<u32>,
    /// Union-find parents over ready positions.
    parent: Vec<u32>,
    /// Per-root: stamp + assigned worker for this round.
    comp_stamp: Vec<u32>,
    comp_worker: Vec<u32>,
    /// Per-worker process count this round.
    load: Vec<u32>,
}

/// Union-find root with path halving; the root is always the smallest
/// position in its component (unions parent the larger root under the
/// smaller), which keeps the traversal deterministic.
fn uf_find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        parent[x as usize] = parent[parent[x as usize] as usize];
        x = parent[x as usize];
    }
    x
}

fn uf_union(parent: &mut [u32], a: u32, b: u32) {
    let (ra, rb) = (uf_find(parent, a), uf_find(parent, b));
    if ra != rb {
        let (lo, hi) = (ra.min(rb), ra.max(rb));
        parent[hi as usize] = lo;
    }
}

impl Partitioner {
    pub fn new() -> Partitioner {
        Partitioner {
            stamp: 0,
            sig_stamp: Vec::new(),
            sig_owner: Vec::new(),
            parent: Vec::new(),
            comp_stamp: Vec::new(),
            comp_worker: Vec::new(),
            load: Vec::new(),
        }
    }

    /// Assigns each ready process a worker in `0..jobs`, writing `out[i]`
    /// for `ready[i]`. `ready` is in ascending process order (the seed
    /// scan order), so each worker's chunk is too.
    pub fn assign(&mut self, ready: &[u32], sens: &SensIndex, jobs: usize, out: &mut Vec<u32>) {
        let n = ready.len();
        out.clear();
        out.resize(n, 0);
        if jobs <= 1 || n < 2 {
            return;
        }
        if self.sig_stamp.len() < sens.n_signals() {
            self.sig_stamp.resize(sens.n_signals(), 0);
            self.sig_owner.resize(sens.n_signals(), 0);
        }
        if self.stamp == u32::MAX {
            self.sig_stamp.fill(0);
            self.comp_stamp.fill(0);
            self.stamp = 0;
        }
        self.stamp += 1;
        let stamp = self.stamp;
        self.parent.clear();
        self.parent.extend(0..n as u32);
        if self.comp_stamp.len() < n {
            self.comp_stamp.resize(n, 0);
            self.comp_worker.resize(n, 0);
        }
        // Union ready positions that share any footprint signal. The first
        // position to touch a signal becomes its owner; later toucher
        // positions union with it.
        for (i, &pid) in ready.iter().enumerate() {
            let pid = pid as usize;
            for list in [sens.of_proc(pid), sens.drives_of(pid)] {
                for s in list {
                    let si = s.0 as usize;
                    if self.sig_stamp[si] == stamp {
                        uf_union(&mut self.parent, i as u32, self.sig_owner[si]);
                    } else {
                        self.sig_stamp[si] = stamp;
                        self.sig_owner[si] = i as u32;
                    }
                }
            }
        }
        // Greedy placement in position order: keep a component on its
        // assigned worker while that worker has room, else (re)place on
        // the least-loaded worker (lowest index wins ties).
        let cap = (n.div_ceil(jobs)).max(1) as u32;
        self.load.clear();
        self.load.resize(jobs, 0);
        for i in 0..n {
            let r = uf_find(&mut self.parent, i as u32) as usize;
            let keep = self.comp_stamp[r] == stamp && self.load[self.comp_worker[r] as usize] < cap;
            let w = if keep {
                self.comp_worker[r]
            } else {
                let mut best = 0u32;
                for (wi, &l) in self.load.iter().enumerate() {
                    if l < self.load[best as usize] {
                        best = wi as u32;
                    }
                }
                self.comp_stamp[r] = stamp;
                self.comp_worker[r] = best;
                best
            };
            out[i] = w;
            self.load[w as usize] += 1;
        }
    }
}

/// Collects the `Wait` sensitivities and `Call` targets of one code
/// sequence.
fn scan_code(code: &[Insn], waits: &mut Vec<SigId>, callees: &mut Vec<u32>) {
    for insn in code {
        match insn {
            Insn::Wait { sens, .. } => waits.extend(sens.iter().copied()),
            Insn::Call(f) => callees.push(f.0),
            _ => {}
        }
    }
}

/// Per-process static sensitivity: the union of every `wait` sensitivity
/// set the process's code can reach, including waits inside called
/// procedures (computed as a fixpoint over the call graph, so mutual
/// recursion converges). Sets come back sorted and deduplicated.
pub(crate) fn static_sensitivity(program: &Program) -> Vec<Vec<SigId>> {
    let nf = program.functions.len();
    let mut fn_waits: Vec<Vec<SigId>> = Vec::with_capacity(nf);
    let mut fn_calls: Vec<Vec<u32>> = Vec::with_capacity(nf);
    for f in &program.functions {
        let (mut w, mut c) = (Vec::new(), Vec::new());
        scan_code(&f.code, &mut w, &mut c);
        w.sort_unstable();
        w.dedup();
        c.sort_unstable();
        c.dedup();
        fn_waits.push(w);
        fn_calls.push(c);
    }
    loop {
        let mut changed = false;
        for i in 0..nf {
            let mut add: Vec<SigId> = Vec::new();
            for &c in &fn_calls[i] {
                let Some(callee) = fn_waits.get(c as usize) else {
                    continue;
                };
                add.extend(callee.iter().filter(|s| !fn_waits[i].contains(s)));
            }
            if !add.is_empty() {
                fn_waits[i].extend(add);
                fn_waits[i].sort_unstable();
                fn_waits[i].dedup();
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    program
        .processes
        .iter()
        .map(|p| {
            let (mut w, mut c) = (Vec::new(), Vec::new());
            scan_code(&p.code, &mut w, &mut c);
            for &ci in &c {
                if let Some(callee) = fn_waits.get(ci as usize) {
                    w.extend(callee.iter().copied());
                }
            }
            w.sort_unstable();
            w.dedup();
            w
        })
        .collect()
}

/// Collects the `Sched`/`SchedIndex` targets and `Call` targets of one
/// code sequence.
fn scan_drives(code: &[Insn], drives: &mut Vec<SigId>, callees: &mut Vec<u32>) {
    for insn in code {
        match insn {
            Insn::Sched { sig, .. } | Insn::SchedIndex { sig, .. } => drives.push(*sig),
            Insn::Call(f) => callees.push(f.0),
            _ => {}
        }
    }
}

/// Per-process driven-signal sets: the union of every `Sched` target the
/// process's code can reach, including schedules inside called
/// subprograms (fixpoint over the call graph, mirroring
/// [`static_sensitivity`]). Sets come back sorted and deduplicated.
pub(crate) fn static_drives(program: &Program) -> Vec<Vec<SigId>> {
    let nf = program.functions.len();
    let mut fn_drives: Vec<Vec<SigId>> = Vec::with_capacity(nf);
    let mut fn_calls: Vec<Vec<u32>> = Vec::with_capacity(nf);
    for f in &program.functions {
        let (mut d, mut c) = (Vec::new(), Vec::new());
        scan_drives(&f.code, &mut d, &mut c);
        d.sort_unstable();
        d.dedup();
        c.sort_unstable();
        c.dedup();
        fn_drives.push(d);
        fn_calls.push(c);
    }
    loop {
        let mut changed = false;
        for i in 0..nf {
            let mut add: Vec<SigId> = Vec::new();
            for &c in &fn_calls[i] {
                let Some(callee) = fn_drives.get(c as usize) else {
                    continue;
                };
                add.extend(callee.iter().filter(|s| !fn_drives[i].contains(s)));
            }
            if !add.is_empty() {
                fn_drives[i].extend(add);
                fn_drives[i].sort_unstable();
                fn_drives[i].dedup();
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    program
        .processes
        .iter()
        .map(|p| {
            let (mut d, mut c) = (Vec::new(), Vec::new());
            scan_drives(&p.code, &mut d, &mut c);
            for &ci in &c {
                if let Some(callee) = fn_drives.get(ci as usize) {
                    d.extend(callee.iter().copied());
                }
            }
            d.sort_unstable();
            d.dedup();
            d
        })
        .collect()
}

impl Program {
    /// Computes and stores each process's static sensitivity set
    /// ([`crate::isa::ProcessDecl::static_sens`]). The elaborator calls
    /// this once per design so simulators built from the same program
    /// (server re-runs, batch workers) skip the code walk.
    pub fn finalize_sensitivity(&mut self) {
        let sens = static_sensitivity(self);
        for (p, s) in self.processes.iter_mut().zip(sens) {
            p.static_sens = Some(Arc::new(s));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::FnDecl;
    use crate::value::Val;

    #[test]
    fn calendar_near_far_and_stale_sweep() {
        let mut cal = Calendar::new();
        cal.push(Time::fs(0).next_delta(), CalKind::Timeout { proc: 0 });
        cal.push(Time::fs(5), CalKind::Driver { sig: 1, di: 0 });
        cal.push(Time::fs(3), CalKind::Driver { sig: 2, di: 0 });
        // All valid: min is the delta entry at the current instant.
        assert_eq!(cal.min_valid(|_| true), Some(Time::fs(0).next_delta()));
        // Invalidate the near entry: min comes from the far heap.
        assert_eq!(
            cal.min_valid(|e| !matches!(e.kind, CalKind::Timeout { .. })),
            Some(Time::fs(3))
        );
        // The stale near entry was swept.
        assert_eq!(cal.near.len(), 0);
        let (mut d, mut t) = (Vec::new(), Vec::new());
        cal.advance_fs(3);
        cal.pop_due(Time::fs(3), &mut d, &mut t);
        assert_eq!(d, [(2, 0)]);
        assert!(t.is_empty());
        assert_eq!(cal.min_valid(|_| true), Some(Time::fs(5)));
    }

    #[test]
    fn calendar_fs_advance_drops_near() {
        let mut cal = Calendar::new();
        cal.push(Time::ZERO, CalKind::Driver { sig: 0, di: 0 });
        cal.push(Time::fs(9), CalKind::Driver { sig: 1, di: 0 });
        cal.advance_fs(9);
        assert_eq!(cal.min_valid(|_| true), Some(Time::fs(9)));
        let (mut d, mut t) = (Vec::new(), Vec::new());
        cal.pop_due(Time::fs(9), &mut d, &mut t);
        assert_eq!(d, [(1, 0)]);
    }

    #[test]
    fn sensitivity_reaches_through_calls() {
        let mut p = Program::default();
        let a = p.add_signal("a", Val::Int(0));
        let b = p.add_signal("b", Val::Int(0));
        // Procedure 1 waits on b; procedure 0 calls procedure 1.
        let f1 = p.add_function(FnDecl {
            name: "inner".into(),
            n_params: 0,
            n_locals: 0,
            code: Arc::new(vec![
                Insn::Wait {
                    sens: Arc::new(vec![b]),
                    with_timeout: false,
                },
                Insn::Ret { has_value: false },
            ]),
            level: 1,
        });
        p.add_function(FnDecl {
            name: "outer".into(),
            n_params: 0,
            n_locals: 0,
            code: Arc::new(vec![Insn::Call(f1), Insn::Ret { has_value: false }]),
            level: 1,
        });
        p.add_process(
            "p0",
            0,
            vec![
                Insn::Call(crate::isa::FnId(1)),
                Insn::Wait {
                    sens: Arc::new(vec![a]),
                    with_timeout: false,
                },
                Insn::Halt,
            ],
        );
        p.add_process("p1", 0, vec![Insn::Halt]);
        let sens = static_sensitivity(&p);
        assert_eq!(sens[0], vec![a, b]);
        assert!(sens[1].is_empty());
        p.finalize_sensitivity();
        let idx = SensIndex::build(&p);
        assert_eq!(idx.watchers(a.0 as usize), [0]);
        assert_eq!(idx.watchers(b.0 as usize), [0]);
        assert_eq!(idx.of_proc(0), &[a, b]);
    }

    #[test]
    fn drives_reach_through_calls() {
        let mut p = Program::default();
        let a = p.add_signal("a", Val::Int(0));
        let b = p.add_signal("b", Val::Int(0));
        // A procedure that schedules on b; process 0 calls it and also
        // drives a directly. Process 1 drives nothing.
        let f = p.add_function(FnDecl {
            name: "drv".into(),
            n_params: 0,
            n_locals: 0,
            code: Arc::new(vec![
                Insn::PushInt(1),
                Insn::PushInt(0),
                Insn::Sched {
                    sig: b,
                    transport: false,
                },
                Insn::Ret { has_value: false },
            ]),
            level: 1,
        });
        p.add_process(
            "p0",
            0,
            vec![
                Insn::Call(f),
                Insn::PushInt(1),
                Insn::PushInt(0),
                Insn::SchedIndex {
                    sig: a,
                    transport: true,
                },
                Insn::Halt,
            ],
        );
        p.add_process("p1", 0, vec![Insn::Halt]);
        let drives = static_drives(&p);
        assert_eq!(drives[0], vec![a, b]);
        assert!(drives[1].is_empty());
        p.finalize_sensitivity();
        let idx = SensIndex::build(&p);
        assert_eq!(idx.drives_of(0), &[a, b]);
        assert!(idx.drives_of(1).is_empty());
    }

    /// Builds a program of `n` processes where process `i` waits on signal
    /// `i` and drives signal `drive(i)`.
    fn footprint_program(n: usize, drive: impl Fn(usize) -> usize) -> Program {
        let mut p = Program::default();
        let sigs: Vec<SigId> = (0..n)
            .map(|i| p.add_signal(&format!("s{i}"), Val::Int(0)))
            .collect();
        for i in 0..n {
            p.add_process(
                &format!("p{i}"),
                0,
                vec![
                    Insn::PushInt(1),
                    Insn::PushInt(0),
                    Insn::Sched {
                        sig: sigs[drive(i)],
                        transport: false,
                    },
                    Insn::Wait {
                        sens: Arc::new(vec![sigs[i]]),
                        with_timeout: false,
                    },
                    Insn::Jump(0),
                ],
            );
        }
        p.finalize_sensitivity();
        p
    }

    #[test]
    fn partitioner_spreads_disjoint_processes() {
        // Each process touches only its own signal: 8 singleton
        // components over 4 workers → 2 per worker, assignment is a pure
        // function of position.
        let p = footprint_program(8, |i| i);
        let idx = SensIndex::build(&p);
        let ready: Vec<u32> = (0..8).collect();
        let mut part = Partitioner::new();
        let mut out = Vec::new();
        part.assign(&ready, &idx, 4, &mut out);
        let mut load = [0u32; 4];
        for &w in &out {
            load[w as usize] += 1;
        }
        assert_eq!(load, [2, 2, 2, 2]);
        // Deterministic across repeated calls (scratch reuse).
        let mut out2 = Vec::new();
        part.assign(&ready, &idx, 4, &mut out2);
        assert_eq!(out, out2);
    }

    #[test]
    fn partitioner_clusters_shared_signal() {
        // Processes 0..4 all drive signal 0 (one component); 4..8 are
        // disjoint. The shared cluster fills one worker to its cap of 2
        // and spills — drivers of one signal MAY land on different
        // workers, which is safe because effects are buffered.
        let p = footprint_program(8, |i| if i < 4 { 0 } else { i });
        let idx = SensIndex::build(&p);
        let ready: Vec<u32> = (0..8).collect();
        let mut part = Partitioner::new();
        let mut out = Vec::new();
        part.assign(&ready, &idx, 4, &mut out);
        // Positions 0 and 1 share a worker (same component, under cap).
        assert_eq!(out[0], out[1]);
        // The spill keeps every worker at the cap.
        let mut load = [0u32; 4];
        for &w in &out {
            load[w as usize] += 1;
        }
        assert_eq!(load, [2, 2, 2, 2]);
    }

    #[test]
    fn partitioner_jobs_one_is_trivial() {
        let p = footprint_program(3, |i| i);
        let idx = SensIndex::build(&p);
        let mut part = Partitioner::new();
        let mut out = Vec::new();
        part.assign(&[0, 1, 2], &idx, 1, &mut out);
        assert_eq!(out, [0, 0, 0]);
    }
}
