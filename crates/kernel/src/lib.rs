//! The simulation virtual machine of the reproduced VHDL compiler.
//!
//! §2.1: "The virtual machine consists of four modules: (1) Simulation
//! Kernel, (2) Runtime Support, (3) VHDL I/O, (4) Name Server."
//!
//! - [`sim`] — the Simulation Kernel: signals, drivers with projected
//!   output waveforms, delta cycles, process scheduling, and the
//!   instruction executor (with static links for up-level references,
//!   the nested-subprogram problem the paper's C back end had to solve);
//! - [`rts`] — Runtime Support: every predefined operation;
//! - [`io`] — VHDL I/O: assertion reports and VCD waveform dumps;
//! - [`names`] — the Name Server: hierarchical path names
//!   (`:tb:dut:sum`), case-insensitive per VHDL rules, with glob
//!   resolution for probe selection and inspection;
//! - [`isa`] / [`value`] — the instruction set and runtime values the
//!   code generator targets;
//! - [`snapshot`] — versioned binary checkpoints of live simulation
//!   state, so a session can suspend mid-run and resume byte-identically
//!   elsewhere.

mod compile;
pub mod io;
pub mod isa;
pub mod names;
mod par;
pub mod rts;
pub mod sched;
pub mod sim;
pub mod snapshot;
pub mod value;

#[cfg(test)]
mod equiv;

pub use isa::{ArrAttrKind, FnDecl, FnId, Insn, Program, SigAttr, SigId, VarAddr};
pub use names::{NameError, NameServer, NsEntry, NsObject};
pub use rts::{Op, RtError};
pub use sim::{Backend, ReportEvent, RunOutcome, SimError, SimStats, Simulator, TestFault};
pub use snapshot::{Dec, Enc, SnapshotError};
pub use value::{ArrVal, Time, VDir, Val};
