//! The virtual machine's instruction set and program container.
//!
//! The paper's compiler emitted C that was "combined with other elements
//! of the simulation environment"; here the generated program is a set of
//! instruction sequences executed by the kernel — "a virtual machine that
//! is configurable and programmable" (§2.1).

use std::sync::Arc;

use crate::rts::Op;
use crate::value::{VDir, Val};

/// Signal handle within a program.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SigId(pub u32);

/// Function handle within a program.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FnId(pub u32);

/// Variable address: `depth` static links up, then slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VarAddr {
    /// Frames to walk up via static links (0 = current frame).
    pub depth: u8,
    /// Slot within the frame.
    pub slot: u16,
}

/// One instruction of the stack machine.
#[derive(Clone, Debug)]
pub enum Insn {
    /// Push an integer constant.
    PushInt(i64),
    /// Push a real constant.
    PushReal(f64),
    /// Push a (shared) constant value.
    PushConst(Val),
    /// Pop `n` values, push an array with the given bounds.
    MakeArr {
        /// Element count.
        n: u16,
        /// Left bound.
        left: i64,
        /// Direction.
        dir: VDir,
    },
    /// Pop `n` values, push a record.
    MakeRec {
        /// Field count.
        n: u16,
    },
    /// Load a variable.
    LoadVar(VarAddr),
    /// Store the top of stack into a variable.
    StoreVar(VarAddr),
    /// Store into an element: pops `value`, `index`.
    StoreVarIndex(VarAddr),
    /// Store into a record field: pops `value`.
    StoreVarField(VarAddr, u16),
    /// Push a signal's effective value.
    LoadSig(SigId),
    /// Push a signal attribute (`'event`, `'active`, `'last_value`).
    LoadSigAttr(SigId, SigAttr),
    /// Pop `index`, `array`; push the element (bounds-checked).
    Index,
    /// Pop `right`, `left`, `array`; push the slice.
    Slice(VDir),
    /// Push record field `i` of the popped record.
    Field(u16),
    /// Pop an array; push one of its bounds/extent attributes.
    ArrAttr(ArrAttrKind),
    /// Binary runtime-support operation.
    Binop(Op),
    /// Unary runtime-support operation.
    Unop(Op),
    /// Trap unless lo ≤ top-of-stack ≤ hi (value stays).
    RangeCheck {
        /// Low bound.
        lo: i64,
        /// High bound.
        hi: i64,
    },
    /// Unconditional jump.
    Jump(u32),
    /// Pop a boolean; jump when false.
    JumpIfFalse(u32),
    /// Pop `delay_fs` (−1 = delta) then `value`; schedule a transaction on
    /// the signal.
    Sched {
        /// Target signal.
        sig: SigId,
        /// Transport (vs inertial) delay.
        transport: bool,
    },
    /// Pop `delay_fs`, `value`, `index`; schedule an element transaction.
    SchedIndex {
        /// Target signal.
        sig: SigId,
        /// Transport delay.
        transport: bool,
    },
    /// Suspend. When `with_timeout`, pops the timeout in fs first. On
    /// resume, pushes 1 if resumed by timeout, else 0.
    Wait {
        /// Sensitivity set.
        sens: Arc<Vec<SigId>>,
        /// Whether a timeout is popped.
        with_timeout: bool,
    },
    /// Call a function/procedure: pops its arguments (rightmost on top).
    Call(FnId),
    /// Return from a subprogram; functions pop their result first.
    Ret {
        /// Whether a value is returned.
        has_value: bool,
    },
    /// Pop `severity`, `report`, `condition`; emit when condition is
    /// false.
    Assert,
    /// Pop and discard.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// End the process permanently (final implicit `wait;`).
    Halt,
}

/// Array attribute kinds for [`Insn::ArrAttr`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArrAttrKind {
    /// `'length`
    Length,
    /// `'left`
    Left,
    /// `'right`
    Right,
    /// `'low`
    Low,
    /// `'high`
    High,
}

/// Signal attribute kinds for [`Insn::LoadSigAttr`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SigAttr {
    /// `'event`
    Event,
    /// `'active`
    Active,
    /// `'last_value`
    LastValue,
}

/// A declared signal.
#[derive(Clone, Debug)]
pub struct SignalDecl {
    /// Hierarchical name (name-server path).
    pub name: String,
    /// Initial (and default) value.
    pub init: Val,
    /// Resolution function for multiply-driven signals.
    pub resolution: Option<FnId>,
}

/// A process: its code plus local-variable count.
#[derive(Clone, Debug)]
pub struct ProcessDecl {
    /// Hierarchical name.
    pub name: String,
    /// Code; execution starts at 0 and loops via an explicit `Jump`.
    pub code: Arc<Vec<Insn>>,
    /// Number of local slots.
    pub n_locals: u16,
    /// Elaboration-time static sensitivity: every signal a `wait`
    /// reachable from this process (directly or through called
    /// subprograms) can name, sorted ascending. Filled by
    /// [`Program::finalize_sensitivity`]; the kernel falls back to its
    /// own code walk when absent (hand-built programs).
    pub static_sens: Option<Arc<Vec<SigId>>>,
}

/// A compiled subprogram.
#[derive(Clone, Debug)]
pub struct FnDecl {
    /// Name (diagnostics).
    pub name: String,
    /// Parameter count (occupy the first slots).
    pub n_params: u16,
    /// Total local slots (params + locals).
    pub n_locals: u16,
    /// Code.
    pub code: Arc<Vec<Insn>>,
    /// Lexical nesting level (1 = outermost subprogram).
    pub level: u16,
}

/// A complete program for the simulation kernel.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Signal table.
    pub signals: Vec<SignalDecl>,
    /// Process table.
    pub processes: Vec<ProcessDecl>,
    /// Subprogram table.
    pub functions: Vec<FnDecl>,
    /// Hierarchical region paths (instances, blocks) the elaborator
    /// visited, in elaboration order — the Name Server registers these as
    /// scopes so empty regions are still addressable.
    pub regions: Vec<String>,
}

impl Program {
    /// Adds a signal, returning its id.
    pub fn add_signal(&mut self, name: impl Into<String>, init: Val) -> SigId {
        self.signals.push(SignalDecl {
            name: name.into(),
            init,
            resolution: None,
        });
        SigId(self.signals.len() as u32 - 1)
    }

    /// Adds a process.
    pub fn add_process(&mut self, name: impl Into<String>, n_locals: u16, code: Vec<Insn>) {
        self.processes.push(ProcessDecl {
            name: name.into(),
            code: Arc::new(code),
            n_locals,
            static_sens: None,
        });
    }

    /// Adds a function, returning its id.
    pub fn add_function(&mut self, decl: FnDecl) -> FnId {
        self.functions.push(decl);
        FnId(self.functions.len() as u32 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_building() {
        let mut p = Program::default();
        let s = p.add_signal("top.clk", Val::Int(0));
        assert_eq!(s, SigId(0));
        p.add_process("top.p", 2, vec![Insn::Halt]);
        let f = p.add_function(FnDecl {
            name: "f".into(),
            n_params: 1,
            n_locals: 2,
            code: Arc::new(vec![Insn::Ret { has_value: true }]),
            level: 1,
        });
        assert_eq!(f, FnId(0));
        assert_eq!(p.signals.len(), 1);
        assert_eq!(p.processes.len(), 1);
    }
}
