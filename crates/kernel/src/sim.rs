//! The simulation kernel: signals with projected output waveforms,
//! delta cycles, process scheduling, and the instruction executor.
//!
//! Implements the VHDL simulation cycle: advance time to the next
//! transaction or timeout, update signals (resolving multiple drivers),
//! form the event set, resume sensitive processes, and execute them until
//! they all suspend — repeating at the same instant for delta cycles.
//! "Due to the preemptive nature of signal assignments in VHDL, the effect
//! of a VHDL signal assignment is not determinable at the time of the
//! execution of the assignment" (§5.1) — hence the driver queues here.

use std::collections::VecDeque;
use std::rc::Rc;

use crate::isa::{FnId, Insn, Program, SigAttr, SigId};
use crate::names::{NameError, NameServer, NsEntry, NsObject};
use crate::rts::{self, RtError};
use crate::value::{ArrVal, Time, VDir, Val};

/// Per-resumption instruction budget (runaway-loop guard).
const FUEL: u64 = 50_000_000;

/// A diagnostic emitted by `assert`/`report`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReportEvent {
    /// When.
    pub time: Time,
    /// 0 = note, 1 = warning, 2 = error, 3 = failure.
    pub severity: i64,
    /// Message text.
    pub text: String,
}

/// Cumulative kernel statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Simulation cycles executed (incl. delta cycles).
    pub cycles: u64,
    /// Delta (zero-time) cycles.
    pub delta_cycles: u64,
    /// Signal events (value changes).
    pub events: u64,
    /// Transactions matured.
    pub transactions: u64,
    /// Process resumptions.
    pub resumptions: u64,
    /// Instructions executed.
    pub insns: u64,
}

/// Simulation failure.
#[derive(Clone, Debug)]
pub enum SimError {
    /// Runtime-support error in a process.
    Runtime {
        /// Offending process name.
        process: String,
        /// The error.
        error: RtError,
    },
    /// An `assert … severity failure` fired.
    Failure(ReportEvent),
    /// A process exceeded its instruction budget.
    FuelExhausted(String),
    /// Two drivers on an unresolved signal.
    UnresolvedDrivers(String),
    /// A resolution function misbehaved (waited or returned nothing).
    BadResolution(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Runtime { process, error } => {
                write!(f, "runtime error in {process}: {error}")
            }
            SimError::Failure(r) => write!(f, "failure at {}: {}", r.time, r.text),
            SimError::FuelExhausted(p) => write!(f, "process {p} looped without suspending"),
            SimError::UnresolvedDrivers(s) => {
                write!(
                    f,
                    "signal {s} has multiple drivers but no resolution function"
                )
            }
            SimError::BadResolution(s) => write!(f, "bad resolution function on {s}"),
        }
    }
}

impl std::error::Error for SimError {}

struct Driver {
    proc: usize,
    /// Projected output waveform, time-ordered.
    tx: VecDeque<(Time, Val)>,
    /// Current driving value.
    driving: Val,
}

struct SigState {
    current: Val,
    last_value: Val,
    last_event: Option<Time>,
    event: bool,
    active: bool,
    /// Cumulative events on this signal (the Name Server's per-object
    /// counter).
    events: u64,
    drivers: Vec<Driver>,
}

struct Frame {
    code: Rc<Vec<Insn>>,
    pc: usize,
    locals: Vec<Val>,
    static_link: Option<usize>,
    level: u16,
}

enum ProcStatus {
    Ready,
    Suspended {
        sens: Rc<Vec<SigId>>,
        timeout: Option<Time>,
    },
    Halted,
}

struct ProcState {
    name: String,
    status: ProcStatus,
    frames: Vec<Frame>,
    stack: Vec<Val>,
    /// Cumulative resumptions of this process (per-object counter).
    resumptions: u64,
}

/// A value-change observer (VCD writers, test probes).
pub type Observer<'a> = Box<dyn FnMut(Time, SigId, &str, &Val) + 'a>;

/// How a bounded [`Simulator::run_slice`] ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Nothing left to do: no pending transactions or timeouts.
    Quiescent,
    /// The next event lies beyond the slice deadline.
    DeadlineReached,
    /// The per-slice cycle budget ran out with work still pending.
    CycleBudget,
    /// The cancellation hook asked to stop.
    Cancelled,
}

/// The simulator: program + live state.
pub struct Simulator<'a> {
    program: Program,
    names: NameServer,
    signals: Vec<SigState>,
    procs: Vec<ProcState>,
    now: Time,
    reports: Vec<ReportEvent>,
    stats: SimStats,
    observers: Vec<Observer<'a>>,
    failed: Option<SimError>,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator and runs every process once (elaboration-time
    /// initial execution happens on the first [`Simulator::step`]).
    pub fn new(program: Program) -> Simulator<'a> {
        let names = NameServer::from_program(&program);
        let signals = program
            .signals
            .iter()
            .map(|s| SigState {
                current: s.init.clone(),
                last_value: s.init.clone(),
                last_event: None,
                event: false,
                active: false,
                events: 0,
                drivers: Vec::new(),
            })
            .collect();
        let procs = program
            .processes
            .iter()
            .map(|p| ProcState {
                name: p.name.clone(),
                status: ProcStatus::Ready,
                frames: vec![Frame {
                    code: Rc::clone(&p.code),
                    pc: 0,
                    locals: vec![Val::Int(0); p.n_locals as usize],
                    static_link: None,
                    level: 0,
                }],
                stack: Vec::new(),
                resumptions: 0,
            })
            .collect();
        Simulator {
            program,
            names,
            signals,
            procs,
            now: Time::ZERO,
            reports: Vec::new(),
            stats: SimStats::default(),
            observers: Vec::new(),
            failed: None,
        }
    }

    /// Registers a value-change observer (called with time, signal, name,
    /// new value).
    pub fn observe(&mut self, f: Observer<'a>) {
        self.observers.push(f);
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Reports collected so far.
    pub fn reports(&self) -> &[ReportEvent] {
        &self.reports
    }

    /// Value of a signal by id.
    pub fn signal_value(&self, sig: SigId) -> &Val {
        &self.signals[sig.0 as usize].current
    }

    /// The design's hierarchical namespace (the Name Server of §2.1).
    pub fn names(&self) -> &NameServer {
        &self.names
    }

    /// The elaborated program this simulator runs.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Resolves a path name to a namespace entry (case-insensitive,
    /// `:a:b` or `a.b` spellings).
    ///
    /// # Errors
    ///
    /// [`NameError`] diagnostics for unknown paths; never panics.
    pub fn resolve(&self, path: &str) -> Result<NsEntry, NameError> {
        self.names.resolve(path)
    }

    /// Resolves a glob pattern to every matching namespace entry.
    ///
    /// # Errors
    ///
    /// [`NameError`] diagnostics for malformed patterns; never panics.
    pub fn glob(&self, pattern: &str) -> Result<Vec<NsEntry>, NameError> {
        self.names.glob(pattern)
    }

    /// Cumulative events on one signal (the per-object counter the Name
    /// Server's `inspect` surface reports).
    pub fn signal_events(&self, sig: SigId) -> u64 {
        self.signals[sig.0 as usize].events
    }

    /// Time of the signal's last event, if any.
    pub fn signal_last_event(&self, sig: SigId) -> Option<Time> {
        self.signals[sig.0 as usize].last_event
    }

    /// Cumulative resumptions of one process.
    pub fn process_resumptions(&self, proc: u32) -> u64 {
        self.procs[proc as usize].resumptions
    }

    /// Looks a signal up by its hierarchical name (the Name Server of
    /// §2.1). Case-insensitive; accepts `:a:b` and `a.b` spellings.
    pub fn signal_by_name(&self, path: &str) -> Option<SigId> {
        if let Ok(NsEntry {
            object: NsObject::Signal(s),
            ..
        }) = self.names.resolve(path)
        {
            return Some(s);
        }
        // Fallback: exact spelling match (signals whose declared names use
        // separators the path grammar folds away).
        self.program
            .signals
            .iter()
            .position(|s| s.name == path)
            .map(|i| SigId(i as u32))
    }

    /// Value by hierarchical name.
    pub fn value_by_name(&self, path: &str) -> Option<&Val> {
        self.signal_by_name(path).map(|s| self.signal_value(s))
    }

    /// All signal names, in id order.
    pub fn signal_names(&self) -> Vec<&str> {
        self.program
            .signals
            .iter()
            .map(|s| s.name.as_str())
            .collect()
    }

    /// Runs until `deadline` (inclusive) or quiescence.
    ///
    /// # Errors
    ///
    /// Stops at the first [`SimError`].
    pub fn run_until(&mut self, deadline: Time) -> Result<(), SimError> {
        self.run_slice(deadline, u64::MAX, &mut || false)
            .map(|_| ())
    }

    /// Runs a bounded slice: until `deadline` (inclusive), at most
    /// `max_cycles` simulation cycles, checking `cancel` between cycles —
    /// the incremental-stepping hook interactive drivers (the `vhdld`
    /// server's `run` request) use for per-request deadlines and
    /// cooperative cancellation. State is left consistent at every return,
    /// so a later slice picks up exactly where this one stopped.
    ///
    /// # Errors
    ///
    /// Stops at the first [`SimError`].
    pub fn run_slice(
        &mut self,
        deadline: Time,
        max_cycles: u64,
        cancel: &mut dyn FnMut() -> bool,
    ) -> Result<RunOutcome, SimError> {
        let _t = ag_harness::trace::span("simulate");
        let mut cycles: u64 = 0;
        // Initial cycle: every process runs until its first wait.
        if self.stats.cycles == 0 {
            if cancel() {
                return Ok(RunOutcome::Cancelled);
            }
            self.execute_ready()?;
            self.stats.cycles += 1;
            cycles += 1;
        }
        loop {
            let Some(next) = self.next_time() else {
                return Ok(RunOutcome::Quiescent);
            };
            if next.fs > deadline.fs {
                return Ok(RunOutcome::DeadlineReached);
            }
            if cycles >= max_cycles {
                return Ok(RunOutcome::CycleBudget);
            }
            if cancel() {
                return Ok(RunOutcome::Cancelled);
            }
            self.step_to(next)?;
            cycles += 1;
        }
    }

    /// Runs a single simulation cycle; returns `false` at quiescence.
    ///
    /// # Errors
    ///
    /// Stops at the first [`SimError`].
    pub fn step(&mut self) -> Result<bool, SimError> {
        if self.stats.cycles == 0 {
            self.execute_ready()?;
            self.stats.cycles += 1;
            return Ok(true);
        }
        match self.next_time() {
            Some(next) => {
                self.step_to(next)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn next_time(&self) -> Option<Time> {
        let mut next: Option<Time> = None;
        for sig in &self.signals {
            for d in &sig.drivers {
                if let Some((t, _)) = d.tx.front() {
                    next = Some(next.map_or(*t, |n| n.min(*t)));
                }
            }
        }
        for p in &self.procs {
            if let ProcStatus::Suspended {
                timeout: Some(t), ..
            } = &p.status
            {
                next = Some(next.map_or(*t, |n| n.min(*t)));
            }
        }
        next
    }

    fn step_to(&mut self, next: Time) -> Result<(), SimError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        self.stats.cycles += 1;
        if next.fs == self.now.fs && self.stats.cycles > 1 {
            self.stats.delta_cycles += 1;
        }
        self.now = next;
        // Clear the previous cycle's event/active flags.
        for s in self.signals.iter_mut() {
            s.event = false;
            s.active = false;
        }
        // Mature transactions and compute new signal values.
        for si in 0..self.signals.len() {
            let mut any_active = false;
            {
                let sig = &mut self.signals[si];
                for d in sig.drivers.iter_mut() {
                    while d.tx.front().is_some_and(|(t, _)| *t <= self.now) {
                        if let Some((_, v)) = d.tx.pop_front() {
                            d.driving = v;
                            any_active = true;
                            self.stats.transactions += 1;
                        }
                    }
                }
            }
            if !any_active {
                continue;
            }
            let new_val = self.effective_value(si)?;
            let sig = &mut self.signals[si];
            sig.active = true;
            if new_val != sig.current {
                sig.last_value = sig.current.clone();
                sig.current = new_val;
                sig.last_event = Some(self.now);
                sig.event = true;
                sig.events += 1;
                self.stats.events += 1;
                let name = self.program.signals[si].name.clone();
                let current = self.signals[si].current.clone();
                for obs in self.observers.iter_mut() {
                    obs(self.now, SigId(si as u32), &name, &current);
                }
            }
        }
        // Resume processes.
        for pi in 0..self.procs.len() {
            let resume = match &self.procs[pi].status {
                ProcStatus::Suspended { sens, timeout } => {
                    let timed_out = timeout.is_some_and(|t| t <= self.now);
                    let evented = sens.iter().any(|s| self.signals[s.0 as usize].event);
                    if timed_out || evented {
                        Some(timed_out && !evented)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if let Some(timed_out) = resume {
                self.procs[pi].status = ProcStatus::Ready;
                self.procs[pi].stack.push(Val::Int(timed_out as i64));
                self.procs[pi].resumptions += 1;
                self.stats.resumptions += 1;
            }
        }
        self.execute_ready()
    }

    fn effective_value(&mut self, si: usize) -> Result<Val, SimError> {
        let n_drivers = self.signals[si].drivers.len();
        let resolution = self.program.signals[si].resolution;
        match (n_drivers, resolution) {
            (0, _) => Ok(self.signals[si].current.clone()),
            (1, None) => Ok(self.signals[si].drivers[0].driving.clone()),
            (_, None) => Err(SimError::UnresolvedDrivers(
                self.program.signals[si].name.clone(),
            )),
            (_, Some(f)) => {
                // The resolution function receives the vector of driving
                // values.
                let vals: Vec<Val> = self.signals[si]
                    .drivers
                    .iter()
                    .map(|d| d.driving.clone())
                    .collect();
                let arg = Val::arr(0, VDir::To, vals);
                let name = self.program.signals[si].name.clone();
                self.call_function(f, vec![arg])
                    .map_err(|e| SimError::Runtime {
                        process: format!("resolution of {name}"),
                        error: e,
                    })
            }
        }
    }

    /// Executes every Ready process until it suspends.
    fn execute_ready(&mut self) -> Result<(), SimError> {
        for pi in 0..self.procs.len() {
            if matches!(self.procs[pi].status, ProcStatus::Ready) {
                self.run_process(pi)?;
            }
        }
        if let Some(e) = self.failed.take() {
            return Err(e);
        }
        Ok(())
    }

    /// Runs a pure function (resolution) on a scratch stack.
    fn call_function(&mut self, f: FnId, args: Vec<Val>) -> Result<Val, RtError> {
        let decl = self.program.functions[f.0 as usize].clone();
        let mut locals = vec![Val::Int(0); decl.n_locals as usize];
        for (i, a) in args.into_iter().enumerate() {
            locals[i] = a;
        }
        let mut scratch = ProcState {
            name: format!("fn {}", decl.name),
            status: ProcStatus::Ready,
            frames: vec![Frame {
                code: Rc::clone(&decl.code),
                pc: 0,
                locals,
                static_link: None,
                level: decl.level,
            }],
            stack: Vec::new(),
            resumptions: 0,
        };
        self.exec_frames(&mut scratch, true, usize::MAX)?;
        scratch
            .stack
            .pop()
            .ok_or_else(|| RtError::Internal("resolution returned no value".into()))
    }

    fn run_process(&mut self, pi: usize) -> Result<(), SimError> {
        let mut proc = std::mem::replace(
            &mut self.procs[pi],
            ProcState {
                name: String::new(),
                status: ProcStatus::Halted,
                frames: Vec::new(),
                stack: Vec::new(),
                resumptions: 0,
            },
        );
        let result = self.exec_frames(&mut proc, false, pi);
        let name = proc.name.clone();
        self.procs[pi] = proc;
        result.map_err(|error| SimError::Runtime {
            process: name,
            error,
        })?;
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        Ok(())
    }

    /// The instruction interpreter. `pure` forbids waits (resolution
    /// functions).
    #[allow(clippy::too_many_lines)]
    fn exec_frames(&mut self, proc: &mut ProcState, pure: bool, pid: usize) -> Result<(), RtError> {
        let mut fuel = FUEL;
        'outer: loop {
            let Some(frame) = proc.frames.last_mut() else {
                proc.status = ProcStatus::Halted;
                return Ok(());
            };
            if frame.pc >= frame.code.len() {
                // Falling off a subprogram = return; off a process = halt.
                if proc.frames.len() > 1 {
                    proc.frames.pop();
                    continue;
                }
                proc.status = ProcStatus::Halted;
                return Ok(());
            }
            // Cloning an Insn is cheap: every heavy payload is behind an
            // Rc (constants, sensitivity lists), so this is refcount
            // traffic, not data copies.
            let insn = frame.code[frame.pc].clone();
            frame.pc += 1;
            self.stats.insns += 1;
            fuel -= 1;
            if fuel == 0 {
                self.failed = Some(SimError::FuelExhausted(proc.name.clone()));
                proc.status = ProcStatus::Halted;
                return Ok(());
            }
            match insn {
                Insn::PushInt(v) => proc.stack.push(Val::Int(v)),
                Insn::PushReal(v) => proc.stack.push(Val::Real(v)),
                Insn::PushConst(v) => proc.stack.push(v),
                Insn::MakeArr { n, left, dir } => {
                    let at = proc.stack.len() - n as usize;
                    let data = proc.stack.split_off(at);
                    proc.stack.push(Val::arr(left, dir, data));
                }
                Insn::MakeRec { n } => {
                    let at = proc.stack.len() - n as usize;
                    let data = proc.stack.split_off(at);
                    proc.stack.push(Val::Rec(Rc::new(data)));
                }
                Insn::LoadVar(a) => {
                    let v = var_frame(proc, a.depth)?.locals[a.slot as usize].clone();
                    proc.stack.push(v);
                }
                Insn::StoreVar(a) => {
                    let v = pop(proc)?;
                    var_frame(proc, a.depth)?.locals[a.slot as usize] = v;
                }
                Insn::StoreVarIndex(a) => {
                    let v = pop(proc)?;
                    let idx = pop_int(proc)?;
                    let fr = var_frame(proc, a.depth)?;
                    let slot = &mut fr.locals[a.slot as usize];
                    *slot = store_elem(slot, idx, v)?;
                }
                Insn::StoreVarField(a, field) => {
                    let v = pop(proc)?;
                    let fr = var_frame(proc, a.depth)?;
                    let slot = &mut fr.locals[a.slot as usize];
                    if let Val::Rec(fields) = slot {
                        let mut fs = (**fields).clone();
                        fs[field as usize] = v;
                        *slot = Val::Rec(Rc::new(fs));
                    } else {
                        return Err(RtError::Internal("field store on non-record".into()));
                    }
                }
                Insn::LoadSig(s) => {
                    proc.stack.push(self.signals[s.0 as usize].current.clone());
                }
                Insn::LoadSigAttr(s, attr) => {
                    let sig = &self.signals[s.0 as usize];
                    let v = match attr {
                        SigAttr::Event => Val::Int(sig.event as i64),
                        SigAttr::Active => Val::Int(sig.active as i64),
                        SigAttr::LastValue => sig.last_value.clone(),
                    };
                    proc.stack.push(v);
                }
                Insn::Index => {
                    let idx = pop_int(proc)?;
                    let arr = pop(proc)?;
                    let a = want_arr(&arr)?;
                    let off = a.offset(idx).ok_or(RtError::IndexError { index: idx })?;
                    proc.stack.push(a.data[off].clone());
                }
                Insn::Slice(dir) => {
                    let right = pop_int(proc)?;
                    let left = pop_int(proc)?;
                    let arr = pop(proc)?;
                    let a = want_arr(&arr)?;
                    let (o1, o2) = (
                        a.offset(left).ok_or(RtError::IndexError { index: left })?,
                        a.offset(right)
                            .ok_or(RtError::IndexError { index: right })?,
                    );
                    let (lo, hi) = (o1.min(o2), o1.max(o2));
                    let data = a.data[lo..=hi].to_vec();
                    proc.stack.push(Val::arr(left, dir, data));
                }
                Insn::ArrAttr(kind) => {
                    let v = pop(proc)?;
                    let a = want_arr(&v)?;
                    let (l, r) = (a.left, a.right());
                    let out = match kind {
                        crate::isa::ArrAttrKind::Length => a.data.len() as i64,
                        crate::isa::ArrAttrKind::Left => l,
                        crate::isa::ArrAttrKind::Right => r,
                        crate::isa::ArrAttrKind::Low => l.min(r),
                        crate::isa::ArrAttrKind::High => l.max(r),
                    };
                    proc.stack.push(Val::Int(out));
                }
                Insn::Field(i) => {
                    let v = pop(proc)?;
                    match v {
                        Val::Rec(fields) => proc.stack.push(fields[i as usize].clone()),
                        _ => return Err(RtError::Internal("field on non-record".into())),
                    }
                }
                Insn::Binop(op) => {
                    let b = pop(proc)?;
                    let a = pop(proc)?;
                    proc.stack.push(rts::binop(op, &a, &b)?);
                }
                Insn::Unop(op) => {
                    let a = pop(proc)?;
                    proc.stack.push(rts::unop(op, &a)?);
                }
                Insn::RangeCheck { lo, hi } => {
                    let v = want_int(proc.stack.last().ok_or_else(underflow)?)?;
                    if v < lo || v > hi {
                        return Err(RtError::RangeError { value: v, lo, hi });
                    }
                }
                Insn::Jump(t) => {
                    proc.frames.last_mut().expect("frame").pc = t as usize;
                }
                Insn::JumpIfFalse(t) => {
                    let c = pop_int(proc)? != 0;
                    if !c {
                        proc.frames.last_mut().expect("frame").pc = t as usize;
                    }
                }
                Insn::Sched { sig, transport } => {
                    let delay = pop_int(proc)?;
                    let value = pop(proc)?;
                    self.schedule(pid, sig, value, delay, transport, None)?;
                }
                Insn::SchedIndex { sig, transport } => {
                    let delay = pop_int(proc)?;
                    let value = pop(proc)?;
                    let index = pop_int(proc)?;
                    self.schedule(pid, sig, value, delay, transport, Some(index))?;
                }
                Insn::Wait { sens, with_timeout } => {
                    if pure {
                        return Err(RtError::Internal("wait in a pure function".into()));
                    }
                    let timeout = if with_timeout {
                        let fs = pop_int(proc)?;
                        Some(self.now.plus_fs(fs.max(0) as u64))
                    } else {
                        None
                    };
                    proc.status = ProcStatus::Suspended { sens, timeout };
                    return Ok(());
                }
                Insn::Call(f) => {
                    let decl = self.program.functions[f.0 as usize].clone();
                    let at = proc.stack.len() - decl.n_params as usize;
                    let args = proc.stack.split_off(at);
                    let mut locals = vec![Val::Int(0); decl.n_locals as usize];
                    for (i, a) in args.into_iter().enumerate() {
                        locals[i] = a;
                    }
                    // Static link: nearest frame one level shallower.
                    let static_link = proc
                        .frames
                        .iter()
                        .rposition(|fr| fr.level + 1 == decl.level);
                    proc.frames.push(Frame {
                        code: Rc::clone(&decl.code),
                        pc: 0,
                        locals,
                        static_link,
                        level: decl.level,
                    });
                }
                Insn::Ret { has_value: _ } => {
                    if proc.frames.len() > 1 {
                        proc.frames.pop();
                    } else {
                        proc.status = ProcStatus::Halted;
                        return Ok(());
                    }
                }
                Insn::Assert => {
                    let severity = pop_int(proc)?;
                    let report = pop(proc)?;
                    let cond = pop_int(proc)? != 0;
                    if !cond {
                        let ev = ReportEvent {
                            time: self.now,
                            severity,
                            text: report.as_string(),
                        };
                        self.reports.push(ev.clone());
                        if severity >= 3 {
                            self.failed = Some(SimError::Failure(ev));
                            proc.status = ProcStatus::Halted;
                            return Ok(());
                        }
                    }
                }
                Insn::Pop => {
                    pop(proc)?;
                }
                Insn::Dup => {
                    let v = proc.stack.last().ok_or_else(underflow)?.clone();
                    proc.stack.push(v);
                }
                Insn::Halt => {
                    proc.status = ProcStatus::Halted;
                    return Ok(());
                }
            }
            if matches!(proc.status, ProcStatus::Halted) {
                break 'outer;
            }
        }
        Ok(())
    }

    fn schedule(
        &mut self,
        pid: usize,
        sig: SigId,
        value: Val,
        delay_fs: i64,
        transport: bool,
        index: Option<i64>,
    ) -> Result<(), RtError> {
        if delay_fs < -1 {
            // −1 is the compiler's "no delay" marker; anything more
            // negative is a model error (LRM: delays must be non-negative).
            return Err(RtError::Internal(format!(
                "negative signal-assignment delay ({delay_fs} fs)"
            )));
        }
        let t = if delay_fs <= 0 {
            self.now.next_delta()
        } else {
            self.now.plus_fs(delay_fs as u64)
        };
        let sig_state = &mut self.signals[sig.0 as usize];
        // Find or create this process's driver.
        let di = match sig_state.drivers.iter().position(|d| d.proc == pid) {
            Some(i) => i,
            None => {
                sig_state.drivers.push(Driver {
                    proc: pid,
                    tx: VecDeque::new(),
                    driving: sig_state.current.clone(),
                });
                sig_state.drivers.len() - 1
            }
        };
        // Array assignment implies a subtype conversion: the value takes
        // the target's bounds (same length required).
        let value = match (&value, &sig_state.current) {
            (Val::Arr(v), Val::Arr(t))
                if (v.left, v.dir) != (t.left, t.dir) && v.data.len() == t.data.len() =>
            {
                Val::Arr(crate::value::ArrVal {
                    left: t.left,
                    dir: t.dir,
                    data: Rc::clone(&v.data),
                })
            }
            _ => value,
        };
        let d = &mut sig_state.drivers[di];
        // Element assignment: apply to the latest scheduled (or driving)
        // whole value.
        let value = match index {
            None => value,
            Some(i) => {
                let base =
                    d.tx.back()
                        .map(|(_, v)| v.clone())
                        .unwrap_or_else(|| d.driving.clone());
                store_elem(&base, i, value)?
            }
        };
        if transport {
            // Transport: drop transactions at or after t, append.
            while d.tx.back().is_some_and(|(bt, _)| *bt >= t) {
                d.tx.pop_back();
            }
        } else {
            // Inertial (simplified VHDL-87 preemption): the new transaction
            // supersedes every pending one.
            d.tx.clear();
        }
        d.tx.push_back((t, value));
        Ok(())
    }
}

fn pop(proc: &mut ProcState) -> Result<Val, RtError> {
    proc.stack.pop().ok_or_else(underflow)
}

/// Pops an integer (enumeration position, boolean, delay). The IR is
/// typed, so a mismatch is a code-generator bug — but it must surface as
/// a per-process [`RtError`], not a panic that takes the host (a `vhdld`
/// worker, a batch thread) down with it.
fn pop_int(proc: &mut ProcState) -> Result<i64, RtError> {
    match pop(proc)? {
        Val::Int(i) => Ok(i),
        v => Err(RtError::Internal(format!("expected integer, got {v}"))),
    }
}

/// Checked view of a value as an array (see [`pop_int`] on why this is an
/// error, not a panic).
fn want_arr(v: &Val) -> Result<&ArrVal, RtError> {
    match v {
        Val::Arr(a) => Ok(a),
        v => Err(RtError::Internal(format!("expected array, got {v}"))),
    }
}

/// Checked view of a value as an integer.
fn want_int(v: &Val) -> Result<i64, RtError> {
    match v {
        Val::Int(i) => Ok(*i),
        v => Err(RtError::Internal(format!("expected integer, got {v}"))),
    }
}

fn underflow() -> RtError {
    RtError::Internal("value stack underflow".into())
}

fn var_frame<'p>(proc: &'p mut ProcState, depth: u8) -> Result<&'p mut Frame, RtError> {
    let top = proc.frames.len() - 1;
    let mut idx = top;
    for _ in 0..depth {
        idx = proc.frames[idx]
            .static_link
            .ok_or_else(|| RtError::Internal("missing static link".into()))?;
    }
    Ok(&mut proc.frames[idx])
}

/// Replaces element `idx` in an array value (copy-on-write).
fn store_elem(base: &Val, idx: i64, v: Val) -> Result<Val, RtError> {
    match base {
        Val::Arr(a) => {
            let off = a.offset(idx).ok_or(RtError::IndexError { index: idx })?;
            let mut data = (*a.data).clone();
            data[off] = v;
            Ok(Val::Arr(crate::value::ArrVal {
                left: a.left,
                dir: a.dir,
                data: Rc::new(data),
            }))
        }
        _ => Err(RtError::Internal("element store on non-array".into())),
    }
}
