//! The simulation kernel: signals with projected output waveforms,
//! delta cycles, process scheduling, and the instruction executor.
//!
//! Implements the VHDL simulation cycle: advance time to the next
//! transaction or timeout, update signals (resolving multiple drivers),
//! form the event set, resume sensitive processes, and execute them until
//! they all suspend — repeating at the same instant for delta cycles.
//! "Due to the preemptive nature of signal assignments in VHDL, the effect
//! of a VHDL signal assignment is not determinable at the time of the
//! execution of the assignment" (§5.1) — hence the driver queues here.
//!
//! Scheduling is event-driven: a pending-event calendar ([`crate::sched`])
//! orders every scheduled transaction and wait timeout, a clear-list
//! replaces the per-cycle full sweep of `event`/`active` flags, and the
//! static sensitivity index limits resumption checks to processes that
//! could actually care. Per cycle the kernel touches O(activity) state,
//! not O(design size), while observable behavior (values, events,
//! statistics, observer order) is identical to the scan-based seed kernel
//! — which survives as the `ref_*` reference stepper under `#[cfg(test)]`
//! and anchors the scheduler-equivalence property suite.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use crate::compile::{self, Arg, CompiledProgram, EOp, IntOp, Step, Term};
use crate::isa::{FnId, Insn, Program, SigAttr, SigId};
use crate::names::{NameError, NameServer, NsEntry, NsObject};
use crate::par;
use crate::rts::{self, Op, RtError};
use crate::sched::{CalKind, Calendar, Partitioner, SensIndex};
use crate::value::{ArrVal, Time, VDir, Val};

/// Per-resumption instruction budget (runaway-loop guard).
const FUEL: u64 = 50_000_000;

/// A diagnostic emitted by `assert`/`report`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReportEvent {
    /// When.
    pub time: Time,
    /// 0 = note, 1 = warning, 2 = error, 3 = failure.
    pub severity: i64,
    /// Message text.
    pub text: String,
}

/// Cumulative kernel statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Simulation cycles executed (incl. delta cycles).
    pub cycles: u64,
    /// Delta (zero-time) cycles.
    pub delta_cycles: u64,
    /// Signal events (value changes).
    pub events: u64,
    /// Transactions matured.
    pub transactions: u64,
    /// Process resumptions.
    pub resumptions: u64,
    /// Instructions executed.
    pub insns: u64,
    /// Event-calendar operations (pushes plus removals).
    pub calendar_ops: u64,
    /// Processes examined for resumption (sensitivity-index candidates
    /// plus expired timeouts).
    pub woken_procs: u64,
    /// Signals examined for a value update (the active set, per cycle).
    pub scanned_signals: u64,
    /// Basic blocks executed by the compiled backend.
    pub compiled_blocks: u64,
    /// Processes the compiled backend had to leave on the interpreter
    /// (set once when the program is compiled).
    pub fallback_procs: u64,
}

/// Which process-execution backend runs activations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// The instruction-at-a-time interpreter (the reference semantics).
    #[default]
    Interp,
    /// Basic-block threaded code translated ahead of time by
    /// [`crate::compile`]; byte-identical observables, interpreter
    /// fallback per process where translation declines.
    Compiled,
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Backend, String> {
        match s {
            "interp" => Ok(Backend::Interp),
            "compiled" => Ok(Backend::Compiled),
            other => Err(format!(
                "unknown backend '{other}' (expected 'interp' or 'compiled')"
            )),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Interp => "interp",
            Backend::Compiled => "compiled",
        })
    }
}

/// Simulation failure.
#[derive(Clone, Debug)]
pub enum SimError {
    /// Runtime-support error in a process.
    Runtime {
        /// Offending process name.
        process: String,
        /// The error.
        error: RtError,
    },
    /// An `assert … severity failure` fired.
    Failure(ReportEvent),
    /// A process exceeded its instruction budget.
    FuelExhausted(String),
    /// Two drivers on an unresolved signal.
    UnresolvedDrivers(String),
    /// A resolution function misbehaved (waited or returned nothing).
    BadResolution(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Runtime { process, error } => {
                write!(f, "runtime error in {process}: {error}")
            }
            SimError::Failure(r) => write!(f, "failure at {}: {}", r.time, r.text),
            SimError::FuelExhausted(p) => write!(f, "process {p} looped without suspending"),
            SimError::UnresolvedDrivers(s) => {
                write!(
                    f,
                    "signal {s} has multiple drivers but no resolution function"
                )
            }
            SimError::BadResolution(s) => write!(f, "bad resolution function on {s}"),
        }
    }
}

impl std::error::Error for SimError {}

pub(crate) struct Driver {
    pub(crate) proc: usize,
    /// Projected output waveform, time-ordered.
    pub(crate) tx: VecDeque<(Time, Val)>,
    /// Current driving value.
    pub(crate) driving: Val,
}

pub(crate) struct SigState {
    pub(crate) current: Val,
    pub(crate) last_value: Val,
    pub(crate) last_event: Option<Time>,
    pub(crate) event: bool,
    pub(crate) active: bool,
    /// Cumulative events on this signal (the Name Server's per-object
    /// counter).
    pub(crate) events: u64,
    pub(crate) drivers: Vec<Driver>,
}

pub(crate) struct Frame {
    pub(crate) code: Arc<Vec<Insn>>,
    pub(crate) pc: usize,
    pub(crate) locals: Vec<Val>,
    pub(crate) static_link: Option<usize>,
    pub(crate) level: u16,
    /// Compiled-unit index of this frame's code (process index, or
    /// `n_procs + fn` for subprograms; `u32::MAX` for resolution scratch
    /// frames, which never run compiled). Kept current by both backends
    /// so they can take over from each other at any suspension point.
    pub(crate) unit: u32,
}

pub(crate) enum ProcStatus {
    Ready,
    Suspended {
        sens: Arc<Vec<SigId>>,
        timeout: Option<Time>,
    },
    Halted,
}

pub(crate) struct ProcState {
    pub(crate) name: String,
    pub(crate) status: ProcStatus,
    pub(crate) frames: Vec<Frame>,
    pub(crate) stack: Vec<Val>,
    /// Cumulative resumptions of this process (per-object counter).
    pub(crate) resumptions: u64,
}

impl ProcState {
    fn empty() -> ProcState {
        ProcState {
            name: String::new(),
            status: ProcStatus::Halted,
            frames: Vec::new(),
            stack: Vec::new(),
            resumptions: 0,
        }
    }
}

/// One buffered signal assignment. The value is fully computed at
/// execution time (subtype conversion and element stores applied); the
/// commit half only manipulates the driver queue and the calendar.
pub(crate) struct SchedOp {
    sig: u32,
    t: Time,
    value: Val,
    transport: bool,
}

impl Default for SchedOp {
    fn default() -> SchedOp {
        SchedOp {
            sig: 0,
            t: Time::ZERO,
            value: Val::Int(0),
            transport: false,
        }
    }
}

/// The effect spans of one process activation: end positions into the
/// owning [`Effects`] buffers (each activation's span starts where the
/// previous one ended), plus its statistics and outcome.
pub(crate) struct ActRecord {
    /// Process index (`u32::MAX` for resolution-function calls).
    pid: u32,
    sched_end: u32,
    timeout_end: u32,
    report_end: u32,
    /// Instructions executed (fuel spent), flushed to `stats.insns` at
    /// commit.
    insns: u64,
    /// Compiled basic blocks executed.
    blocks: u64,
    /// The activation's failure, if any: a runtime error, fuel
    /// exhaustion, or an `assert … severity failure`. Surfaced by the
    /// coordinator at commit, after the effects are applied — exactly
    /// when the unbuffered kernel surfaced it.
    failed: Option<SimError>,
}

/// Buffered side effects of one or more process activations. Workers
/// (and the sequential path) record here instead of touching shared
/// kernel state; the coordinator replays the records at the cycle
/// barrier in seed scan order.
#[derive(Default)]
pub(crate) struct Effects {
    scheds: Vec<SchedOp>,
    /// Wait-timeout instants, committed as calendar entries. A `wait`
    /// is always the last effect of its activation, so committing
    /// schedules before timeouts preserves the unbuffered push order.
    timeouts: Vec<Time>,
    reports: Vec<ReportEvent>,
    acts: Vec<ActRecord>,
    /// The in-flight activation's pending failure (fuel exhaustion,
    /// assertion failure), folded into its [`ActRecord`] when it ends.
    cur_failed: Option<SimError>,
    /// The in-flight activation's compiled-block count.
    cur_blocks: u64,
}

impl Effects {
    fn fail(&mut self, e: SimError) {
        self.cur_failed = Some(e);
    }

    /// Resets for reuse, keeping buffer capacity.
    fn clear(&mut self) {
        self.scheds.clear();
        self.timeouts.clear();
        self.reports.clear();
        self.acts.clear();
        self.cur_failed = None;
        self.cur_blocks = 0;
    }
}

/// Reusable tape-evaluation stacks. One per execution context: the
/// coordinator's sequential path and each pool worker own their own, so
/// no scratch is shared across threads.
#[derive(Default)]
pub(crate) struct Scratch {
    tape_vals: Vec<Val>,
    tape_ints: Vec<i64>,
}

/// Commit cursors into an [`Effects`] buffer: consumption positions the
/// coordinator advances monotonically as it commits that buffer's
/// activations in ready order.
#[derive(Clone, Copy, Default)]
pub(crate) struct EffCursor {
    act: usize,
    sched: usize,
    timeout: usize,
    report: usize,
}

/// One worker's reusable chunk: the processes it runs this cycle, its
/// private effects buffer and tape scratch, and the coordinator's commit
/// cursors. The buffers keep their capacity across cycles and travel to
/// the worker thread and back by move, so the parallel steady state
/// allocates nothing per cycle.
#[derive(Default)]
pub(crate) struct JobBuf {
    pub(crate) procs: Vec<(u32, ProcState)>,
    pub(crate) eff: Effects,
    pub(crate) scratch: Scratch,
    pub(crate) cur: EffCursor,
}

/// An activation-execution context: immutable simulation state plus a
/// private effects buffer and scratch. This is the only engine either
/// path runs — the sequential kernel wraps one around its own buffers
/// and commits after every activation (bit-exact legacy semantics), and
/// each pool worker wraps one around its [`JobBuf`]. It never touches
/// shared mutable kernel state, so a cycle's ready set can execute on
/// any thread in any order while the buffered effects replay in seed
/// scan order at the cycle barrier.
pub(crate) struct Exec<'e> {
    program: &'e Program,
    signals: &'e [SigState],
    compiled: Option<&'e CompiledProgram>,
    now: Time,
    fuel_budget: u64,
    eff: &'e mut Effects,
    scratch: &'e mut Scratch,
    /// First index in `eff.scheds` belonging to the current activation:
    /// element stores must see this activation's earlier buffered writes
    /// (and nothing from other processes).
    act_scheds: usize,
}

/// A value-change observer (VCD writers, test probes).
pub type Observer<'a> = Box<dyn FnMut(Time, SigId, &str, &Val) + 'a>;

/// How a bounded [`Simulator::run_slice`] ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Nothing left to do: no pending transactions or timeouts.
    Quiescent,
    /// The next event lies beyond the slice deadline.
    DeadlineReached,
    /// The per-slice cycle budget ran out with work still pending.
    CycleBudget,
    /// The cancellation hook asked to stop.
    Cancelled,
}

/// A deliberately wrong kernel behavior, switchable at runtime, so the
/// conformance subsystem's differential oracle can prove it detects and
/// shrinks real semantic divergences (`vhdlconform run --inject-fault`).
/// Never set outside tests and the conform harness; the default-off flag
/// costs one branch on the resolution path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[doc(hidden)]
#[non_exhaustive]
pub enum TestFault {
    /// Resolution commit sees only the first driver's contribution —
    /// the classic lost-update bug a broken parallel commit would
    /// produce on a multi-writer bus.
    ResolutionFirstDriverOnly,
}

/// The simulator: program + live state.
///
/// The program and the signal states live behind `Arc` so a parallel
/// cycle can hand shared read-only views to the worker pool; between
/// dispatches the coordinator holds the only clones and mutates through
/// [`Simulator::sigs_mut`].
pub struct Simulator<'a> {
    pub(crate) program: Arc<Program>,
    names: NameServer,
    pub(crate) signals: Arc<Vec<SigState>>,
    pub(crate) procs: Vec<ProcState>,
    pub(crate) now: Time,
    pub(crate) reports: Vec<ReportEvent>,
    pub(crate) stats: SimStats,
    observers: Vec<Observer<'a>>,
    pub(crate) failed: Option<SimError>,
    /// Pending-event calendar: transaction maturations and wait timeouts.
    pub(crate) calendar: Calendar,
    /// Static sensitivity index (signal → processes).
    sens: SensIndex,
    /// Signals whose `event`/`active` flags are set, to clear next cycle
    /// (replaces the full per-cycle flag sweep).
    pub(crate) active_clear: Vec<u32>,
    // Per-cycle scratch worklists, reused so the hot loop allocates only
    // on capacity growth.
    due_drivers: Vec<(u32, u32)>,
    fired: Vec<u32>,
    cand: Vec<u32>,
    ready: Vec<u32>,
    /// Reused buffer for resolution-function argument vectors.
    res_scratch: Vec<Val>,
    /// Reused execution state for resolution calls.
    fn_state: ProcState,
    fn_locals: Vec<Val>,
    /// Active process backend.
    pub(crate) backend: Backend,
    /// The program translated to basic-block threaded code (built lazily
    /// on the first switch to [`Backend::Compiled`]).
    compiled: Option<Arc<CompiledProgram>>,
    /// The sequential path's effects buffer (one activation at a time;
    /// resolution calls).
    eff: Effects,
    /// The sequential path's tape scratch.
    exec_scratch: Scratch,
    /// Per-activation instruction budget ([`FUEL`]; overridable in tests
    /// to pin the exhaustion boundary without 50M-instruction runs).
    pub(crate) fuel_budget: u64,
    /// Worker count for the process-execution phase (1 = sequential).
    jobs: usize,
    /// Fixed worker pool, spawned on the first parallel cycle.
    pool: Option<par::Pool>,
    /// Per-worker chunk buffers, reused across cycles.
    worker_buf: Vec<JobBuf>,
    /// Ready-set partitioner (scratch reused across cycles).
    partitioner: Partitioner,
    /// Worker assignment per ready position.
    assign: Vec<u32>,
    /// Critical-path profiling: parallel cycles run their chunks
    /// serialized on the calling thread, each timed (see
    /// [`Simulator::set_par_profile`]).
    par_profile: bool,
    /// Summed chunk-execution nanoseconds (profiling mode).
    par_total_ns: u64,
    /// Summed per-cycle maximum chunk nanoseconds (profiling mode).
    par_critical_ns: u64,
    /// Deliberate misbehavior for differential-oracle self-tests.
    test_fault: Option<TestFault>,
}

/// Why a compiled activation stopped early (internal control flow of the
/// compiled engine; never escapes [`Exec::run_activation`]).
enum CErr {
    /// A runtime-support error to surface as [`SimError::Runtime`].
    Rt(RtError),
    /// The fuel budget ran out (next instruction charged, not executed).
    Fuel,
    /// The activation already recorded its ending (assertion failure):
    /// stop and report success.
    Halt,
}

impl From<RtError> for CErr {
    fn from(e: RtError) -> CErr {
        CErr::Rt(e)
    }
}

/// Outcome of the integer fast path over one tape.
enum IntRun {
    /// Completed; the tape's value.
    Done(i64),
    /// A leaf held a non-integer: rerun on the generic evaluator (no fuel
    /// was charged).
    Bail,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator and runs every process once (elaboration-time
    /// initial execution happens on the first [`Simulator::step`]).
    pub fn new(program: Program) -> Simulator<'a> {
        let names = NameServer::from_program(&program);
        let sens = SensIndex::build(&program);
        let signals = Arc::new(
            program
                .signals
                .iter()
                .map(|s| SigState {
                    current: s.init.clone(),
                    last_value: s.init.clone(),
                    last_event: None,
                    event: false,
                    active: false,
                    events: 0,
                    drivers: Vec::new(),
                })
                .collect::<Vec<_>>(),
        );
        let procs = program
            .processes
            .iter()
            .enumerate()
            .map(|(pi, p)| ProcState {
                name: p.name.clone(),
                status: ProcStatus::Ready,
                frames: vec![Frame {
                    code: Arc::clone(&p.code),
                    pc: 0,
                    locals: vec![Val::Int(0); p.n_locals as usize],
                    static_link: None,
                    level: 0,
                    unit: pi as u32,
                }],
                stack: Vec::new(),
                resumptions: 0,
            })
            .collect();
        Simulator {
            program: Arc::new(program),
            names,
            signals,
            procs,
            now: Time::ZERO,
            reports: Vec::new(),
            stats: SimStats::default(),
            observers: Vec::new(),
            failed: None,
            calendar: Calendar::new(),
            sens,
            active_clear: Vec::new(),
            due_drivers: Vec::new(),
            fired: Vec::new(),
            cand: Vec::new(),
            ready: Vec::new(),
            res_scratch: Vec::new(),
            fn_state: ProcState::empty(),
            fn_locals: Vec::new(),
            backend: Backend::Interp,
            compiled: None,
            eff: Effects::default(),
            exec_scratch: Scratch::default(),
            fuel_budget: FUEL,
            jobs: 1,
            pool: None,
            worker_buf: Vec::new(),
            partitioner: Partitioner::new(),
            assign: Vec::new(),
            par_profile: false,
            par_total_ns: 0,
            par_critical_ns: 0,
            test_fault: None,
        }
    }

    /// Arms a deliberate kernel misbehavior (see [`TestFault`]). The
    /// conformance oracle sets this on selected configuration cells to
    /// prove divergence detection end to end; production paths never
    /// call it.
    #[doc(hidden)]
    pub fn set_test_fault(&mut self, fault: Option<TestFault>) {
        self.test_fault = fault;
    }

    /// Mutable view of the signal states. Only the coordinator between
    /// pool dispatches (or the sequential path) can take it; the pool
    /// protocol drops every worker's handle before the barrier commit,
    /// so a failure here is a kernel bug, not a race.
    pub(crate) fn sigs_mut(&mut self) -> &mut Vec<SigState> {
        Arc::get_mut(&mut self.signals).expect("signal state shared outside the process phase")
    }

    /// Overrides the per-activation instruction budget (equivalence tests
    /// pin the exhaustion boundary with small budgets).
    #[cfg(test)]
    pub(crate) fn set_fuel_budget(&mut self, fuel: u64) {
        self.fuel_budget = fuel;
    }

    /// Selects the process-execution backend. Switching to
    /// [`Backend::Compiled`] translates the program on first use and
    /// records how many processes had to stay on the interpreter. Safe at
    /// any activation boundary: suspended frames resume identically under
    /// either backend.
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
        if backend == Backend::Compiled && self.compiled.is_none() {
            let cp = compile::compile(&self.program);
            self.stats.fallback_procs = cp.n_fallback;
            self.compiled = Some(Arc::new(cp));
        }
    }

    /// The active process-execution backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Sets the worker count for the process-execution phase. `1` (the
    /// default) runs every ready process sequentially on the calling
    /// thread. With `n > 1`, any cycle whose ready set holds at least
    /// two processes partitions it by static signal footprint and runs
    /// the chunks on a fixed pool of `n` workers; every side effect is
    /// buffered per worker and committed at the cycle barrier in seed
    /// scan order, so VCD output, statistics, and Name-Server counters
    /// are byte-identical at any worker count. Safe to change between
    /// cycles (the old pool, if any, is torn down). Clamped to 1..=64.
    pub fn set_jobs(&mut self, jobs: usize) {
        let jobs = jobs.clamp(1, 64);
        if jobs != self.jobs {
            self.jobs = jobs;
            self.pool = None;
            self.worker_buf.clear();
        }
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Critical-path profiling for parallel cycles: chunks execute
    /// serialized on the calling thread, each timed, instead of on the
    /// pool. [`Simulator::par_profile_ns`] then reports `(Σ chunk ns,
    /// Σ per-cycle max-chunk ns)` — the second term models the process
    /// phase's span under true concurrency, which is the honest speedup
    /// probe on hosts with fewer cores than workers.
    pub fn set_par_profile(&mut self, on: bool) {
        self.par_profile = on;
    }

    /// Accumulated `(total, critical-path)` chunk nanoseconds from
    /// profiled parallel cycles.
    pub fn par_profile_ns(&self) -> (u64, u64) {
        (self.par_total_ns, self.par_critical_ns)
    }

    /// Total basic blocks in the compiled translation (0 until
    /// [`Backend::Compiled`] is selected).
    pub fn compiled_total_blocks(&self) -> u64 {
        self.compiled.as_ref().map_or(0, |cp| cp.total_blocks)
    }

    /// Registers a value-change observer (called with time, signal, name,
    /// new value).
    pub fn observe(&mut self, f: Observer<'a>) {
        self.observers.push(f);
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> SimStats {
        let mut s = self.stats;
        s.calendar_ops = self.calendar.ops;
        s
    }

    /// Reports collected so far.
    pub fn reports(&self) -> &[ReportEvent] {
        &self.reports
    }

    /// Value of a signal by id.
    pub fn signal_value(&self, sig: SigId) -> &Val {
        &self.signals[sig.0 as usize].current
    }

    /// The design's hierarchical namespace (the Name Server of §2.1).
    pub fn names(&self) -> &NameServer {
        &self.names
    }

    /// The elaborated program this simulator runs.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Resolves a path name to a namespace entry (case-insensitive,
    /// `:a:b` or `a.b` spellings).
    ///
    /// # Errors
    ///
    /// [`NameError`] diagnostics for unknown paths; never panics.
    pub fn resolve(&self, path: &str) -> Result<NsEntry, NameError> {
        self.names.resolve(path)
    }

    /// Resolves a glob pattern to every matching namespace entry.
    ///
    /// # Errors
    ///
    /// [`NameError`] diagnostics for malformed patterns; never panics.
    pub fn glob(&self, pattern: &str) -> Result<Vec<NsEntry>, NameError> {
        self.names.glob(pattern)
    }

    /// Cumulative events on one signal (the per-object counter the Name
    /// Server's `inspect` surface reports).
    pub fn signal_events(&self, sig: SigId) -> u64 {
        self.signals[sig.0 as usize].events
    }

    /// Time of the signal's last event, if any.
    pub fn signal_last_event(&self, sig: SigId) -> Option<Time> {
        self.signals[sig.0 as usize].last_event
    }

    /// Cumulative resumptions of one process.
    pub fn process_resumptions(&self, proc: u32) -> u64 {
        self.procs[proc as usize].resumptions
    }

    /// Static sensitivity set of one process: every signal whose event can
    /// resume it, ascending by id (elaboration metadata, surfaced for
    /// inspection).
    pub fn process_sensitivity(&self, proc: u32) -> &[SigId] {
        self.sens.of_proc(proc as usize)
    }

    /// Looks a signal up by its hierarchical name (the Name Server of
    /// §2.1). Case-insensitive; accepts `:a:b` and `a.b` spellings.
    pub fn signal_by_name(&self, path: &str) -> Option<SigId> {
        if let Ok(NsEntry {
            object: NsObject::Signal(s),
            ..
        }) = self.names.resolve(path)
        {
            return Some(s);
        }
        // Fallback: exact spelling match (signals whose declared names use
        // separators the path grammar folds away).
        self.program
            .signals
            .iter()
            .position(|s| s.name == path)
            .map(|i| SigId(i as u32))
    }

    /// Value by hierarchical name.
    pub fn value_by_name(&self, path: &str) -> Option<&Val> {
        self.signal_by_name(path).map(|s| self.signal_value(s))
    }

    /// All signal names, in id order.
    pub fn signal_names(&self) -> Vec<&str> {
        self.program
            .signals
            .iter()
            .map(|s| s.name.as_str())
            .collect()
    }

    /// Runs until `deadline` (inclusive) or quiescence.
    ///
    /// # Errors
    ///
    /// Stops at the first [`SimError`].
    pub fn run_until(&mut self, deadline: Time) -> Result<(), SimError> {
        self.run_slice(deadline, u64::MAX, &mut || false)
            .map(|_| ())
    }

    /// Runs a bounded slice: until `deadline` (inclusive), at most
    /// `max_cycles` simulation cycles, checking `cancel` between cycles —
    /// the incremental-stepping hook interactive drivers (the `vhdld`
    /// server's `run` request) use for per-request deadlines and
    /// cooperative cancellation. State is left consistent at every return,
    /// so a later slice picks up exactly where this one stopped.
    ///
    /// # Errors
    ///
    /// Stops at the first [`SimError`].
    pub fn run_slice(
        &mut self,
        deadline: Time,
        max_cycles: u64,
        cancel: &mut dyn FnMut() -> bool,
    ) -> Result<RunOutcome, SimError> {
        let _t = ag_harness::trace::span("simulate");
        let mut cycles: u64 = 0;
        // Initial cycle: every process runs until its first wait.
        if self.stats.cycles == 0 {
            if cancel() {
                return Ok(RunOutcome::Cancelled);
            }
            self.execute_ready()?;
            self.stats.cycles += 1;
            cycles += 1;
        }
        loop {
            let Some(next) = self.next_time() else {
                return Ok(RunOutcome::Quiescent);
            };
            if next.fs > deadline.fs {
                return Ok(RunOutcome::DeadlineReached);
            }
            if cycles >= max_cycles {
                return Ok(RunOutcome::CycleBudget);
            }
            if cancel() {
                return Ok(RunOutcome::Cancelled);
            }
            self.step_to(next)?;
            cycles += 1;
        }
    }

    /// Runs a single simulation cycle; returns `false` at quiescence.
    ///
    /// # Errors
    ///
    /// Stops at the first [`SimError`].
    pub fn step(&mut self) -> Result<bool, SimError> {
        if self.stats.cycles == 0 {
            self.execute_ready()?;
            self.stats.cycles += 1;
            return Ok(true);
        }
        match self.next_time() {
            Some(next) => {
                self.step_to(next)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// The earliest pending instant, from the calendar. Every entry is
    /// validated against live state (drivers' front transactions,
    /// processes' current timeouts) so preempted transactions and
    /// already-resumed waits never stall or invent a cycle; stale entries
    /// found along the way are discarded.
    pub(crate) fn next_time(&mut self) -> Option<Time> {
        let Simulator {
            calendar,
            signals,
            procs,
            ..
        } = self;
        calendar.min_valid(|e| match e.kind {
            CalKind::Driver { sig, di } => signals[sig as usize]
                .drivers
                .get(di as usize)
                .and_then(|d| d.tx.front())
                .is_some_and(|(t, _)| *t == e.time),
            CalKind::Timeout { proc } => matches!(
                &procs[proc as usize].status,
                ProcStatus::Suspended {
                    timeout: Some(t),
                    ..
                } if *t == e.time
            ),
        })
    }

    fn step_to(&mut self, next: Time) -> Result<(), SimError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        self.stats.cycles += 1;
        if next.fs == self.now.fs && self.stats.cycles > 1 {
            self.stats.delta_cycles += 1;
        }
        if next.fs != self.now.fs {
            self.calendar.advance_fs(next.fs);
        }
        self.now = next;
        // Clear the previous cycle's event/active flags (clear-list: only
        // signals that had them set).
        {
            let Simulator {
                signals,
                active_clear,
                ..
            } = &mut *self;
            let sigs =
                Arc::get_mut(signals).expect("signal state shared outside the process phase");
            for &si in active_clear.iter() {
                let s = &mut sigs[si as usize];
                s.event = false;
                s.active = false;
            }
        }
        self.active_clear.clear();
        // Pull everything due at `next` out of the calendar.
        self.due_drivers.clear();
        self.cand.clear();
        {
            let Simulator {
                calendar,
                due_drivers,
                cand,
                ..
            } = self;
            calendar.pop_due(next, due_drivers, cand);
        }
        // Mature the due drivers' transactions. Duplicate or stale entries
        // mature nothing and drop out here.
        self.fired.clear();
        {
            let Simulator {
                signals,
                calendar,
                stats,
                due_drivers,
                fired,
                ..
            } = &mut *self;
            let sigs =
                Arc::get_mut(signals).expect("signal state shared outside the process phase");
            for &(si, di) in due_drivers.iter() {
                let Some(d) = sigs[si as usize].drivers.get_mut(di as usize) else {
                    continue;
                };
                let mut matured = false;
                while d.tx.front().is_some_and(|(t, _)| *t <= next) {
                    let (_, v) = d.tx.pop_front().expect("front checked");
                    d.driving = v;
                    matured = true;
                    stats.transactions += 1;
                }
                if matured {
                    fired.push(si);
                    if let Some((t, _)) = d.tx.front() {
                        let t = *t;
                        calendar.push(t, CalKind::Driver { sig: si, di });
                    }
                }
            }
        }
        // Update fired signals in ascending id order — the order the seed
        // kernel's full scan used, which observers (VCD) depend on.
        self.fired.sort_unstable();
        self.fired.dedup();
        self.stats.scanned_signals += self.fired.len() as u64;
        for i in 0..self.fired.len() {
            let si = self.fired[i] as usize;
            self.active_clear.push(si as u32);
            let new_val = self.effective_value(si)?;
            let sig = &mut self.sigs_mut()[si];
            sig.active = true;
            let changed = new_val != sig.current;
            if changed {
                sig.last_value = std::mem::replace(&mut sig.current, new_val);
                sig.last_event = Some(next);
                sig.event = true;
                sig.events += 1;
                self.stats.events += 1;
            }
            if changed && !self.observers.is_empty() {
                let this = &mut *self;
                let name = this.program.signals[si].name.as_str();
                let current = &this.signals[si].current;
                for obs in this.observers.iter_mut() {
                    obs(next, SigId(si as u32), name, current);
                }
            }
        }
        // Resumption candidates: expired timeouts (already in `cand` from
        // the calendar) plus every process statically sensitive to a
        // signal that had an event. The wake condition itself is
        // re-checked exactly, so supersets cost nothing but a look.
        for i in 0..self.fired.len() {
            let si = self.fired[i] as usize;
            if self.signals[si].event {
                let watchers = self.sens.watchers(si);
                self.cand.extend_from_slice(watchers);
            }
        }
        self.cand.sort_unstable();
        self.cand.dedup();
        self.stats.woken_procs += self.cand.len() as u64;
        self.ready.clear();
        for i in 0..self.cand.len() {
            let pi = self.cand[i] as usize;
            let resume = match &self.procs[pi].status {
                ProcStatus::Suspended { sens, timeout } => {
                    let timed_out = timeout.is_some_and(|t| t <= next);
                    let evented = sens.iter().any(|s| self.signals[s.0 as usize].event);
                    if timed_out || evented {
                        Some(timed_out && !evented)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if let Some(timed_out) = resume {
                let p = &mut self.procs[pi];
                p.status = ProcStatus::Ready;
                p.stack.push(Val::Int(timed_out as i64));
                p.resumptions += 1;
                self.stats.resumptions += 1;
                self.ready.push(pi as u32);
            }
        }
        if self.jobs > 1 && self.ready.len() >= 2 {
            self.run_ready_parallel()?;
        } else {
            for i in 0..self.ready.len() {
                self.run_process(self.ready[i] as usize)?;
            }
        }
        if let Some(e) = self.failed.take() {
            return Err(e);
        }
        Ok(())
    }

    fn effective_value(&mut self, si: usize) -> Result<Val, SimError> {
        let n_drivers = self.signals[si].drivers.len();
        let resolution = self.program.signals[si].resolution;
        match (n_drivers, resolution) {
            (0, _) => Ok(self.signals[si].current.clone()),
            (1, None) => Ok(self.signals[si].drivers[0].driving.clone()),
            (_, None) => Err(SimError::UnresolvedDrivers(
                self.program.signals[si].name.clone(),
            )),
            (_, Some(f)) => {
                // The resolution function receives the vector of driving
                // values. The vector's buffer is a reused scratch,
                // reclaimed after the call unless the function retained
                // the argument.
                let mut vals = std::mem::take(&mut self.res_scratch);
                vals.clear();
                let take = match self.test_fault {
                    Some(TestFault::ResolutionFirstDriverOnly) => 1,
                    None => n_drivers,
                };
                vals.extend(
                    self.signals[si]
                        .drivers
                        .iter()
                        .take(take)
                        .map(|d| d.driving.clone()),
                );
                let data = Arc::new(vals);
                let arg = Val::Arr(ArrVal {
                    left: 0,
                    dir: VDir::To,
                    data: Arc::clone(&data),
                });
                let out = self.call_function(f, arg);
                if let Ok(mut v) = Arc::try_unwrap(data) {
                    v.clear();
                    self.res_scratch = v;
                }
                // Commit the call's buffered effects (counted
                // instructions, reports, a possible assertion failure)
                // exactly where the unbuffered kernel applied them —
                // inside the update phase, before this signal's value
                // changes. An assertion failure lands in `self.failed`
                // and surfaces at the seed kernel's check points, not
                // here, matching the legacy control flow.
                let _ = self.commit_pending();
                out.map_err(|e| SimError::Runtime {
                    process: format!("resolution of {}", self.program.signals[si].name),
                    error: e,
                })
            }
        }
    }

    /// Executes every Ready process until it suspends.
    fn execute_ready(&mut self) -> Result<(), SimError> {
        for pi in 0..self.procs.len() {
            if matches!(self.procs[pi].status, ProcStatus::Ready) {
                self.run_process(pi)?;
            }
        }
        if let Some(e) = self.failed.take() {
            return Err(e);
        }
        Ok(())
    }

    /// Runs a pure function (resolution) on a reused scratch state: the
    /// frame's locals buffer, the value stack, and the diagnostic name all
    /// keep their capacity between calls.
    fn call_function(&mut self, f: FnId, arg: Val) -> Result<Val, RtError> {
        let mut scratch = std::mem::replace(&mut self.fn_state, ProcState::empty());
        let mut locals = std::mem::take(&mut self.fn_locals);
        let decl = &self.program.functions[f.0 as usize];
        scratch.status = ProcStatus::Ready;
        scratch.stack.clear();
        scratch.name.clear();
        scratch.name.push_str("fn ");
        scratch.name.push_str(&decl.name);
        locals.clear();
        locals.resize(decl.n_locals as usize, Val::Int(0));
        locals[0] = arg;
        scratch.frames.push(Frame {
            code: Arc::clone(&decl.code),
            pc: 0,
            locals,
            static_link: None,
            level: decl.level,
            unit: u32::MAX,
        });
        let run = {
            let Simulator {
                program,
                signals,
                now,
                fuel_budget,
                eff,
                exec_scratch,
                ..
            } = &mut *self;
            let mut ex = Exec {
                program: &**program,
                signals: &**signals,
                compiled: None,
                now: *now,
                fuel_budget: *fuel_budget,
                eff,
                scratch: exec_scratch,
                act_scheds: 0,
            };
            ex.run_pure(&mut scratch)
        };
        let out = match run {
            Ok(()) => scratch
                .stack
                .pop()
                .ok_or_else(|| RtError::Internal("resolution returned no value".into())),
            Err(e) => Err(e),
        };
        if let Some(frame) = scratch.frames.drain(..).next() {
            self.fn_locals = frame.locals;
        }
        self.fn_state = scratch;
        out
    }

    /// Runs one ready process sequentially: execute on [`Exec`] (same
    /// engine the pool workers run), then commit the single buffered
    /// activation immediately — which replays the legacy unbuffered
    /// semantics bit-exactly.
    fn run_process(&mut self, pi: usize) -> Result<(), SimError> {
        let mut proc = std::mem::replace(&mut self.procs[pi], ProcState::empty());
        // The backend dispatch seam: processes the translator declined
        // stay on the interpreter, per process, forever.
        let use_compiled = self.backend == Backend::Compiled
            && self.compiled.as_ref().is_some_and(|cp| cp.proc_ok[pi]);
        {
            let Simulator {
                program,
                signals,
                compiled,
                now,
                fuel_budget,
                eff,
                exec_scratch,
                ..
            } = &mut *self;
            let mut ex = Exec {
                program: &**program,
                signals: &**signals,
                compiled: compiled.as_deref(),
                now: *now,
                fuel_budget: *fuel_budget,
                eff,
                scratch: exec_scratch,
                act_scheds: 0,
            };
            ex.run_activation(&mut proc, pi, use_compiled);
        }
        self.procs[pi] = proc;
        self.commit_pending()?;
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        Ok(())
    }

    /// Executes the cycle's ready set on the worker pool: partition by
    /// static signal footprint, run the chunks concurrently against
    /// shared read-only state, then commit every buffered effect at the
    /// barrier in seed scan order (ascending process id — the order the
    /// sequential kernel used). Observables are byte-identical at any
    /// worker count.
    fn run_ready_parallel(&mut self) -> Result<(), SimError> {
        let n = self.ready.len();
        let jobs = self.jobs;
        while self.worker_buf.len() < jobs {
            self.worker_buf.push(JobBuf::default());
        }
        {
            let Simulator {
                partitioner,
                sens,
                ready,
                assign,
                ..
            } = &mut *self;
            partitioner.assign(ready, sens, jobs, assign);
        }
        for buf in self.worker_buf.iter_mut() {
            buf.procs.clear();
            buf.cur = EffCursor::default();
        }
        // Fill the chunks in ready order, so each worker's chunk is in
        // ascending process order and its activation records line up
        // with the commit loop below.
        for pos in 0..n {
            let pid = self.ready[pos];
            let proc = std::mem::replace(&mut self.procs[pid as usize], ProcState::empty());
            self.worker_buf[self.assign[pos] as usize]
                .procs
                .push((pid, proc));
        }
        let ctx = par::Ctx {
            program: Arc::clone(&self.program),
            signals: Arc::clone(&self.signals),
            compiled: self.compiled.clone(),
            now: self.now,
            fuel_budget: self.fuel_budget,
            compiled_backend: self.backend == Backend::Compiled,
        };
        if self.par_profile {
            // Critical-path probe: run the chunks serialized on this
            // thread, timing each. `total` accumulates Σ chunk-ns and
            // `critical` Σ per-cycle max-chunk-ns — the span the phase
            // would have under true concurrency.
            let (mut total, mut critical) = (0u64, 0u64);
            for buf in self.worker_buf.iter_mut() {
                if buf.procs.is_empty() {
                    continue;
                }
                let t0 = Instant::now();
                run_chunk(&ctx, buf);
                let ns = t0.elapsed().as_nanos() as u64;
                total += ns;
                critical = critical.max(ns);
            }
            self.par_total_ns += total;
            self.par_critical_ns += critical;
        } else {
            if self.pool.is_none() {
                self.pool = Some(par::Pool::new(jobs));
            }
            let pool = self.pool.as_ref().expect("pool just ensured");
            pool.run(&ctx, &mut self.worker_buf);
        }
        drop(ctx);
        // Give the processes back before committing.
        let mut bufs = std::mem::take(&mut self.worker_buf);
        for buf in bufs.iter_mut() {
            for (pid, proc) in buf.procs.drain(..) {
                self.procs[pid as usize] = proc;
            }
        }
        // Barrier commit: one activation per ready position, in seed
        // scan order, consuming each worker's buffers front to back.
        // The first failure (in that order) wins; later activations'
        // effects are discarded, as if their processes had never run —
        // the sequential kernel never ran them at all, and post-error
        // state is unobservable through the public API either way.
        let mut out = Ok(());
        for pos in 0..n {
            let w = self.assign[pos] as usize;
            let ai = bufs[w].cur.act;
            bufs[w].cur.act += 1;
            debug_assert_eq!(bufs[w].eff.acts[ai].pid, self.ready[pos]);
            let r = {
                let JobBuf { eff, cur, .. } = &mut bufs[w];
                self.commit_act(eff, ai, cur)
            };
            if let Err(e) = r {
                out = Err(e);
                break;
            }
            if let Some(e) = &self.failed {
                // A failure recorded before the process phase (a
                // resolution call's assertion) surfaces after the first
                // committed activation, exactly as run_process does.
                out = Err(e.clone());
                break;
            }
        }
        for buf in bufs.iter_mut() {
            buf.eff.clear();
            buf.cur = EffCursor::default();
        }
        self.worker_buf = bufs;
        out
    }

    /// Applies one activation record's buffered effects in recorded
    /// order — driver transactions, wait timeouts, reports, statistics —
    /// then surfaces the activation's failure, if any. Statistics land
    /// before the failure check, matching the unbuffered kernel's
    /// once-per-activation flush.
    fn commit_act(
        &mut self,
        eff: &mut Effects,
        ai: usize,
        cur: &mut EffCursor,
    ) -> Result<(), SimError> {
        let (pid, s_end, t_end, r_end, insns, blocks, failed) = {
            let a = &mut eff.acts[ai];
            (
                a.pid,
                a.sched_end as usize,
                a.timeout_end as usize,
                a.report_end as usize,
                a.insns,
                a.blocks,
                a.failed.take(),
            )
        };
        let dpid = if pid == u32::MAX {
            usize::MAX
        } else {
            pid as usize
        };
        for i in cur.sched..s_end {
            let op = std::mem::take(&mut eff.scheds[i]);
            self.commit_sched(dpid, op);
        }
        cur.sched = s_end;
        for i in cur.timeout..t_end {
            self.calendar
                .push(eff.timeouts[i], CalKind::Timeout { proc: pid });
        }
        cur.timeout = t_end;
        for i in cur.report..r_end {
            let ev = std::mem::replace(
                &mut eff.reports[i],
                ReportEvent {
                    time: Time::ZERO,
                    severity: 0,
                    text: String::new(),
                },
            );
            self.reports.push(ev);
        }
        cur.report = r_end;
        self.stats.insns += insns;
        self.stats.compiled_blocks += blocks;
        if let Some(e) = failed {
            self.failed = Some(e.clone());
            return Err(e);
        }
        Ok(())
    }

    /// Commits every buffered activation of the coordinator's own
    /// effects buffer (sequential execution, resolution calls) in
    /// recorded order, stopping at — but after fully applying — the
    /// first failed one.
    fn commit_pending(&mut self) -> Result<(), SimError> {
        let mut eff = std::mem::take(&mut self.eff);
        let mut cur = EffCursor::default();
        let mut out = Ok(());
        for ai in 0..eff.acts.len() {
            if let Err(e) = self.commit_act(&mut eff, ai, &mut cur) {
                out = Err(e);
                break;
            }
        }
        eff.clear();
        self.eff = eff;
        out
    }

    /// The commit half of a signal assignment: find or create the
    /// process's driver, apply preemption, append the transaction, keep
    /// the calendar invariant. The value was computed at execution time;
    /// driver queues are untouched during the process phase, so
    /// replaying the buffered operations in seed scan order lands every
    /// queue in exactly the state the unbuffered kernel produced.
    fn commit_sched(&mut self, pid: usize, op: SchedOp) {
        let SchedOp {
            sig,
            t,
            value,
            transport,
        } = op;
        let Simulator {
            signals, calendar, ..
        } = &mut *self;
        let sig_state = &mut Arc::get_mut(signals)
            .expect("signal state shared outside the process phase")[sig as usize];
        // Find or create this process's driver. Creation happens here —
        // in commit order — so driver indices are identical to the
        // sequential kernel's no matter which worker ran the process.
        let di = match sig_state.drivers.iter().position(|d| d.proc == pid) {
            Some(i) => i,
            None => {
                sig_state.drivers.push(Driver {
                    proc: pid,
                    tx: VecDeque::new(),
                    driving: sig_state.current.clone(),
                });
                sig_state.drivers.len() - 1
            }
        };
        let d = &mut sig_state.drivers[di];
        if transport {
            // Transport: drop transactions at or after t, append.
            while d.tx.back().is_some_and(|(bt, _)| *bt >= t) {
                d.tx.pop_back();
            }
        } else {
            // Inertial (simplified VHDL-87 preemption): the new
            // transaction supersedes every pending one.
            d.tx.clear();
        }
        d.tx.push_back((t, value));
        // Calendar invariant: whenever a driver's queue is non-empty, an
        // entry exists at exactly the front transaction's time (see
        // [`Exec::sched`]).
        if d.tx.len() == 1 {
            calendar.push(t, CalKind::Driver { sig, di: di as u32 });
        }
    }
}

impl<'e> Exec<'e> {
    /// Runs one process activation to suspension or halt, recording its
    /// side effects as one activation record. Errors do not escape: a
    /// runtime error or pending failure rides in the record and is
    /// surfaced by the coordinator at commit, in seed scan order.
    pub(crate) fn run_activation(&mut self, proc: &mut ProcState, pid: usize, use_compiled: bool) {
        self.act_scheds = self.eff.scheds.len();
        let budget = self.fuel_budget;
        let mut fuel = budget;
        let result = if use_compiled {
            let cp = self.compiled.expect("compiled backend selected");
            match self.exec_blocks(cp, proc, pid, &mut fuel) {
                Ok(()) | Err(CErr::Halt) => Ok(()),
                Err(CErr::Fuel) => {
                    self.eff.fail(SimError::FuelExhausted(proc.name.clone()));
                    proc.status = ProcStatus::Halted;
                    Ok(())
                }
                Err(CErr::Rt(e)) => Err(e),
            }
        } else {
            self.exec_inner(proc, false, pid, &mut fuel)
        };
        // Clone the name only on the error path: this runs once per
        // resumption, and a per-call clone is exactly the hot-loop
        // allocation the scheduler rewrite removed.
        let failed = match result {
            Ok(()) => self.eff.cur_failed.take(),
            Err(error) => {
                self.eff.cur_failed = None;
                Some(SimError::Runtime {
                    process: proc.name.clone(),
                    error,
                })
            }
        };
        self.eff.acts.push(ActRecord {
            pid: pid as u32,
            sched_end: self.eff.scheds.len() as u32,
            timeout_end: self.eff.timeouts.len() as u32,
            report_end: self.eff.reports.len() as u32,
            insns: budget - fuel,
            blocks: std::mem::take(&mut self.eff.cur_blocks),
            failed,
        });
    }

    /// Runs a pure function call (resolution) to completion, recording
    /// its effects as one activation record with the `u32::MAX` pid
    /// sentinel. The runtime error (if any) is returned to the caller —
    /// the unbuffered kernel propagated it without recording a process
    /// failure — while a pending assertion failure rides in the record.
    fn run_pure(&mut self, proc: &mut ProcState) -> Result<(), RtError> {
        self.act_scheds = self.eff.scheds.len();
        let budget = self.fuel_budget;
        let mut fuel = budget;
        let out = self.exec_inner(proc, true, usize::MAX, &mut fuel);
        let failed = self.eff.cur_failed.take();
        self.eff.acts.push(ActRecord {
            pid: u32::MAX,
            sched_end: self.eff.scheds.len() as u32,
            timeout_end: self.eff.timeouts.len() as u32,
            report_end: self.eff.reports.len() as u32,
            insns: budget - fuel,
            blocks: std::mem::take(&mut self.eff.cur_blocks),
            failed,
        });
        out
    }

    #[allow(clippy::too_many_lines)]
    fn exec_inner(
        &mut self,
        proc: &mut ProcState,
        pure: bool,
        pid: usize,
        fuel: &mut u64,
    ) -> Result<(), RtError> {
        'outer: loop {
            let Some(top) = proc.frames.last() else {
                proc.status = ProcStatus::Halted;
                return Ok(());
            };
            // Pin the active frame's code and pc in locals: instructions
            // are matched by reference out of the owned `code` handle (no
            // per-instruction clone), and `pc` only touches the frame at
            // suspension points and frame switches.
            let code = Arc::clone(&top.code);
            let mut pc = top.pc;
            loop {
                let Some(insn) = code.get(pc) else {
                    // Falling off a subprogram = return; off a process = halt.
                    if proc.frames.len() > 1 {
                        proc.frames.pop();
                        continue 'outer;
                    }
                    proc.frames.last_mut().expect("frame").pc = pc;
                    proc.status = ProcStatus::Halted;
                    return Ok(());
                };
                pc += 1;
                *fuel -= 1;
                if *fuel == 0 {
                    proc.frames.last_mut().expect("frame").pc = pc;
                    self.eff.fail(SimError::FuelExhausted(proc.name.clone()));
                    proc.status = ProcStatus::Halted;
                    return Ok(());
                }
                match insn {
                    Insn::PushInt(v) => proc.stack.push(Val::Int(*v)),
                    Insn::PushReal(v) => proc.stack.push(Val::Real(*v)),
                    Insn::PushConst(v) => proc.stack.push(v.clone()),
                    Insn::MakeArr { n, left, dir } => {
                        let at = proc.stack.len() - *n as usize;
                        let data = proc.stack.split_off(at);
                        proc.stack.push(Val::arr(*left, *dir, data));
                    }
                    Insn::MakeRec { n } => {
                        let at = proc.stack.len() - *n as usize;
                        let data = proc.stack.split_off(at);
                        proc.stack.push(Val::Rec(Arc::new(data)));
                    }
                    Insn::LoadVar(a) => {
                        let v = var_frame(proc, a.depth)?.locals[a.slot as usize].clone();
                        proc.stack.push(v);
                    }
                    Insn::StoreVar(a) => {
                        let v = pop(proc)?;
                        var_frame(proc, a.depth)?.locals[a.slot as usize] = v;
                    }
                    Insn::StoreVarIndex(a) => {
                        let v = pop(proc)?;
                        let idx = pop_int(proc)?;
                        let fr = var_frame(proc, a.depth)?;
                        let slot = &mut fr.locals[a.slot as usize];
                        *slot = store_elem(slot, idx, v)?;
                    }
                    Insn::StoreVarField(a, field) => {
                        let v = pop(proc)?;
                        let fr = var_frame(proc, a.depth)?;
                        let slot = &mut fr.locals[a.slot as usize];
                        if let Val::Rec(fields) = slot {
                            let mut fs = (**fields).clone();
                            fs[*field as usize] = v;
                            *slot = Val::Rec(Arc::new(fs));
                        } else {
                            return Err(RtError::Internal("field store on non-record".into()));
                        }
                    }
                    Insn::LoadSig(s) => {
                        proc.stack.push(self.signals[s.0 as usize].current.clone());
                    }
                    Insn::LoadSigAttr(s, attr) => {
                        let sig = &self.signals[s.0 as usize];
                        let v = match attr {
                            SigAttr::Event => Val::Int(sig.event as i64),
                            SigAttr::Active => Val::Int(sig.active as i64),
                            SigAttr::LastValue => sig.last_value.clone(),
                        };
                        proc.stack.push(v);
                    }
                    Insn::Index => {
                        let idx = pop_int(proc)?;
                        let arr = pop(proc)?;
                        let a = want_arr(&arr)?;
                        let off = a.offset(idx).ok_or(RtError::IndexError { index: idx })?;
                        proc.stack.push(a.data[off].clone());
                    }
                    Insn::Slice(dir) => {
                        let right = pop_int(proc)?;
                        let left = pop_int(proc)?;
                        let arr = pop(proc)?;
                        let a = want_arr(&arr)?;
                        let (o1, o2) = (
                            a.offset(left).ok_or(RtError::IndexError { index: left })?,
                            a.offset(right)
                                .ok_or(RtError::IndexError { index: right })?,
                        );
                        let (lo, hi) = (o1.min(o2), o1.max(o2));
                        let data = a.data[lo..=hi].to_vec();
                        proc.stack.push(Val::arr(left, *dir, data));
                    }
                    Insn::ArrAttr(kind) => {
                        let v = pop(proc)?;
                        let a = want_arr(&v)?;
                        let (l, r) = (a.left, a.right());
                        let out = match kind {
                            crate::isa::ArrAttrKind::Length => a.data.len() as i64,
                            crate::isa::ArrAttrKind::Left => l,
                            crate::isa::ArrAttrKind::Right => r,
                            crate::isa::ArrAttrKind::Low => l.min(r),
                            crate::isa::ArrAttrKind::High => l.max(r),
                        };
                        proc.stack.push(Val::Int(out));
                    }
                    Insn::Field(i) => {
                        let v = pop(proc)?;
                        match v {
                            Val::Rec(fields) => proc.stack.push(fields[*i as usize].clone()),
                            _ => return Err(RtError::Internal("field on non-record".into())),
                        }
                    }
                    Insn::Binop(op) => {
                        let b = pop(proc)?;
                        let a = pop(proc)?;
                        proc.stack.push(rts::binop(*op, &a, &b)?);
                    }
                    Insn::Unop(op) => {
                        let a = pop(proc)?;
                        proc.stack.push(rts::unop(*op, &a)?);
                    }
                    Insn::RangeCheck { lo, hi } => {
                        let v = want_int(proc.stack.last().ok_or_else(underflow)?)?;
                        if v < *lo || v > *hi {
                            return Err(RtError::RangeError {
                                value: v,
                                lo: *lo,
                                hi: *hi,
                            });
                        }
                    }
                    Insn::Jump(t) => {
                        pc = *t as usize;
                    }
                    Insn::JumpIfFalse(t) => {
                        let c = pop_int(proc)? != 0;
                        if !c {
                            pc = *t as usize;
                        }
                    }
                    Insn::Sched { sig, transport } => {
                        let delay = pop_int(proc)?;
                        let value = pop(proc)?;
                        self.sched(pid, *sig, value, delay, *transport, None)?;
                    }
                    Insn::SchedIndex { sig, transport } => {
                        let delay = pop_int(proc)?;
                        let value = pop(proc)?;
                        let index = pop_int(proc)?;
                        self.sched(pid, *sig, value, delay, *transport, Some(index))?;
                    }
                    Insn::Wait { sens, with_timeout } => {
                        if pure {
                            return Err(RtError::Internal("wait in a pure function".into()));
                        }
                        let timeout = if *with_timeout {
                            let fs = pop_int(proc)?;
                            // A zero-duration wait resumes in the *next
                            // delta cycle* (LRM 8.1); `plus_fs(0)` would
                            // reset the delta and land in the past,
                            // pinning time while this process's own
                            // delta-delayed drivers starve unmatured.
                            let t = if fs <= 0 {
                                self.now.next_delta()
                            } else {
                                self.now.plus_fs(fs as u64)
                            };
                            self.eff.timeouts.push(t);
                            Some(t)
                        } else {
                            None
                        };
                        proc.frames.last_mut().expect("frame").pc = pc;
                        proc.status = ProcStatus::Suspended {
                            sens: Arc::clone(sens),
                            timeout,
                        };
                        return Ok(());
                    }
                    Insn::Call(f) => {
                        let decl = &self.program.functions[f.0 as usize];
                        let (n_params, n_locals, level) =
                            (decl.n_params, decl.n_locals, decl.level);
                        let callee = Arc::clone(&decl.code);
                        let at = proc.stack.len() - n_params as usize;
                        let args = proc.stack.split_off(at);
                        let mut locals = vec![Val::Int(0); n_locals as usize];
                        for (i, a) in args.into_iter().enumerate() {
                            locals[i] = a;
                        }
                        // Static link: nearest frame one level shallower.
                        let static_link = proc.frames.iter().rposition(|fr| fr.level + 1 == level);
                        let unit = (self.program.processes.len() + f.0 as usize) as u32;
                        proc.frames.last_mut().expect("frame").pc = pc;
                        proc.frames.push(Frame {
                            code: callee,
                            pc: 0,
                            locals,
                            static_link,
                            level,
                            unit,
                        });
                        continue 'outer;
                    }
                    Insn::Ret { has_value: _ } => {
                        if proc.frames.len() > 1 {
                            proc.frames.pop();
                            continue 'outer;
                        }
                        proc.frames.last_mut().expect("frame").pc = pc;
                        proc.status = ProcStatus::Halted;
                        return Ok(());
                    }
                    Insn::Assert => {
                        let severity = pop_int(proc)?;
                        let report = pop(proc)?;
                        let cond = pop_int(proc)? != 0;
                        if !cond {
                            let ev = ReportEvent {
                                time: self.now,
                                severity,
                                text: report.as_string(),
                            };
                            self.eff.reports.push(ev.clone());
                            if severity >= 3 {
                                proc.frames.last_mut().expect("frame").pc = pc;
                                self.eff.fail(SimError::Failure(ev));
                                proc.status = ProcStatus::Halted;
                                return Ok(());
                            }
                        }
                    }
                    Insn::Pop => {
                        pop(proc)?;
                    }
                    Insn::Dup => {
                        let v = proc.stack.last().ok_or_else(underflow)?.clone();
                        proc.stack.push(v);
                    }
                    Insn::Halt => {
                        proc.frames.last_mut().expect("frame").pc = pc;
                        proc.status = ProcStatus::Halted;
                        return Ok(());
                    }
                }
            }
        }
    }

    /// The compiled backend's engine: runs threaded basic blocks until
    /// the process suspends, halts, or fails. Mirrors the interpreter's
    /// fuel accounting exactly — every executed tape operation, step,
    /// and charging terminator costs one unit, in original program
    /// order, so `stats.insns` and the fuel-exhaustion point are
    /// byte-identical to the interpreter's.
    fn exec_blocks(
        &mut self,
        cp: &CompiledProgram,
        proc: &mut ProcState,
        pid: usize,
        fuel: &mut u64,
    ) -> Result<(), CErr> {
        // Charge one instruction; at zero the instruction is *not*
        // executed (the interpreter bails between fetch and dispatch).
        fn charge(fuel: &mut u64) -> Result<(), CErr> {
            *fuel -= 1;
            if *fuel == 0 {
                return Err(CErr::Fuel);
            }
            Ok(())
        }
        'frames: loop {
            let Some(top) = proc.frames.last() else {
                proc.status = ProcStatus::Halted;
                return Ok(());
            };
            let unit = cp.units[top.unit as usize]
                .as_ref()
                .ok_or_else(|| RtError::Internal("frame in uncompiled unit".into()))?;
            // Activations always enter at a leader: process start, wait
            // resume points, and call-return points all end blocks.
            let mut bi = *unit
                .leader
                .get(top.pc)
                .filter(|b| **b != u32::MAX)
                .ok_or_else(|| RtError::Internal("resume pc is not a block leader".into()))?
                as usize;
            loop {
                let block = &unit.blocks[bi];
                self.eff.cur_blocks += 1;
                for step in &block.steps {
                    self.run_cstep(proc, pid, step, fuel)?;
                }
                match &block.term {
                    Term::Fall(t) => bi = *t as usize,
                    Term::Jump(t) => {
                        charge(fuel)?;
                        bi = *t as usize;
                    }
                    Term::Branch {
                        cond,
                        on_false,
                        next,
                    } => {
                        let c_pre = self.eval_arg(proc, cond, fuel)?;
                        charge(fuel)?;
                        let c = take_int(proc, c_pre)? != 0;
                        bi = if c {
                            *next as usize
                        } else {
                            *on_false as usize
                        };
                    }
                    Term::Wait {
                        sens,
                        timeout,
                        resume_pc,
                    } => {
                        let timeout = match timeout {
                            Some(arg) => {
                                let pre = self.eval_arg(proc, arg, fuel)?;
                                charge(fuel)?;
                                let fs = take_int(proc, pre)?;
                                // Zero-duration wait: next delta, as in
                                // the interpreter's `Insn::Wait` above.
                                let t = if fs <= 0 {
                                    self.now.next_delta()
                                } else {
                                    self.now.plus_fs(fs as u64)
                                };
                                self.eff.timeouts.push(t);
                                Some(t)
                            }
                            None => {
                                charge(fuel)?;
                                None
                            }
                        };
                        proc.frames.last_mut().expect("frame").pc = *resume_pc as usize;
                        proc.status = ProcStatus::Suspended {
                            sens: Arc::clone(sens),
                            timeout,
                        };
                        return Ok(());
                    }
                    Term::Call { f, ret_pc } => {
                        charge(fuel)?;
                        let decl = &self.program.functions[f.0 as usize];
                        let (n_params, n_locals, level) =
                            (decl.n_params, decl.n_locals, decl.level);
                        let callee = Arc::clone(&decl.code);
                        let at = proc.stack.len() - n_params as usize;
                        let args = proc.stack.split_off(at);
                        let mut locals = vec![Val::Int(0); n_locals as usize];
                        for (i, a) in args.into_iter().enumerate() {
                            locals[i] = a;
                        }
                        let static_link = proc.frames.iter().rposition(|fr| fr.level + 1 == level);
                        proc.frames.last_mut().expect("frame").pc = *ret_pc as usize;
                        proc.frames.push(Frame {
                            code: callee,
                            pc: 0,
                            locals,
                            static_link,
                            level,
                            unit: cp.fn_unit(*f) as u32,
                        });
                        continue 'frames;
                    }
                    Term::Ret { end_pc } => {
                        charge(fuel)?;
                        if proc.frames.len() > 1 {
                            proc.frames.pop();
                            continue 'frames;
                        }
                        proc.frames.last_mut().expect("frame").pc = *end_pc as usize;
                        proc.status = ProcStatus::Halted;
                        return Ok(());
                    }
                    Term::Halt { end_pc } => {
                        charge(fuel)?;
                        proc.frames.last_mut().expect("frame").pc = *end_pc as usize;
                        proc.status = ProcStatus::Halted;
                        return Ok(());
                    }
                    Term::FallOff { end_pc } => {
                        // Running off the end charges nothing: the
                        // interpreter's fetch fails before the fuel is
                        // touched.
                        if proc.frames.len() > 1 {
                            proc.frames.pop();
                            continue 'frames;
                        }
                        proc.frames.last_mut().expect("frame").pc = *end_pc as usize;
                        proc.status = ProcStatus::Halted;
                        return Ok(());
                    }
                    Term::Dead => {
                        return Err(CErr::Rt(RtError::Internal(
                            "entered untranslated block".into(),
                        )))
                    }
                }
            }
        }
    }

    /// Executes one step of a compiled block. Argument evaluation order
    /// mirrors the interpreter exactly: deferred tapes run first (their
    /// source instructions came earlier), then the step's own instruction
    /// is charged, then operands are taken (popped) and type-checked in
    /// the interpreter's pop order.
    fn run_cstep(
        &mut self,
        proc: &mut ProcState,
        pid: usize,
        step: &Step,
        fuel: &mut u64,
    ) -> Result<(), CErr> {
        fn charge(fuel: &mut u64) -> Result<(), CErr> {
            *fuel -= 1;
            if *fuel == 0 {
                return Err(CErr::Fuel);
            }
            Ok(())
        }
        match step {
            Step::Push(tape) => {
                let v = self.run_tape(proc, tape, fuel)?;
                proc.stack.push(v);
            }
            Step::PopRt => {
                charge(fuel)?;
                pop(proc)?;
            }
            Step::Drop(tape) => {
                self.run_tape(proc, tape, fuel)?;
                charge(fuel)?;
            }
            Step::Raw(insn) => {
                charge(fuel)?;
                self.raw_insn(proc, insn)?;
            }
            Step::Store { addr, val } => {
                let v_pre = self.eval_arg(proc, val, fuel)?;
                charge(fuel)?;
                let v = take(proc, v_pre)?;
                var_frame(proc, addr.depth)?.locals[addr.slot as usize] = v;
            }
            Step::StoreIndex { addr, idx, val } => {
                let i_pre = self.eval_arg(proc, idx, fuel)?;
                let v_pre = self.eval_arg(proc, val, fuel)?;
                charge(fuel)?;
                let v = take(proc, v_pre)?;
                let i = take_int(proc, i_pre)?;
                let fr = var_frame(proc, addr.depth)?;
                let slot = &mut fr.locals[addr.slot as usize];
                *slot = store_elem(slot, i, v)?;
            }
            Step::StoreField { addr, field, val } => {
                let v_pre = self.eval_arg(proc, val, fuel)?;
                charge(fuel)?;
                let v = take(proc, v_pre)?;
                let fr = var_frame(proc, addr.depth)?;
                let slot = &mut fr.locals[addr.slot as usize];
                if let Val::Rec(fields) = slot {
                    let mut fs = (**fields).clone();
                    fs[*field as usize] = v;
                    *slot = Val::Rec(Arc::new(fs));
                } else {
                    return Err(CErr::Rt(RtError::Internal(
                        "field store on non-record".into(),
                    )));
                }
            }
            Step::Sched {
                sig,
                transport,
                val,
                delay,
            } => {
                let v_pre = self.eval_arg(proc, val, fuel)?;
                let d_pre = self.eval_arg(proc, delay, fuel)?;
                charge(fuel)?;
                let d = take_int(proc, d_pre)?;
                let v = take(proc, v_pre)?;
                self.sched(pid, *sig, v, d, *transport, None)?;
            }
            Step::SchedIndex {
                sig,
                transport,
                idx,
                val,
                delay,
            } => {
                let i_pre = self.eval_arg(proc, idx, fuel)?;
                let v_pre = self.eval_arg(proc, val, fuel)?;
                let d_pre = self.eval_arg(proc, delay, fuel)?;
                charge(fuel)?;
                let d = take_int(proc, d_pre)?;
                let v = take(proc, v_pre)?;
                let i = take_int(proc, i_pre)?;
                self.sched(pid, *sig, v, d, *transport, Some(i))?;
            }
            Step::Assert {
                cond,
                report,
                severity,
                pc_after,
            } => {
                let c_pre = self.eval_arg(proc, cond, fuel)?;
                let r_pre = self.eval_arg(proc, report, fuel)?;
                let s_pre = self.eval_arg(proc, severity, fuel)?;
                charge(fuel)?;
                let severity = take_int(proc, s_pre)?;
                let report = take(proc, r_pre)?;
                let cond = take_int(proc, c_pre)? != 0;
                if !cond {
                    let ev = ReportEvent {
                        time: self.now,
                        severity,
                        text: report.as_string(),
                    };
                    self.eff.reports.push(ev.clone());
                    if severity >= 3 {
                        proc.frames.last_mut().expect("frame").pc = *pc_after as usize;
                        self.eff.fail(SimError::Failure(ev));
                        proc.status = ProcStatus::Halted;
                        return Err(CErr::Halt);
                    }
                }
            }
        }
        Ok(())
    }

    /// Executes one materialized instruction on the process value stack,
    /// exactly as the interpreter would (only pure value instructions can
    /// reach here: combiners whose operands crossed a block boundary).
    fn raw_insn(&mut self, proc: &mut ProcState, insn: &Insn) -> Result<(), RtError> {
        match insn {
            Insn::MakeArr { n, left, dir } => {
                let at = proc.stack.len() - *n as usize;
                let data = proc.stack.split_off(at);
                proc.stack.push(Val::arr(*left, *dir, data));
            }
            Insn::MakeRec { n } => {
                let at = proc.stack.len() - *n as usize;
                let data = proc.stack.split_off(at);
                proc.stack.push(Val::Rec(Arc::new(data)));
            }
            Insn::Index => {
                let idx = pop_int(proc)?;
                let arr = pop(proc)?;
                let a = want_arr(&arr)?;
                let off = a.offset(idx).ok_or(RtError::IndexError { index: idx })?;
                proc.stack.push(a.data[off].clone());
            }
            Insn::Slice(dir) => {
                let right = pop_int(proc)?;
                let left = pop_int(proc)?;
                let arr = pop(proc)?;
                let a = want_arr(&arr)?;
                let (o1, o2) = (
                    a.offset(left).ok_or(RtError::IndexError { index: left })?,
                    a.offset(right)
                        .ok_or(RtError::IndexError { index: right })?,
                );
                let (lo, hi) = (o1.min(o2), o1.max(o2));
                let data = a.data[lo..=hi].to_vec();
                proc.stack.push(Val::arr(left, *dir, data));
            }
            Insn::Field(i) => {
                let v = pop(proc)?;
                match v {
                    Val::Rec(fields) => proc.stack.push(fields[*i as usize].clone()),
                    _ => return Err(RtError::Internal("field on non-record".into())),
                }
            }
            Insn::ArrAttr(kind) => {
                let v = pop(proc)?;
                let a = want_arr(&v)?;
                let (l, r) = (a.left, a.right());
                let out = match kind {
                    crate::isa::ArrAttrKind::Length => a.data.len() as i64,
                    crate::isa::ArrAttrKind::Left => l,
                    crate::isa::ArrAttrKind::Right => r,
                    crate::isa::ArrAttrKind::Low => l.min(r),
                    crate::isa::ArrAttrKind::High => l.max(r),
                };
                proc.stack.push(Val::Int(out));
            }
            Insn::Binop(op) => {
                let b = pop(proc)?;
                let a = pop(proc)?;
                proc.stack.push(rts::binop(*op, &a, &b)?);
            }
            Insn::Unop(op) => {
                let a = pop(proc)?;
                proc.stack.push(rts::unop(*op, &a)?);
            }
            Insn::RangeCheck { lo, hi } => {
                let v = want_int(proc.stack.last().ok_or_else(underflow)?)?;
                if v < *lo || v > *hi {
                    return Err(RtError::RangeError {
                        value: v,
                        lo: *lo,
                        hi: *hi,
                    });
                }
            }
            Insn::Dup => {
                let v = proc.stack.last().ok_or_else(underflow)?.clone();
                proc.stack.push(v);
            }
            other => {
                return Err(RtError::Internal(format!(
                    "unexpected raw instruction {other:?}"
                )))
            }
        }
        Ok(())
    }

    /// Evaluates a step argument: `None` for an already-materialized
    /// operand (taken from the value stack later, in pop order), the
    /// tape's value otherwise.
    fn eval_arg(
        &mut self,
        proc: &mut ProcState,
        arg: &Arg,
        fuel: &mut u64,
    ) -> Result<Option<Val>, CErr> {
        match arg {
            Arg::Rt => Ok(None),
            Arg::T(t) => self.run_tape(proc, t, fuel).map(Some),
        }
    }

    /// Evaluates one tape to its value, attempting the unboxed integer
    /// fast path first. The fast path needs enough fuel for the whole
    /// tape up front so it can skip per-operation exhaustion checks.
    fn run_tape(
        &mut self,
        proc: &mut ProcState,
        tape: &compile::Tape,
        fuel: &mut u64,
    ) -> Result<Val, CErr> {
        if let Some(it) = &tape.int_tape {
            if *fuel > it.cost {
                let mut st = std::mem::take(&mut self.scratch.tape_ints);
                st.clear();
                let out = self.tape_int_inner(proc, it, fuel, &mut st);
                self.scratch.tape_ints = st;
                match out? {
                    IntRun::Done(v) => return Ok(Val::Int(v)),
                    IntRun::Bail => {}
                }
            }
        }
        let mut st = std::mem::take(&mut self.scratch.tape_vals);
        st.clear();
        let out = self.tape_val_inner(proc, &tape.ops, fuel, &mut st);
        self.scratch.tape_vals = st;
        out
    }

    /// The unboxed integer evaluator over the fused op stream: raw
    /// `i64` stack, no per-operation fuel checks (the caller proved the
    /// budget), type guards on every leaf. Bailing charges nothing;
    /// completing charges the whole *source* tape; a runtime error
    /// charges through the failing source operation (`IntTape::ends`) —
    /// all exactly what the interpreter would have charged.
    fn tape_int_inner(
        &mut self,
        proc: &mut ProcState,
        it: &compile::IntTape,
        fuel: &mut u64,
        st: &mut Vec<i64>,
    ) -> Result<IntRun, CErr> {
        st.reserve(it.max_depth);
        // Top-of-stack caching: `tos` holds the top value in a register
        // so a chained expression never round-trips through memory. The
        // logical stack is `st` + `tos`; the first push spills a dead
        // phantom bottom into `st`, which a balanced tape never reads.
        let mut tos: i64 = 0;
        // The hot loop never constructs a `Result`: faults and bails
        // jump straight to the cold exits below.
        let mut j = 0;
        let fault: RtError = 'run: {
            while let Some(op) = it.ops.get(j) {
                match *op {
                    IntOp::Imm(v) => {
                        st.push(tos);
                        tos = v;
                    }
                    IntOp::AddImm(k) => match tos.checked_add(k) {
                        Some(v) => tos = v,
                        None => break 'run RtError::Overflow,
                    },
                    IntOp::MulImm(k) => match tos.checked_mul(k) {
                        Some(v) => tos = v,
                        None => break 'run RtError::Overflow,
                    },
                    IntOp::ModMask(mask) => tos &= mask,
                    IntOp::BinopImm(op, k) => match int_binop(op, tos, k) {
                        Ok(v) => tos = v,
                        Err(e) => break 'run e,
                    },
                    IntOp::Binop(op) => {
                        let x = st.pop().expect("balanced tape");
                        match int_binop(op, x, tos) {
                            Ok(v) => tos = v,
                            Err(e) => break 'run e,
                        }
                    }
                    IntOp::Local(a) => match var_frame(proc, a.depth) {
                        Ok(fr) => match &fr.locals[a.slot as usize] {
                            Val::Int(x) => {
                                st.push(tos);
                                tos = *x;
                            }
                            _ => return Ok(IntRun::Bail),
                        },
                        Err(e) => break 'run e,
                    },
                    IntOp::Sig(s) => match &self.signals[s.0 as usize].current {
                        Val::Int(x) => {
                            st.push(tos);
                            tos = *x;
                        }
                        _ => return Ok(IntRun::Bail),
                    },
                    IntOp::Attr(s, attr) => {
                        let sig = &self.signals[s.0 as usize];
                        let v = match attr {
                            SigAttr::Event => sig.event as i64,
                            SigAttr::Active => sig.active as i64,
                            SigAttr::LastValue => match &sig.last_value {
                                Val::Int(x) => *x,
                                _ => return Ok(IntRun::Bail),
                            },
                        };
                        st.push(tos);
                        tos = v;
                    }
                    IntOp::Unop(op) => {
                        tos = match op {
                            Op::Neg => match tos.checked_neg() {
                                Some(v) => v,
                                None => break 'run RtError::Overflow,
                            },
                            Op::Pos | Op::ToInt => tos,
                            Op::Abs => match tos.checked_abs() {
                                Some(v) => v,
                                None => break 'run RtError::Overflow,
                            },
                            Op::Not => (tos == 0) as i64,
                            _ => return Ok(IntRun::Bail),
                        };
                    }
                    IntOp::RangeCheck(lo, hi) => {
                        if tos < lo || tos > hi {
                            break 'run RtError::RangeError { value: tos, lo, hi };
                        }
                    }
                }
                j += 1;
            }
            *fuel -= it.cost;
            return Ok(IntRun::Done(tos));
        };
        // The interpreter charged every preceding source operation plus
        // the one that failed.
        *fuel -= u64::from(it.ends[j]);
        Err(CErr::Rt(fault))
    }

    /// The generic tape evaluator: boxed values, per-operation fuel
    /// accounting, the interpreter's exact error messages.
    #[allow(clippy::too_many_lines)]
    fn tape_val_inner(
        &mut self,
        proc: &mut ProcState,
        ops: &[EOp],
        fuel: &mut u64,
        st: &mut Vec<Val>,
    ) -> Result<Val, CErr> {
        for op in ops {
            *fuel -= 1;
            if *fuel == 0 {
                return Err(CErr::Fuel);
            }
            match op {
                EOp::Int(v) => st.push(Val::Int(*v)),
                EOp::Real(v) => st.push(Val::Real(*v)),
                EOp::Const(v) => st.push(v.clone()),
                EOp::Local(a) => {
                    let v = var_frame(proc, a.depth)?.locals[a.slot as usize].clone();
                    st.push(v);
                }
                EOp::Sig(s) => st.push(self.signals[s.0 as usize].current.clone()),
                EOp::Attr(s, attr) => {
                    let sig = &self.signals[s.0 as usize];
                    let v = match attr {
                        SigAttr::Event => Val::Int(sig.event as i64),
                        SigAttr::Active => Val::Int(sig.active as i64),
                        SigAttr::LastValue => sig.last_value.clone(),
                    };
                    st.push(v);
                }
                EOp::MakeArr { n, left, dir } => {
                    let at = st.len() - *n as usize;
                    let data = st.split_off(at);
                    st.push(Val::arr(*left, *dir, data));
                }
                EOp::MakeRec { n } => {
                    let at = st.len() - *n as usize;
                    let data = st.split_off(at);
                    st.push(Val::Rec(Arc::new(data)));
                }
                EOp::Index => {
                    let idx = spop_int(st)?;
                    let arr = spop(st)?;
                    let a = want_arr(&arr)?;
                    let off = a.offset(idx).ok_or(RtError::IndexError { index: idx })?;
                    st.push(a.data[off].clone());
                }
                EOp::Slice(dir) => {
                    let right = spop_int(st)?;
                    let left = spop_int(st)?;
                    let arr = spop(st)?;
                    let a = want_arr(&arr)?;
                    let (o1, o2) = (
                        a.offset(left).ok_or(RtError::IndexError { index: left })?,
                        a.offset(right)
                            .ok_or(RtError::IndexError { index: right })?,
                    );
                    let (lo, hi) = (o1.min(o2), o1.max(o2));
                    let data = a.data[lo..=hi].to_vec();
                    st.push(Val::arr(left, *dir, data));
                }
                EOp::Field(i) => {
                    let v = spop(st)?;
                    match v {
                        Val::Rec(fields) => st.push(fields[*i as usize].clone()),
                        _ => return Err(CErr::Rt(RtError::Internal("field on non-record".into()))),
                    }
                }
                EOp::ArrAttr(kind) => {
                    let v = spop(st)?;
                    let a = want_arr(&v)?;
                    let (l, r) = (a.left, a.right());
                    let out = match kind {
                        crate::isa::ArrAttrKind::Length => a.data.len() as i64,
                        crate::isa::ArrAttrKind::Left => l,
                        crate::isa::ArrAttrKind::Right => r,
                        crate::isa::ArrAttrKind::Low => l.min(r),
                        crate::isa::ArrAttrKind::High => l.max(r),
                    };
                    st.push(Val::Int(out));
                }
                EOp::Binop(op) => {
                    let b = spop(st)?;
                    let a = spop(st)?;
                    st.push(rts::binop(*op, &a, &b)?);
                }
                EOp::Unop(op) => {
                    let a = spop(st)?;
                    st.push(rts::unop(*op, &a)?);
                }
                EOp::RangeCheck { lo, hi } => {
                    let v = want_int(st.last().ok_or_else(underflow)?)?;
                    if v < *lo || v > *hi {
                        return Err(CErr::Rt(RtError::RangeError {
                            value: v,
                            lo: *lo,
                            hi: *hi,
                        }));
                    }
                }
            }
        }
        spop(st).map_err(CErr::Rt)
    }

    /// The execution half of a signal assignment: validate the delay,
    /// compute the transaction time and final value (subtype conversion,
    /// element update), and buffer a [`SchedOp`]. Driver queues are
    /// untouched here — [`Simulator::commit_sched`] replays the buffered
    /// operations at the barrier, in seed scan order, so the queues land
    /// in exactly the state the unbuffered kernel produced.
    fn sched(
        &mut self,
        pid: usize,
        sig: SigId,
        value: Val,
        delay_fs: i64,
        transport: bool,
        index: Option<i64>,
    ) -> Result<(), RtError> {
        if delay_fs < -1 {
            // −1 is the compiler's "no delay" marker; anything more
            // negative is a model error (LRM: delays must be non-negative).
            return Err(RtError::Internal(format!(
                "negative signal-assignment delay ({delay_fs} fs)"
            )));
        }
        let t = if delay_fs <= 0 {
            self.now.next_delta()
        } else {
            self.now.plus_fs(delay_fs as u64)
        };
        let sig_state = &self.signals[sig.0 as usize];
        // Array assignment implies a subtype conversion: the value takes
        // the target's bounds (same length required).
        let value = match (&value, &sig_state.current) {
            (Val::Arr(v), Val::Arr(t))
                if (v.left, v.dir) != (t.left, t.dir) && v.data.len() == t.data.len() =>
            {
                Val::Arr(crate::value::ArrVal {
                    left: t.left,
                    dir: t.dir,
                    data: Arc::clone(&v.data),
                })
            }
            _ => value,
        };
        // Element assignment: apply to the latest scheduled (or driving)
        // whole value. The latest pending value may still be in this
        // activation's effects buffer (the queue half of an earlier op
        // hasn't run yet); otherwise fall back to the live driver's tail,
        // then its driving value, then the signal's current value — the
        // driving value a driver created at commit would start with.
        let value = match index {
            None => value,
            Some(i) => {
                let base = self.eff.scheds[self.act_scheds..]
                    .iter()
                    .rev()
                    .find(|op| op.sig == sig.0)
                    .map(|op| op.value.clone())
                    .or_else(|| {
                        sig_state.drivers.iter().find(|d| d.proc == pid).map(|d| {
                            d.tx.back()
                                .map(|(_, v)| v.clone())
                                .unwrap_or_else(|| d.driving.clone())
                        })
                    })
                    .unwrap_or_else(|| sig_state.current.clone());
                store_elem(&base, i, value)?
            }
        };
        self.eff.scheds.push(SchedOp {
            sig: sig.0,
            t,
            value,
            transport,
        });
        Ok(())
    }
}

/// Executes one worker's chunk of the cycle's ready set against the
/// shared read-only context, buffering every side effect in `buf`. Runs
/// on pool workers and (for the critical-path profile and jobs=1) on the
/// coordinator thread — identical code either way.
pub(crate) fn run_chunk(ctx: &par::Ctx, buf: &mut JobBuf) {
    let JobBuf {
        procs,
        eff,
        scratch,
        ..
    } = buf;
    let mut ex = Exec {
        program: &ctx.program,
        signals: &ctx.signals,
        compiled: ctx.compiled.as_deref(),
        now: ctx.now,
        fuel_budget: ctx.fuel_budget,
        eff,
        scratch,
        act_scheds: 0,
    };
    for (pid, proc) in procs.iter_mut() {
        let pi = *pid as usize;
        let use_compiled = ctx.compiled_backend && ex.compiled.is_some_and(|cp| cp.proc_ok[pi]);
        ex.run_activation(proc, pi, use_compiled);
    }
}

/// The seed kernel's scan-based scheduler, retained as the reference
/// stepper for the scheduler-equivalence property suite (`equiv` module):
/// `ref_next_time` scans every driver and process, `ref_step_to` re-walks
/// the whole signal and process arrays. A simulator driven exclusively
/// through `ref_*` methods ignores the calendar and sensitivity index and
/// must produce byte-identical observables to the event-driven path.
#[cfg(test)]
impl<'a> Simulator<'a> {
    pub(crate) fn ref_next_time(&self) -> Option<Time> {
        let mut next: Option<Time> = None;
        for sig in self.signals.iter() {
            for d in &sig.drivers {
                if let Some((t, _)) = d.tx.front() {
                    next = Some(next.map_or(*t, |n| n.min(*t)));
                }
            }
        }
        for p in &self.procs {
            if let ProcStatus::Suspended {
                timeout: Some(t), ..
            } = &p.status
            {
                next = Some(next.map_or(*t, |n| n.min(*t)));
            }
        }
        next
    }

    pub(crate) fn ref_step_to(&mut self, next: Time) -> Result<(), SimError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        self.stats.cycles += 1;
        if next.fs == self.now.fs && self.stats.cycles > 1 {
            self.stats.delta_cycles += 1;
        }
        self.now = next;
        // Clear the previous cycle's event/active flags.
        for s in self.sigs_mut().iter_mut() {
            s.event = false;
            s.active = false;
        }
        // Mature transactions and compute new signal values.
        for si in 0..self.signals.len() {
            let mut any_active = false;
            {
                let Simulator {
                    signals,
                    stats,
                    now,
                    ..
                } = &mut *self;
                let sig = &mut Arc::get_mut(signals)
                    .expect("signal state shared outside the process phase")[si];
                for d in sig.drivers.iter_mut() {
                    while d.tx.front().is_some_and(|(t, _)| *t <= *now) {
                        if let Some((_, v)) = d.tx.pop_front() {
                            d.driving = v;
                            any_active = true;
                            stats.transactions += 1;
                        }
                    }
                }
            }
            if !any_active {
                continue;
            }
            let new_val = self.effective_value(si)?;
            let now = self.now;
            let sig = &mut self.sigs_mut()[si];
            sig.active = true;
            if new_val != sig.current {
                sig.last_value = sig.current.clone();
                sig.current = new_val;
                sig.last_event = Some(now);
                sig.event = true;
                sig.events += 1;
                self.stats.events += 1;
                let name = self.program.signals[si].name.clone();
                let current = self.signals[si].current.clone();
                for obs in self.observers.iter_mut() {
                    obs(now, SigId(si as u32), &name, &current);
                }
            }
        }
        // Resume processes.
        for pi in 0..self.procs.len() {
            let resume = match &self.procs[pi].status {
                ProcStatus::Suspended { sens, timeout } => {
                    let timed_out = timeout.is_some_and(|t| t <= self.now);
                    let evented = sens.iter().any(|s| self.signals[s.0 as usize].event);
                    if timed_out || evented {
                        Some(timed_out && !evented)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if let Some(timed_out) = resume {
                self.procs[pi].status = ProcStatus::Ready;
                self.procs[pi].stack.push(Val::Int(timed_out as i64));
                self.procs[pi].resumptions += 1;
                self.stats.resumptions += 1;
            }
        }
        self.execute_ready()
    }

    pub(crate) fn ref_run_slice(
        &mut self,
        deadline: Time,
        max_cycles: u64,
    ) -> Result<RunOutcome, SimError> {
        let mut cycles: u64 = 0;
        if self.stats.cycles == 0 {
            self.execute_ready()?;
            self.stats.cycles += 1;
            cycles += 1;
        }
        loop {
            let Some(next) = self.ref_next_time() else {
                return Ok(RunOutcome::Quiescent);
            };
            if next.fs > deadline.fs {
                return Ok(RunOutcome::DeadlineReached);
            }
            if cycles >= max_cycles {
                return Ok(RunOutcome::CycleBudget);
            }
            self.ref_step_to(next)?;
            cycles += 1;
        }
    }
}

fn pop(proc: &mut ProcState) -> Result<Val, RtError> {
    proc.stack.pop().ok_or_else(underflow)
}

/// Pops an integer (enumeration position, boolean, delay). The IR is
/// typed, so a mismatch is a code-generator bug — but it must surface as
/// a per-process [`RtError`], not a panic that takes the host (a `vhdld`
/// worker, a batch thread) down with it.
fn pop_int(proc: &mut ProcState) -> Result<i64, RtError> {
    match pop(proc)? {
        Val::Int(i) => Ok(i),
        v => Err(RtError::Internal(format!("expected integer, got {v}"))),
    }
}

/// Checked view of a value as an array (see [`pop_int`] on why this is an
/// error, not a panic).
fn want_arr(v: &Val) -> Result<&ArrVal, RtError> {
    match v {
        Val::Arr(a) => Ok(a),
        v => Err(RtError::Internal(format!("expected array, got {v}"))),
    }
}

/// Checked view of a value as an integer.
fn want_int(v: &Val) -> Result<i64, RtError> {
    match v {
        Val::Int(i) => Ok(*i),
        v => Err(RtError::Internal(format!("expected integer, got {v}"))),
    }
}

fn underflow() -> RtError {
    RtError::Internal("value stack underflow".into())
}

/// Takes a step operand: the pre-evaluated tape value, or the top of the
/// process value stack for a materialized operand.
fn take(proc: &mut ProcState, pre: Option<Val>) -> Result<Val, CErr> {
    match pre {
        Some(v) => Ok(v),
        None => pop(proc).map_err(CErr::Rt),
    }
}

/// [`take`] with the interpreter's integer check and message.
fn take_int(proc: &mut ProcState, pre: Option<Val>) -> Result<i64, CErr> {
    match take(proc, pre)? {
        Val::Int(i) => Ok(i),
        v => Err(CErr::Rt(RtError::Internal(format!(
            "expected integer, got {v}"
        )))),
    }
}

/// Pops the tape scratch stack.
fn spop(st: &mut Vec<Val>) -> Result<Val, RtError> {
    st.pop().ok_or_else(underflow)
}

/// Pops the tape scratch stack, expecting an integer.
fn spop_int(st: &mut Vec<Val>) -> Result<i64, RtError> {
    match spop(st)? {
        Val::Int(i) => Ok(i),
        v => Err(RtError::Internal(format!("expected integer, got {v}"))),
    }
}

/// Integer-domain binary operation, byte-for-byte the semantics of
/// [`rts::binop`] on two `Val::Int`s (including `checked_div` mapping the
/// `i64::MIN / -1` overflow to [`RtError::DivByZero`], as the generic
/// path does).
fn int_binop(op: Op, x: i64, y: i64) -> Result<i64, RtError> {
    use std::cmp::Ordering;
    Ok(match op {
        Op::Add => x.checked_add(y).ok_or(RtError::Overflow)?,
        Op::Sub => x.checked_sub(y).ok_or(RtError::Overflow)?,
        Op::Mul | Op::MulRev => x.checked_mul(y).ok_or(RtError::Overflow)?,
        Op::Div | Op::DivPhys => x.checked_div(y).ok_or(RtError::DivByZero)?,
        Op::Mod => x.checked_rem_euclid(y).ok_or(RtError::DivByZero)?,
        Op::Rem => x.checked_rem(y).ok_or(RtError::DivByZero)?,
        Op::Pow => u32::try_from(y)
            .ok()
            .and_then(|e| x.checked_pow(e))
            .ok_or(RtError::Overflow)?,
        Op::Eq => (x == y) as i64,
        Op::Ne => (x != y) as i64,
        Op::Lt => (x.cmp(&y) == Ordering::Less) as i64,
        Op::Le => (x.cmp(&y) != Ordering::Greater) as i64,
        Op::Gt => (x.cmp(&y) == Ordering::Greater) as i64,
        Op::Ge => (x.cmp(&y) != Ordering::Less) as i64,
        Op::And | Op::Or | Op::Nand | Op::Nor | Op::Xor => rts::logical(op, x, y),
        _ => {
            return Err(RtError::Internal(format!(
                "non-integer op {op:?} on the integer fast path"
            )))
        }
    })
}

fn var_frame<'p>(proc: &'p mut ProcState, depth: u8) -> Result<&'p mut Frame, RtError> {
    let top = proc.frames.len() - 1;
    let mut idx = top;
    for _ in 0..depth {
        idx = proc.frames[idx]
            .static_link
            .ok_or_else(|| RtError::Internal("missing static link".into()))?;
    }
    Ok(&mut proc.frames[idx])
}

/// Replaces element `idx` in an array value (copy-on-write).
fn store_elem(base: &Val, idx: i64, v: Val) -> Result<Val, RtError> {
    match base {
        Val::Arr(a) => {
            let off = a.offset(idx).ok_or(RtError::IndexError { index: idx })?;
            let mut data = (*a.data).clone();
            data[off] = v;
            Ok(Val::Arr(crate::value::ArrVal {
                left: a.left,
                dir: a.dir,
                data: Arc::new(data),
            }))
        }
        _ => Err(RtError::Internal("element store on non-array".into())),
    }
}
