//! VHDL I/O: the report sink and VCD waveform dump (§2.1's "VHDL I/O"
//! module, adapted to a simulator without a host filesystem contract).

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::isa::SigId;
use crate::value::{Time, Val};

/// Accumulates value changes into VCD (Value Change Dump) text.
///
/// # Example
///
/// ```
/// use sim_kernel::io::Vcd;
/// let mut vcd = Vcd::new("1fs");
/// vcd.change(sim_kernel::value::Time::ZERO, sim_kernel::isa::SigId(0), "top.clk",
///            &sim_kernel::value::Val::Int(1));
/// let text = vcd.finish();
/// assert!(text.contains("$var"));
/// assert!(text.contains("#0"));
/// ```
pub struct Vcd {
    timescale: String,
    ids: HashMap<SigId, (char, String)>,
    next_code: u8,
    body: String,
    last_time: Option<Time>,
}

impl Vcd {
    /// Creates a writer with the given timescale string (e.g. `"1fs"`).
    pub fn new(timescale: &str) -> Vcd {
        Vcd {
            timescale: timescale.to_string(),
            ids: HashMap::new(),
            next_code: b'!',
            body: String::new(),
            last_time: None,
        }
    }

    /// Records a value change.
    pub fn change(&mut self, t: Time, sig: SigId, name: &str, v: &Val) {
        if !self.ids.contains_key(&sig) {
            let code = self.next_code as char;
            self.next_code = self.next_code.saturating_add(1);
            self.ids.insert(sig, (code, name.to_string()));
        }
        let (code, _) = self.ids[&sig];
        if self.last_time != Some(t) {
            let _ = writeln!(self.body, "#{}", t.fs);
            self.last_time = Some(t);
        }
        match v {
            Val::Int(i) if *i == 0 || *i == 1 => {
                let _ = writeln!(self.body, "{i}{code}");
            }
            Val::Int(i) => {
                let _ = writeln!(self.body, "b{:b} {code}", i.unsigned_abs());
            }
            Val::Real(r) => {
                let _ = writeln!(self.body, "r{r} {code}");
            }
            Val::Arr(a) => {
                let bits: String = a
                    .data
                    .iter()
                    .map(|e| if e.as_int() != 0 { '1' } else { '0' })
                    .collect();
                let _ = writeln!(self.body, "b{bits} {code}");
            }
            Val::Rec(_) => {
                let _ = writeln!(self.body, "bx {code}");
            }
        }
    }

    /// Serializes the writer's full state (codes, body, time cursor) into
    /// a snapshot encoder, so a checkpointed session's waveform continues
    /// byte-identically after restore.
    pub fn encode(&self, e: &mut crate::snapshot::Enc) {
        e.str(&self.timescale);
        let mut ids: Vec<(SigId, &(char, String))> =
            self.ids.iter().map(|(s, v)| (*s, v)).collect();
        ids.sort_by_key(|(s, _)| *s);
        e.len(ids.len());
        for (sig, (code, name)) in ids {
            e.u32(sig.0);
            e.u8(*code as u8);
            e.str(name);
        }
        e.u8(self.next_code);
        e.str(&self.body);
        match self.last_time {
            None => e.u8(0),
            Some(t) => {
                e.u8(1);
                e.u64(t.fs);
                e.u32(t.delta);
            }
        }
    }

    /// Rebuilds a writer from [`Vcd::encode`]'s output.
    ///
    /// # Errors
    ///
    /// Any [`crate::snapshot::SnapshotError`]; hostile bytes never panic.
    pub fn decode(d: &mut crate::snapshot::Dec<'_>) -> Result<Vcd, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let timescale = d.str()?;
        let n = d.len(6)?;
        let mut ids = HashMap::with_capacity(n);
        for _ in 0..n {
            let sig = SigId(d.u32()?);
            let code = d.u8()? as char;
            let name = d.str()?;
            ids.insert(sig, (code, name));
        }
        let next_code = d.u8()?;
        let body = d.str()?;
        let last_time = match d.u8()? {
            0 => None,
            1 => {
                let fs = d.u64()?;
                let delta = d.u32()?;
                Some(Time { fs, delta })
            }
            t => return Err(SnapshotError::Corrupt(format!("bad last-time tag {t}"))),
        };
        Ok(Vcd {
            timescale,
            ids,
            next_code,
            body,
            last_time,
        })
    }

    /// Renders the complete VCD file.
    pub fn finish(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$timescale {} $end", self.timescale);
        let mut vars: Vec<_> = self.ids.values().collect();
        vars.sort_by_key(|(c, _)| *c);
        for (code, name) in vars {
            let _ = writeln!(out, "$var wire 1 {code} {name} $end");
        }
        let _ = writeln!(out, "$enddefinitions $end");
        out.push_str(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::VDir;

    #[test]
    fn vcd_format() {
        let mut vcd = Vcd::new("1fs");
        vcd.change(Time::ZERO, SigId(0), "clk", &Val::Int(0));
        vcd.change(Time::fs(5), SigId(0), "clk", &Val::Int(1));
        vcd.change(
            Time::fs(5),
            SigId(1),
            "bus",
            &Val::arr(1, VDir::Downto, vec![Val::Int(1), Val::Int(0)]),
        );
        let text = vcd.finish();
        assert!(text.contains("$timescale 1fs $end"));
        assert!(text.contains("$var wire 1 ! clk $end"));
        assert!(text.contains("#0\n0!"));
        assert!(text.contains("#5\n1!"));
        assert!(text.contains("b10 \""));
    }

    /// Golden test: the complete output text, byte for byte. The VCD
    /// format is consumed by external waveform viewers, so any drift in
    /// header layout, code assignment, or change encoding is a
    /// compatibility break, not a cosmetic change.
    #[test]
    fn vcd_golden_text() {
        let mut vcd = Vcd::new("1fs");
        vcd.change(Time::ZERO, SigId(0), "tb.clk", &Val::Int(0));
        vcd.change(Time::ZERO, SigId(1), "tb.count", &Val::Int(5));
        vcd.change(Time::fs(5), SigId(0), "tb.clk", &Val::Int(1));
        vcd.change(
            Time::fs(5),
            SigId(2),
            "tb.bus",
            &Val::arr(1, VDir::Downto, vec![Val::Int(1), Val::Int(0)]),
        );
        vcd.change(Time::fs(12), SigId(3), "tb.temp", &Val::Real(2.5));
        vcd.change(Time::fs(12), SigId(0), "tb.clk", &Val::Int(0));
        let golden = "\
$timescale 1fs $end
$var wire 1 ! tb.clk $end
$var wire 1 \" tb.count $end
$var wire 1 # tb.bus $end
$var wire 1 $ tb.temp $end
$enddefinitions $end
#0
0!
b101 \"
#5
1!
b10 #
#12
r2.5 $
0!
";
        assert_eq!(vcd.finish(), golden);
    }
}
