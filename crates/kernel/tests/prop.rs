//! Property tests for the simulation kernel: determinism, time
//! monotonicity, preemption invariants, and runtime arithmetic against an
//! i64 model.
//!
//! Ported from proptest to the in-repo `ag-harness` framework; the input
//! space and every invariant are unchanged.

use std::sync::Arc;

use ag_harness::{check, check_eq, forall, Config};
use sim_kernel::{rts, Insn, Op, Program, SimStats, Simulator, Time, Val};

/// A randomized multi-driver program: `n` oscillators with random periods
/// and one watcher per oscillator counting events.
fn random_program(periods: &[u64]) -> Program {
    let mut p = Program::default();
    for (i, &period) in periods.iter().enumerate() {
        let s = p.add_signal(format!("s{i}"), Val::Int(0));
        p.add_process(
            format!("osc{i}"),
            0,
            vec![
                Insn::LoadSig(s),
                Insn::Unop(Op::Not),
                Insn::PushInt(period as i64),
                Insn::Sched {
                    sig: s,
                    transport: false,
                },
                Insn::Wait {
                    sens: Arc::new(vec![s]),
                    with_timeout: false,
                },
                Insn::Pop,
                Insn::Jump(0),
            ],
        );
    }
    p
}

fn run(periods: &[u64], until: u64) -> (SimStats, Vec<Val>, Vec<Time>) {
    let times = std::cell::RefCell::new(Vec::new());
    let mut sim = Simulator::new(random_program(periods));
    // The observer sees every event; record times for monotonicity.
    // (Observers cannot outlive sim, so collect into a cell.)
    let times_ref = &times;
    sim.observe(Box::new(move |t, _, _, _| times_ref.borrow_mut().push(t)));
    sim.run_until(Time::fs(until)).unwrap();
    let vals = (0..periods.len())
        .map(|i| sim.value_by_name(&format!("s{i}")).unwrap().clone())
        .collect();
    let stats = sim.stats();
    let t = times.borrow().clone();
    (stats, vals, t)
}

/// Two runs of the same program are bit-identical (determinism), and
/// observed event times never decrease (monotonicity).
#[test]
fn deterministic_and_monotone() {
    forall!(Config::new("deterministic_and_monotone").cases(64), |s| {
        let periods = s.vec(1, 4, |s| s.u64_in(1, 49));
        let until = s.u64_in(100, 1999);
        let (s1, v1, t1) = run(&periods, until);
        let (s2, v2, _) = run(&periods, until);
        check_eq!(s1, s2);
        check_eq!(v1, v2);
        for w in t1.windows(2) {
            check!(w[0] <= w[1], "time went backwards: {} then {}", w[0], w[1]);
        }
    });
}

/// Each oscillator's final value equals the parity of elapsed/period,
/// and the event count is the sum over oscillators.
#[test]
fn oscillator_event_counts() {
    forall!(Config::new("oscillator_event_counts").cases(64), |s| {
        let periods = s.vec(1, 3, |s| s.u64_in(1, 39));
        let until = s.u64_in(50, 1499);
        let (stats, vals, _) = run(&periods, until);
        let mut expect_events = 0u64;
        for (i, &p) in periods.iter().enumerate() {
            let toggles = until / p;
            expect_events += toggles;
            check_eq!(
                vals[i].as_int(),
                (toggles % 2) as i64,
                "osc {} period {}",
                i,
                p
            );
        }
        check_eq!(stats.events, expect_events);
    });
}

/// Inertial preemption: after any sequence of scheduled assignments at
/// strictly increasing delays within one process run, only the last
/// one survives.
#[test]
fn inertial_last_write_wins() {
    forall!(Config::new("inertial_last_write_wins").cases(64), |s| {
        let vals = s.vec(1, 7, |s| s.i64_in(0, 99));
        let mut p = Program::default();
        let sig = p.add_signal("s", Val::Int(-1));
        let mut code = Vec::new();
        for (i, &v) in vals.iter().enumerate() {
            code.push(Insn::PushInt(v));
            code.push(Insn::PushInt(10 + i as i64));
            code.push(Insn::Sched {
                sig,
                transport: false,
            });
        }
        code.push(Insn::Halt);
        p.add_process("w", 0, code);
        let mut sim = Simulator::new(p);
        sim.run_until(Time::fs(100)).unwrap();
        check_eq!(sim.signal_value(sig), &Val::Int(*vals.last().unwrap()));
        check_eq!(sim.stats().transactions, 1);
    });
}

/// Transport: all transactions at increasing times survive in order.
#[test]
fn transport_preserves_waveform() {
    forall!(Config::new("transport_preserves_waveform").cases(64), |s| {
        let vals = s.vec(1, 7, |s| s.i64_in(0, 99));
        let mut p = Program::default();
        let sig = p.add_signal("s", Val::Int(-1));
        let mut code = Vec::new();
        for (i, &v) in vals.iter().enumerate() {
            code.push(Insn::PushInt(v));
            code.push(Insn::PushInt(10 * (i as i64 + 1)));
            code.push(Insn::Sched {
                sig,
                transport: true,
            });
        }
        code.push(Insn::Halt);
        p.add_process("w", 0, code);
        let mut sim = Simulator::new(p);
        sim.run_until(Time::fs(10_000)).unwrap();
        check_eq!(sim.signal_value(sig), &Val::Int(*vals.last().unwrap()));
        check_eq!(sim.stats().transactions, vals.len() as u64);
    });
}

/// `Time::parse` against a u128 reference model: a generated
/// `whole.frac unit` literal parses to exactly `whole*fs_per +
/// floor(frac*fs_per/10^digits)` femtoseconds, errors (never panics)
/// when the product overflows u64 or the fraction carries more than 18
/// significant digits, and is total over hostile magnitudes.
#[test]
fn time_parse_matches_u128_model() {
    const UNITS: [(&str, u64); 9] = [
        ("fs", 1),
        ("ps", 1_000),
        ("ns", 1_000_000),
        ("us", 1_000_000_000),
        ("ms", 1_000_000_000_000),
        ("sec", 1_000_000_000_000_000),
        ("min", 60_000_000_000_000_000),
        ("hr", 3_600_000_000_000_000_000),
        ("", 1_000_000),
    ];
    forall!(
        Config::new("time_parse_matches_u128_model").cases(256),
        |s| {
            let &(unit, fs_per) = s.pick(&UNITS);
            // Bias toward the overflow boundary: small magnitudes exercise
            // the fraction grid, huge ones the checked multiply.
            let whole: u64 = if s.bool() {
                s.u64_in(0, 9_999)
            } else {
                s.u64_in(0, u64::MAX / 1_000)
            };
            let frac = s.string_of("0123456789", 24);
            let text = if frac.is_empty() {
                format!("{whole}{unit}")
            } else {
                format!("{whole}.{frac} {unit}")
            };
            let got = Time::parse(&text);
            let sig = frac.trim_end_matches('0');
            if sig.len() > 18 {
                let e = got.expect_err("oversized fraction must be rejected");
                check!(
                    e.contains("fractional digits"),
                    "diagnostic should name the fraction: {e}"
                );
                return Ok(());
            }
            let num: u128 = sig.parse().unwrap_or(0);
            let den: u128 = 10u128.pow(sig.len() as u32);
            let model = (whole as u128)
                .checked_mul(fs_per as u128)
                .and_then(|w| w.checked_add(num * fs_per as u128 / den))
                .filter(|&fs| fs <= u64::MAX as u128);
            match (got, model) {
                (Ok(t), Some(fs)) => check_eq!(t.fs as u128, fs, "`{text}`"),
                (Err(e), None) => check!(
                    e.contains("overflows"),
                    "diagnostic should say overflow: {e}"
                ),
                (got, model) => check!(false, "`{text}`: got {got:?}, model {model:?}"),
            }
        }
    );
}

/// `Time::parse` is total and rejects malformed magnitudes — multi-dot
/// (`1.2.3`), bare dots, stray underscores mixed with junk — without
/// ever panicking, no matter what the magnitude region contains.
#[test]
fn time_parse_rejects_malformed() {
    forall!(
        Config::new("time_parse_rejects_malformed").cases(256),
        |s| {
            let mag = s.string_of("0123456789._", 12);
            let unit = s.pick(&["", "fs", "ns", "hr", "parsec"]).to_string();
            let text = format!("{mag}{unit}");
            // Totality: any outcome is fine, panicking is not.
            let _ = Time::parse(&text);
            // Multi-dot magnitudes must be rejected outright.
            if mag.matches('.').count() >= 2 {
                check!(
                    Time::parse(&format!("{mag}ns")).is_err(),
                    "multi-dot `{mag}ns` should not parse"
                );
            }
        }
    );
}

/// Runtime binary operations agree with checked i64 arithmetic.
#[test]
fn rts_matches_i64() {
    forall!(Config::new("rts_matches_i64").cases(64), |s| {
        let a = s.i64_in(-1_000_000, 999_999);
        let b = s.i64_in(-1000, 999);
        let check_op = |op: Op, want: Option<i64>| -> ag_harness::TestResult {
            match rts::binop(op, &Val::Int(a), &Val::Int(b)) {
                Ok(Val::Int(got)) => check_eq!(Some(got), want, "{:?}", op),
                Ok(other) => check!(false, "non-int result {:?}", other),
                Err(_) => check!(want.is_none(), "{:?} errored but model had {:?}", op, want),
            }
            Ok(())
        };
        check_op(Op::Add, a.checked_add(b))?;
        check_op(Op::Sub, a.checked_sub(b))?;
        check_op(Op::Mul, a.checked_mul(b))?;
        check_op(Op::Div, a.checked_div(b))?;
        check_op(Op::Mod, a.checked_rem_euclid(b))?;
        check_op(Op::Rem, a.checked_rem(b))?;
        check_op(Op::Lt, Some((a < b) as i64))?;
        check_op(Op::Ge, Some((a >= b) as i64))?;
        check_op(Op::Eq, Some((a == b) as i64))?;
    });
}
