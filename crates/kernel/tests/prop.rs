//! Property tests for the simulation kernel: determinism, time
//! monotonicity, preemption invariants, and runtime arithmetic against an
//! i64 model.
//!
//! Ported from proptest to the in-repo `ag-harness` framework; the input
//! space and every invariant are unchanged.

use std::rc::Rc;

use ag_harness::{check, check_eq, forall, Config};
use sim_kernel::{rts, Insn, Op, Program, SimStats, Simulator, Time, Val};

/// A randomized multi-driver program: `n` oscillators with random periods
/// and one watcher per oscillator counting events.
fn random_program(periods: &[u64]) -> Program {
    let mut p = Program::default();
    for (i, &period) in periods.iter().enumerate() {
        let s = p.add_signal(format!("s{i}"), Val::Int(0));
        p.add_process(
            format!("osc{i}"),
            0,
            vec![
                Insn::LoadSig(s),
                Insn::Unop(Op::Not),
                Insn::PushInt(period as i64),
                Insn::Sched {
                    sig: s,
                    transport: false,
                },
                Insn::Wait {
                    sens: Rc::new(vec![s]),
                    with_timeout: false,
                },
                Insn::Pop,
                Insn::Jump(0),
            ],
        );
    }
    p
}

fn run(periods: &[u64], until: u64) -> (SimStats, Vec<Val>, Vec<Time>) {
    let times = std::cell::RefCell::new(Vec::new());
    let mut sim = Simulator::new(random_program(periods));
    // The observer sees every event; record times for monotonicity.
    // (Observers cannot outlive sim, so collect into a cell.)
    let times_ref = &times;
    sim.observe(Box::new(move |t, _, _, _| times_ref.borrow_mut().push(t)));
    sim.run_until(Time::fs(until)).unwrap();
    let vals = (0..periods.len())
        .map(|i| sim.value_by_name(&format!("s{i}")).unwrap().clone())
        .collect();
    let stats = sim.stats();
    let t = times.borrow().clone();
    (stats, vals, t)
}

/// Two runs of the same program are bit-identical (determinism), and
/// observed event times never decrease (monotonicity).
#[test]
fn deterministic_and_monotone() {
    forall!(Config::new("deterministic_and_monotone").cases(64), |s| {
        let periods = s.vec(1, 4, |s| s.u64_in(1, 49));
        let until = s.u64_in(100, 1999);
        let (s1, v1, t1) = run(&periods, until);
        let (s2, v2, _) = run(&periods, until);
        check_eq!(s1, s2);
        check_eq!(v1, v2);
        for w in t1.windows(2) {
            check!(w[0] <= w[1], "time went backwards: {} then {}", w[0], w[1]);
        }
    });
}

/// Each oscillator's final value equals the parity of elapsed/period,
/// and the event count is the sum over oscillators.
#[test]
fn oscillator_event_counts() {
    forall!(Config::new("oscillator_event_counts").cases(64), |s| {
        let periods = s.vec(1, 3, |s| s.u64_in(1, 39));
        let until = s.u64_in(50, 1499);
        let (stats, vals, _) = run(&periods, until);
        let mut expect_events = 0u64;
        for (i, &p) in periods.iter().enumerate() {
            let toggles = until / p;
            expect_events += toggles;
            check_eq!(
                vals[i].as_int(),
                (toggles % 2) as i64,
                "osc {} period {}",
                i,
                p
            );
        }
        check_eq!(stats.events, expect_events);
    });
}

/// Inertial preemption: after any sequence of scheduled assignments at
/// strictly increasing delays within one process run, only the last
/// one survives.
#[test]
fn inertial_last_write_wins() {
    forall!(Config::new("inertial_last_write_wins").cases(64), |s| {
        let vals = s.vec(1, 7, |s| s.i64_in(0, 99));
        let mut p = Program::default();
        let sig = p.add_signal("s", Val::Int(-1));
        let mut code = Vec::new();
        for (i, &v) in vals.iter().enumerate() {
            code.push(Insn::PushInt(v));
            code.push(Insn::PushInt(10 + i as i64));
            code.push(Insn::Sched {
                sig,
                transport: false,
            });
        }
        code.push(Insn::Halt);
        p.add_process("w", 0, code);
        let mut sim = Simulator::new(p);
        sim.run_until(Time::fs(100)).unwrap();
        check_eq!(sim.signal_value(sig), &Val::Int(*vals.last().unwrap()));
        check_eq!(sim.stats().transactions, 1);
    });
}

/// Transport: all transactions at increasing times survive in order.
#[test]
fn transport_preserves_waveform() {
    forall!(Config::new("transport_preserves_waveform").cases(64), |s| {
        let vals = s.vec(1, 7, |s| s.i64_in(0, 99));
        let mut p = Program::default();
        let sig = p.add_signal("s", Val::Int(-1));
        let mut code = Vec::new();
        for (i, &v) in vals.iter().enumerate() {
            code.push(Insn::PushInt(v));
            code.push(Insn::PushInt(10 * (i as i64 + 1)));
            code.push(Insn::Sched {
                sig,
                transport: true,
            });
        }
        code.push(Insn::Halt);
        p.add_process("w", 0, code);
        let mut sim = Simulator::new(p);
        sim.run_until(Time::fs(10_000)).unwrap();
        check_eq!(sim.signal_value(sig), &Val::Int(*vals.last().unwrap()));
        check_eq!(sim.stats().transactions, vals.len() as u64);
    });
}

/// Runtime binary operations agree with checked i64 arithmetic.
#[test]
fn rts_matches_i64() {
    forall!(Config::new("rts_matches_i64").cases(64), |s| {
        let a = s.i64_in(-1_000_000, 999_999);
        let b = s.i64_in(-1000, 999);
        let check_op = |op: Op, want: Option<i64>| -> ag_harness::TestResult {
            match rts::binop(op, &Val::Int(a), &Val::Int(b)) {
                Ok(Val::Int(got)) => check_eq!(Some(got), want, "{:?}", op),
                Ok(other) => check!(false, "non-int result {:?}", other),
                Err(_) => check!(want.is_none(), "{:?} errored but model had {:?}", op, want),
            }
            Ok(())
        };
        check_op(Op::Add, a.checked_add(b))?;
        check_op(Op::Sub, a.checked_sub(b))?;
        check_op(Op::Mul, a.checked_mul(b))?;
        check_op(Op::Div, a.checked_div(b))?;
        check_op(Op::Mod, a.checked_rem_euclid(b))?;
        check_op(Op::Rem, a.checked_rem(b))?;
        check_op(Op::Lt, Some((a < b) as i64))?;
        check_op(Op::Ge, Some((a >= b) as i64))?;
        check_op(Op::Eq, Some((a == b) as i64))?;
    });
}
