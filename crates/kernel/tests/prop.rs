//! Property tests for the simulation kernel: determinism, time
//! monotonicity, preemption invariants, and runtime arithmetic against an
//! i64 model.

use std::rc::Rc;

use proptest::prelude::*;
use sim_kernel::{rts, Insn, Op, Program, SimStats, Simulator, Time, Val};

/// A randomized multi-driver program: `n` oscillators with random periods
/// and one watcher per oscillator counting events.
fn random_program(periods: &[u64]) -> Program {
    let mut p = Program::default();
    for (i, &period) in periods.iter().enumerate() {
        let s = p.add_signal(format!("s{i}"), Val::Int(0));
        p.add_process(
            format!("osc{i}"),
            0,
            vec![
                Insn::LoadSig(s),
                Insn::Unop(Op::Not),
                Insn::PushInt(period as i64),
                Insn::Sched {
                    sig: s,
                    transport: false,
                },
                Insn::Wait {
                    sens: Rc::new(vec![s]),
                    with_timeout: false,
                },
                Insn::Pop,
                Insn::Jump(0),
            ],
        );
    }
    p
}

fn run(periods: &[u64], until: u64) -> (SimStats, Vec<Val>, Vec<Time>) {
    let times = std::cell::RefCell::new(Vec::new());
    let mut sim = Simulator::new(random_program(periods));
    // The observer sees every event; record times for monotonicity.
    // (Observers cannot outlive sim, so collect into a cell.)
    let times_ref = &times;
    sim.observe(Box::new(move |t, _, _, _| times_ref.borrow_mut().push(t)));
    sim.run_until(Time::fs(until)).unwrap();
    let vals = (0..periods.len())
        .map(|i| sim.value_by_name(&format!("s{i}")).unwrap().clone())
        .collect();
    let stats = sim.stats();
    let t = times.borrow().clone();
    (stats, vals, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two runs of the same program are bit-identical (determinism), and
    /// observed event times never decrease (monotonicity).
    #[test]
    fn deterministic_and_monotone(periods in proptest::collection::vec(1u64..50, 1..5),
                                  until in 100u64..2000) {
        let (s1, v1, t1) = run(&periods, until);
        let (s2, v2, _) = run(&periods, until);
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(v1, v2);
        for w in t1.windows(2) {
            prop_assert!(w[0] <= w[1], "time went backwards: {} then {}", w[0], w[1]);
        }
    }

    /// Each oscillator's final value equals the parity of elapsed/period,
    /// and the event count is the sum over oscillators.
    #[test]
    fn oscillator_event_counts(periods in proptest::collection::vec(1u64..40, 1..4),
                               until in 50u64..1500) {
        let (stats, vals, _) = run(&periods, until);
        let mut expect_events = 0u64;
        for (i, &p) in periods.iter().enumerate() {
            let toggles = until / p;
            expect_events += toggles;
            prop_assert_eq!(vals[i].as_int(), (toggles % 2) as i64, "osc {} period {}", i, p);
        }
        prop_assert_eq!(stats.events, expect_events);
    }

    /// Inertial preemption: after any sequence of scheduled assignments at
    /// strictly increasing delays within one process run, only the last
    /// one survives.
    #[test]
    fn inertial_last_write_wins(vals in proptest::collection::vec(0i64..100, 1..8)) {
        let mut p = Program::default();
        let s = p.add_signal("s", Val::Int(-1));
        let mut code = Vec::new();
        for (i, &v) in vals.iter().enumerate() {
            code.push(Insn::PushInt(v));
            code.push(Insn::PushInt(10 + i as i64));
            code.push(Insn::Sched { sig: s, transport: false });
        }
        code.push(Insn::Halt);
        p.add_process("w", 0, code);
        let mut sim = Simulator::new(p);
        sim.run_until(Time::fs(100)).unwrap();
        prop_assert_eq!(sim.signal_value(s), &Val::Int(*vals.last().unwrap()));
        prop_assert_eq!(sim.stats().transactions, 1);
    }

    /// Transport: all transactions at increasing times survive in order.
    #[test]
    fn transport_preserves_waveform(vals in proptest::collection::vec(0i64..100, 1..8)) {
        let mut p = Program::default();
        let s = p.add_signal("s", Val::Int(-1));
        let mut code = Vec::new();
        for (i, &v) in vals.iter().enumerate() {
            code.push(Insn::PushInt(v));
            code.push(Insn::PushInt(10 * (i as i64 + 1)));
            code.push(Insn::Sched { sig: s, transport: true });
        }
        code.push(Insn::Halt);
        p.add_process("w", 0, code);
        let mut sim = Simulator::new(p);
        sim.run_until(Time::fs(10_000)).unwrap();
        prop_assert_eq!(sim.signal_value(s), &Val::Int(*vals.last().unwrap()));
        prop_assert_eq!(sim.stats().transactions, vals.len() as u64);
    }

    /// Runtime binary operations agree with checked i64 arithmetic.
    #[test]
    fn rts_matches_i64(a in -1_000_000i64..1_000_000, b in -1000i64..1000) {
        let check = |op: Op, want: Option<i64>| {
            match rts::binop(op, &Val::Int(a), &Val::Int(b)) {
                Ok(Val::Int(got)) => prop_assert_eq!(Some(got), want, "{:?}", op),
                Ok(other) => prop_assert!(false, "non-int result {other:?}"),
                Err(_) => prop_assert!(want.is_none(), "{:?} errored but model had {:?}", op, want),
            }
            Ok(())
        };
        check(Op::Add, a.checked_add(b))?;
        check(Op::Sub, a.checked_sub(b))?;
        check(Op::Mul, a.checked_mul(b))?;
        check(Op::Div, a.checked_div(b))?;
        check(Op::Mod, a.checked_rem_euclid(b))?;
        check(Op::Rem, a.checked_rem(b))?;
        check(Op::Lt, Some((a < b) as i64))?;
        check(Op::Ge, Some((a >= b) as i64))?;
        check(Op::Eq, Some((a == b) as i64))?;
    }
}
