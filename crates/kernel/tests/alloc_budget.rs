//! Steady-state allocation budget for the kernel hot loop, measured with
//! the harness counting allocator.
//!
//! The scheduler rewrite put the per-cycle path on an allocation diet:
//! observer callbacks borrow the signal name instead of cloning it, the
//! per-cycle worklists and flag clear-list are reused buffers, and
//! resolution calls reuse a scratch argument vector plus a scratch
//! execution state. This test pins that down: after a warm-up run (so
//! every reused buffer has reached its steady capacity), a further
//! simulation window must stay under a small per-cycle allocation budget.
//!
//! One test function on purpose: the counting allocator is process-global,
//! and parallel test threads would bleed into each other's windows.

use std::cell::Cell;
use std::sync::Arc;

use sim_kernel::{Backend, FnDecl, Insn, Op, Program, SigId, Simulator, Time, Val, VarAddr};

#[global_allocator]
static ALLOC: ag_harness::alloc::CountingAlloc = ag_harness::alloc::CountingAlloc;

fn slot(n: u16) -> VarAddr {
    VarAddr { depth: 0, slot: n }
}

/// `clk <= not clk after <period>; wait on clk;` — one event per cycle,
/// no resolution.
fn oscillator(period_fs: i64) -> Program {
    let mut p = Program::default();
    let clk = p.add_signal("top.clk", Val::Int(0));
    p.add_process(
        "top.osc",
        0,
        vec![
            Insn::LoadSig(clk),
            Insn::Unop(Op::Not),
            Insn::PushInt(period_fs),
            Insn::Sched {
                sig: clk,
                transport: false,
            },
            Insn::Wait {
                sens: Arc::new(vec![clk]),
                with_timeout: false,
            },
            Insn::Pop,
            Insn::Jump(0),
        ],
    );
    p
}

/// Two drivers on a resolved bus, each toggling every `period_fs` via a
/// wait-for timeout — every cycle runs the resolution function.
fn resolved_bus(period_fs: i64) -> (Program, SigId) {
    let mut p = Program::default();
    let f = p.add_function(FnDecl {
        name: "wired_or".into(),
        n_params: 1,
        n_locals: 3,
        code: Arc::new(vec![
            Insn::PushInt(0),
            Insn::StoreVar(slot(1)),
            Insn::PushInt(0),
            Insn::StoreVar(slot(2)),
            Insn::LoadVar(slot(1)), // 4: loop
            Insn::LoadVar(slot(0)),
            Insn::ArrAttr(sim_kernel::ArrAttrKind::Length),
            Insn::Binop(Op::Lt),
            Insn::JumpIfFalse(20),
            Insn::LoadVar(slot(2)),
            Insn::LoadVar(slot(0)),
            Insn::LoadVar(slot(1)),
            Insn::Index,
            Insn::Binop(Op::Or),
            Insn::StoreVar(slot(2)),
            Insn::LoadVar(slot(1)),
            Insn::PushInt(1),
            Insn::Binop(Op::Add),
            Insn::StoreVar(slot(1)),
            Insn::Jump(4),
            Insn::LoadVar(slot(2)), // 20: exit
            Insn::Ret { has_value: true },
        ]),
        level: 1,
    });
    let bus = p.add_signal("top.bus", Val::Int(0));
    p.signals[bus.0 as usize].resolution = Some(f);
    for pi in 0..2 {
        p.add_process(
            format!("top.d{pi}"),
            1,
            vec![
                Insn::LoadVar(slot(0)),
                Insn::PushInt(1),
                Insn::Binop(Op::Add),
                Insn::StoreVar(slot(0)),
                Insn::LoadVar(slot(0)),
                Insn::PushInt(2),
                Insn::Binop(Op::Mod),
                Insn::PushInt(-1),
                Insn::Sched {
                    sig: bus,
                    transport: false,
                },
                Insn::PushInt(period_fs),
                Insn::Wait {
                    sens: Arc::new(vec![]),
                    with_timeout: true,
                },
                Insn::Pop,
                Insn::Jump(0),
            ],
        );
    }
    (p, bus)
}

#[test]
fn steady_state_allocation_budget() {
    // --- Oscillator with an observer: the observer must not cost an
    // allocation per event (the seed kernel cloned the signal name and
    // value for every callback).
    let hits = Cell::new(0u64);
    let mut sim = Simulator::new(oscillator(1_000));
    let hits_ref = &hits;
    sim.observe(Box::new(move |_, _, name, _| {
        assert_eq!(name, "top.clk");
        hits_ref.set(hits_ref.get() + 1);
    }));
    sim.run_until(Time::fs(1_000_000)).unwrap(); // warm-up: 1000 events
    let warm_events = hits.get();
    let before = ag_harness::alloc::stats();
    sim.run_until(Time::fs(2_000_000)).unwrap();
    let after = ag_harness::alloc::stats();
    let events = hits.get() - warm_events;
    assert!(events >= 999, "window ran: {events} events");
    let allocs = after.allocations - before.allocations;
    // Steady state: worklists, calendar and flags all reuse capacity; the
    // only allocation traffic left is incidental (one trace span per
    // run_until). Seed kernel: ≥2 allocations per event just for the
    // observer's name + value clones.
    assert!(
        allocs < events / 10,
        "oscillator steady state allocates too much: {allocs} allocations for {events} events"
    );

    // --- Resolved bus: every cycle calls the resolution function. The
    // scratch reuse leaves one small Arc box per call (the Val::Arr
    // argument is refcounted); the seed kernel also re-allocated the
    // argument vector, the function's locals, its frame stack, and a
    // formatted diagnostic name per call.
    let (p, bus) = resolved_bus(1_000);
    let mut sim = Simulator::new(p);
    sim.run_until(Time::fs(1_000_000)).unwrap(); // warm-up
    let cycles0 = sim.stats().cycles;
    let before = ag_harness::alloc::stats();
    sim.run_until(Time::fs(2_000_000)).unwrap();
    let after = ag_harness::alloc::stats();
    let cycles = sim.stats().cycles - cycles0;
    assert!(cycles >= 999, "window ran: {cycles} cycles");
    let allocs = after.allocations - before.allocations;
    assert!(
        allocs <= cycles * 2,
        "resolution steady state allocates too much: {allocs} allocations for {cycles} cycles"
    );
    assert_eq!(sim.signal_value(bus), sim.signal_value(bus)); // bus alive

    // --- Compiled backend on the same oscillator: block translation
    // allocates once up front (blocks, tapes, fused int streams), but
    // the steady-state activation path — tape evaluation, step
    // execution, resume — runs on reused buffers and must meet the same
    // per-event budget as the interpreter.
    let mut sim = Simulator::new(oscillator(1_000));
    sim.set_backend(Backend::Compiled);
    sim.run_until(Time::fs(1_000_000)).unwrap(); // warm-up: 1000 events
    let events0 = sim.stats().events;
    let before = ag_harness::alloc::stats();
    sim.run_until(Time::fs(2_000_000)).unwrap();
    let after = ag_harness::alloc::stats();
    let events = sim.stats().events - events0;
    assert!(events >= 999, "window ran: {events} events");
    assert!(
        sim.stats().compiled_blocks > 0,
        "compiled backend did not engage"
    );
    let allocs = after.allocations - before.allocations;
    assert!(
        allocs < events / 10,
        "compiled steady state allocates too much: {allocs} allocations for {events} events"
    );

    // --- Parallel steady state: eight concurrently-woken oscillators at
    // jobs=4, so every cycle takes the worker-pool path (partition,
    // dispatch, buffered execution on worker threads, barrier commit).
    // After warm-up — pool threads spawned, per-worker effect buffers and
    // chunk lists at steady capacity — the parallel cycle must be as
    // allocation-free as the sequential one. The counting allocator is
    // process-global, so worker-thread allocations are in the window too.
    let mut p = Program::default();
    for i in 0..8 {
        let clk = p.add_signal(format!("top.clk{i}"), Val::Int(0));
        p.add_process(
            format!("top.osc{i}"),
            0,
            vec![
                Insn::LoadSig(clk),
                Insn::Unop(Op::Not),
                Insn::PushInt(1_000),
                Insn::Sched {
                    sig: clk,
                    transport: false,
                },
                Insn::Wait {
                    sens: Arc::new(vec![clk]),
                    with_timeout: false,
                },
                Insn::Pop,
                Insn::Jump(0),
            ],
        );
    }
    p.finalize_sensitivity();
    let mut sim = Simulator::new(p);
    sim.set_jobs(4);
    sim.run_until(Time::fs(1_000_000)).unwrap(); // warm-up
    let cycles0 = sim.stats().cycles;
    let before = ag_harness::alloc::stats();
    sim.run_until(Time::fs(2_000_000)).unwrap();
    let after = ag_harness::alloc::stats();
    let cycles = sim.stats().cycles - cycles0;
    assert!(cycles >= 999, "window ran: {cycles} cycles");
    let allocs = after.allocations - before.allocations;
    assert!(
        allocs < cycles / 10,
        "parallel steady state allocates too much: {allocs} allocations for {cycles} cycles at jobs=4"
    );
}
