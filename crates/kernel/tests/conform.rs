//! Corpus replay: every checked-in conformance seed must still pass the
//! full configuration matrix — eight cells of {interp, compiled} ×
//! {1, 4 workers} × {solid, checkpoint-and-restore} byte-identical —
//! and must still hash to its golden digest. A digest mismatch with the
//! matrix still agreeing means the kernel's *observable semantics*
//! drifted: every configuration changed behavior together. That is
//! sometimes intentional (a semantics fix); regenerate goldens with
//! `vhdlconform run --seed-dir tests/corpus --update`.

use std::path::PathBuf;

use vhdl_conform::{load_dir, replay, CaseVerdict};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

#[test]
fn corpus_replays_byte_identically() {
    let cases = load_dir(&corpus_dir()).expect("corpus loads");
    assert!(
        cases.len() >= 10,
        "corpus unexpectedly small: {} cases",
        cases.len()
    );
    let mut failures = Vec::new();
    for case in &cases {
        match replay(case, None) {
            CaseVerdict::Pass { .. } => {}
            CaseVerdict::DigestDrift { want, got } => failures.push(format!(
                "{}: semantic drift — digest {got:#x} != golden {want:#x} \
                 (matrix still agrees; regenerate goldens if intentional)",
                case.name
            )),
            CaseVerdict::Diverged(d, _) => {
                failures.push(format!("{}: {d}", case.name));
            }
            CaseVerdict::Error(e) => failures.push(format!("{}: {e}", case.name)),
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} corpus cases failed:\n{}",
        failures.len(),
        cases.len(),
        failures.join("\n")
    );
}

/// Every corpus case must carry a golden digest — a digest-less case is
/// an unresolved divergence reproducer, which must not linger unfixed.
#[test]
fn corpus_cases_all_have_goldens() {
    let cases = load_dir(&corpus_dir()).expect("corpus loads");
    let missing: Vec<&str> = cases
        .iter()
        .filter(|c| c.digest.is_none())
        .map(|c| c.name.as_str())
        .collect();
    assert!(missing.is_empty(), "digest-less corpus cases: {missing:?}");
}
