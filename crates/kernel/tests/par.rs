//! Parallel-execution byte-identity property suite.
//!
//! The parallel process phase (worker-pool execution with buffered
//! effects and a barrier commit in seed scan order) must be observably
//! indistinguishable from sequential execution at any worker count.
//! Randomly generated *wide* designs — many concurrent processes,
//! resolved buses with writers that the partitioner may cluster or
//! split across workers, cross-process sensitivity, zero-fs timeout
//! delta storms, failing arithmetic — run at jobs=1 and jobs∈{2,4,8}
//! under both backends, and every observable must match byte for byte:
//! VCD output, the full statistics block (including the scheduler
//! introspection counters), per-object Name-Server counters, final
//! values, reports, and the run outcome.

use std::cell::RefCell;
use std::sync::Arc;

use ag_harness::{check_eq, forall, Config, Source};
use sim_kernel::io::Vcd;
use sim_kernel::{
    ArrAttrKind, Backend, FnDecl, FnId, Insn, Op, Program, RunOutcome, SigId, SimError, SimStats,
    Simulator, Time, Val, VarAddr,
};

fn slot(n: u16) -> VarAddr {
    VarAddr { depth: 0, slot: n }
}

/// `sum(drivers) mod 4` — the resolution function the equivalence suite
/// uses; a loop over an array parameter, so resolved buses exercise the
/// pure-call path between parallel cycles.
fn sum_mod4() -> FnDecl {
    let code = vec![
        Insn::PushInt(0),
        Insn::StoreVar(slot(1)), // i = 0
        Insn::PushInt(0),
        Insn::StoreVar(slot(2)), // acc = 0
        Insn::LoadVar(slot(1)),  // 4: loop head
        Insn::LoadVar(slot(0)),
        Insn::ArrAttr(ArrAttrKind::Length),
        Insn::Binop(Op::Lt),
        Insn::JumpIfFalse(20),
        Insn::LoadVar(slot(2)),
        Insn::LoadVar(slot(0)),
        Insn::LoadVar(slot(1)),
        Insn::Index,
        Insn::Binop(Op::Add),
        Insn::StoreVar(slot(2)), // acc += arg[i]
        Insn::LoadVar(slot(1)),
        Insn::PushInt(1),
        Insn::Binop(Op::Add),
        Insn::StoreVar(slot(1)), // i += 1
        Insn::Jump(4),
        Insn::LoadVar(slot(2)), // 20: exit
        Insn::PushInt(4),
        Insn::Binop(Op::Mod),
        Insn::Ret { has_value: true },
    ];
    FnDecl {
        name: "sum_mod4".into(),
        n_params: 1,
        n_locals: 3,
        code: Arc::new(code),
        level: 1,
    }
}

/// Everything observable about a finished run.
#[derive(Debug, PartialEq)]
struct Snap {
    outcome: String,
    vcd: String,
    now: Time,
    stats: SimStats,
    sig_vals: Vec<Val>,
    sig_events: Vec<u64>,
    sig_last: Vec<Option<Time>>,
    proc_res: Vec<u64>,
    reports: Vec<(Time, i64, String)>,
}

fn run_jobs(
    prog: &Program,
    deadline: Time,
    budgets: &[u64],
    backend: Backend,
    jobs: usize,
) -> Snap {
    let (n_sigs, n_procs) = (prog.signals.len(), prog.processes.len());
    let vcd = RefCell::new(Vcd::new("1fs"));
    let vcd_ref = &vcd;
    let mut sim = Simulator::new(prog.clone());
    sim.set_backend(backend);
    sim.set_jobs(jobs);
    sim.observe(Box::new(move |t, sig, name, v| {
        vcd_ref.borrow_mut().change(t, sig, name, v);
    }));
    let mut outcome = Ok(RunOutcome::CycleBudget);
    for &b in budgets {
        outcome = sim.run_slice(deadline, b, &mut || false);
        if !matches!(outcome, Ok(RunOutcome::CycleBudget)) {
            break;
        }
    }
    let _ = (n_sigs, n_procs);
    let snap = finish_snap(&sim, &outcome, vcd.borrow().finish());
    drop(sim);
    snap
}

/// Draws a wide design: 4–10 looping processes, one private signal
/// each, 0–2 shared resolved buses with several writers (the
/// partitioner clusters them — or splits the cluster across workers
/// once it exceeds the load cap), cross-process sensitivity, zero-fs
/// timeouts (delta storms, bounded by the run's cycle budget), and
/// occasional failing division so error ordering is covered too.
fn gen_wide(s: &mut Source) -> Program {
    let mut prog = Program::default();
    let n_procs = s.usize_in(4, 10);
    let own: Vec<SigId> = (0..n_procs)
        .map(|i| prog.add_signal(format!("top.p{i}.s"), Val::Int(0)))
        .collect();
    let n_bus = s.usize_in(0, 2);
    let mut bus: Vec<SigId> = Vec::new();
    if n_bus > 0 {
        let f = prog.add_function(sum_mod4());
        for r in 0..n_bus {
            let sid = prog.add_signal(format!("top.bus{r}"), Val::Int(0));
            prog.signals[sid.0 as usize].resolution = Some(f);
            bus.push(sid);
        }
    }
    for pi in 0..n_procs {
        let mut code = vec![
            Insn::LoadVar(slot(0)),
            Insn::PushInt(1),
            Insn::Binop(Op::Add),
            Insn::StoreVar(slot(0)),
        ];
        // Drive the private signal with a counter-derived value so both
        // events and no-change active cycles occur.
        let m = *s.pick(&[2i64, 3, 4]);
        code.push(Insn::LoadVar(slot(0)));
        code.push(Insn::PushInt(m));
        code.push(Insn::Binop(Op::Mod));
        code.push(Insn::PushInt(*s.pick(&[-1i64, 0, 1, 2, 5])));
        code.push(Insn::Sched {
            sig: own[pi],
            transport: s.bool(),
        });
        // Maybe also write a shared bus: several writers on one signal
        // is exactly the footprint the partitioner must respect.
        if !bus.is_empty() && s.bool() {
            let sig = *s.pick(&bus);
            code.push(Insn::LoadVar(slot(0)));
            code.push(Insn::PushInt(3));
            code.push(Insn::Binop(Op::Mod));
            code.push(Insn::PushInt(*s.pick(&[-1i64, 1, 3])));
            code.push(Insn::Sched {
                sig,
                transport: s.bool(),
            });
        }
        // Occasional failing arithmetic: dividing by `counter mod k`
        // eventually divides by zero; the first failure in seed scan
        // order must win at every worker count.
        if s.usize_in(0, 4) == 0 {
            let k = *s.pick(&[5i64, 7, 11]);
            code.push(Insn::PushInt(97));
            code.push(Insn::LoadVar(slot(0)));
            code.push(Insn::PushInt(k));
            code.push(Insn::Binop(Op::Mod));
            code.push(Insn::Binop(Op::Div));
            code.push(Insn::StoreVar(slot(1)));
        }
        // Sensitivity: own signal, often a neighbor's (events cross
        // partitions), sometimes a bus; sometimes pure timeout — with
        // zero fs it re-wakes every delta cycle (a delta storm).
        let mut sens: Vec<SigId> = vec![own[pi]];
        if s.bool() {
            sens.push(own[(pi + 1) % n_procs]);
        }
        if !bus.is_empty() && s.bool() {
            sens.push(*s.pick(&bus));
        }
        if s.usize_in(0, 3) == 0 {
            sens.clear();
        }
        sens.sort_unstable();
        sens.dedup();
        let timeout = if sens.is_empty() {
            Some(*s.pick(&[0i64, 0, 1, 2]))
        } else {
            s.option(|s| *s.pick(&[0i64, 1, 3, 7]))
        };
        if let Some(fs) = timeout {
            code.push(Insn::PushInt(fs));
        }
        code.push(Insn::Wait {
            sens: Arc::new(sens),
            with_timeout: timeout.is_some(),
        });
        code.push(Insn::Pop);
        code.push(Insn::Jump(0));
        prog.add_process(format!("top.p{pi}"), 2, code);
    }
    if s.bool() {
        prog.finalize_sensitivity();
    }
    prog
}

/// The tentpole property: randomized wide designs are byte-identical
/// at jobs=1 vs jobs∈{2,4,8} on the interpreter, and at jobs=1 vs
/// jobs=4 on the compiled backend; the compiled VCD also matches the
/// interpreter's (the cross-backend leg `equiv.rs` established, now at
/// worker counts > 1).
#[test]
fn parallel_equivalent_to_sequential() {
    forall!(
        Config::new("parallel_equivalent_to_sequential").cases(48),
        |s| {
            let prog = gen_wide(s);
            let deadline = Time::fs(s.u64_in(5, 40));
            let total = s.u64_in(20, 200);
            // Sometimes split the run into two slices: a barrier is a
            // legal stopping point, and resuming must not depend on the
            // worker count either.
            let budgets = if s.bool() && total >= 2 {
                let c1 = s.u64_in(1, total - 1);
                vec![c1, total - c1]
            } else {
                vec![total]
            };
            let seq = run_jobs(&prog, deadline, &budgets, Backend::Interp, 1);
            for jobs in [2usize, 4, 8] {
                let par = run_jobs(&prog, deadline, &budgets, Backend::Interp, jobs);
                check_eq!(par.vcd, seq.vcd, "interp VCD at jobs={}", jobs);
                check_eq!(par.stats, seq.stats, "interp stats at jobs={}", jobs);
                check_eq!(par, seq, "interp full snapshot at jobs={}", jobs);
            }
            let cseq = run_jobs(&prog, deadline, &budgets, Backend::Compiled, 1);
            let cpar = run_jobs(&prog, deadline, &budgets, Backend::Compiled, 4);
            check_eq!(cpar.vcd, cseq.vcd, "compiled VCD at jobs=4");
            check_eq!(cpar, cseq, "compiled full snapshot at jobs=4");
            check_eq!(cseq.vcd, seq.vcd, "compiled vs interp VCD");
        }
    );
}

/// Checkpoints are taken at cycle barriers, where the simulator's state
/// is worker-count-independent: a run checkpointed mid-flight at jobs=4
/// and resumed at jobs=1 (and vice versa) must be byte-identical to the
/// uninterrupted sequential run — and the checkpoint blobs themselves
/// must be identical across worker counts.
#[test]
fn snapshot_roundtrip_across_worker_counts() {
    forall!(
        Config::new("snapshot_roundtrip_across_worker_counts").cases(24),
        |s| {
            let prog = gen_wide(s);
            let deadline = Time::fs(s.u64_in(5, 40));
            let total = s.u64_in(20, 160);
            let cut = s.u64_in(1, total - 1);
            let oracle = run_jobs(&prog, deadline, &[total], Backend::Interp, 1);
            let mut blobs: Vec<Option<Vec<u8>>> = Vec::new();
            for (j_run, j_resume) in [(4usize, 1usize), (1, 4)] {
                let vcd = RefCell::new(Vcd::new("1fs"));
                let (n_sigs, n_procs) = (prog.signals.len(), prog.processes.len());
                let (blob, vcd_bytes, first) = {
                    let vcd_ref = &vcd;
                    let mut sim = Simulator::new(prog.clone());
                    sim.set_jobs(j_run);
                    sim.observe(Box::new(move |t, sig, name, v| {
                        vcd_ref.borrow_mut().change(t, sig, name, v);
                    }));
                    let first = sim.run_slice(deadline, cut, &mut || false);
                    if first.is_err() {
                        // The design failed inside the first slice; a
                        // failed run refuses to checkpoint — the parallel
                        // failure itself must match the oracle's.
                        let snap = finish_snap(&sim, &first, vcd.borrow().finish());
                        check_eq!(snap, oracle, "failed-in-slice-1 at jobs={}", j_run);
                        blobs.push(None);
                        continue;
                    }
                    let blob = sim.checkpoint().expect("checkpoint of a healthy run");
                    let mut e = sim_kernel::Enc::new();
                    vcd.borrow().encode(&mut e);
                    (blob, e.into_bytes(), first)
                };
                blobs.push(Some(blob.clone()));
                let vcd2 = RefCell::new(
                    Vcd::decode(&mut sim_kernel::Dec::new(&vcd_bytes)).expect("vcd state"),
                );
                let vcd2_ref = &vcd2;
                let mut sim2 = Simulator::restore(prog.clone(), &blob).expect("restore");
                sim2.set_jobs(j_resume);
                sim2.observe(Box::new(move |t, sig, name, v| {
                    vcd2_ref.borrow_mut().change(t, sig, name, v);
                }));
                let outcome = if matches!(first, Ok(RunOutcome::CycleBudget)) {
                    sim2.run_slice(deadline, total - cut, &mut || false)
                } else {
                    first
                };
                let snap = finish_snap(&sim2, &outcome, vcd2.borrow().finish());
                drop(sim2);
                check_eq!(
                    snap,
                    oracle,
                    "checkpoint at jobs={} resumed at jobs={}",
                    j_run,
                    j_resume
                );
                let _ = (n_sigs, n_procs);
            }
            if let [Some(a), Some(b)] = &blobs[..] {
                check_eq!(a, b, "checkpoint blob must be worker-count-independent");
            }
        }
    );
}

/// Builds a [`Snap`] from a finished simulator (shared by the snapshot
/// round-trip legs).
fn finish_snap(sim: &Simulator<'_>, outcome: &Result<RunOutcome, SimError>, vcd: String) -> Snap {
    let n_sigs = sim.program().signals.len();
    let n_procs = sim.program().processes.len();
    Snap {
        outcome: match outcome {
            Ok(o) => format!("{o:?}"),
            Err(e) => format!("err: {e}"),
        },
        vcd,
        now: sim.now(),
        stats: sim.stats(),
        sig_vals: (0..n_sigs)
            .map(|i| sim.signal_value(SigId(i as u32)).clone())
            .collect(),
        sig_events: (0..n_sigs)
            .map(|i| sim.signal_events(SigId(i as u32)))
            .collect(),
        sig_last: (0..n_sigs)
            .map(|i| sim.signal_last_event(SigId(i as u32)))
            .collect(),
        proc_res: (0..n_procs)
            .map(|i| sim.process_resumptions(i as u32))
            .collect(),
        reports: sim
            .reports()
            .iter()
            .map(|r| (r.time, r.severity, r.text.clone()))
            .collect(),
    }
}

/// Partition edge case: a process with empty sensitivity (timeout-only)
/// has an empty sensed footprint — it must still land in a partition
/// and commit in order.
#[test]
fn empty_sensitivity_process_is_deterministic() {
    let mut prog = Program::default();
    let mut sigs = Vec::new();
    for i in 0..6 {
        sigs.push(prog.add_signal(format!("top.s{i}"), Val::Int(0)));
    }
    for i in 0..6 {
        let mut code = vec![
            Insn::LoadVar(slot(0)),
            Insn::PushInt(1),
            Insn::Binop(Op::Add),
            Insn::StoreVar(slot(0)),
            Insn::LoadVar(slot(0)),
            Insn::PushInt(2),
            Insn::Binop(Op::Mod),
            Insn::PushInt(1),
            Insn::Sched {
                sig: sigs[i],
                transport: false,
            },
        ];
        if i % 2 == 0 {
            // Timeout-only: wait 2 fs with no sensitivity at all.
            code.push(Insn::PushInt(2));
            code.push(Insn::Wait {
                sens: Arc::new(vec![]),
                with_timeout: true,
            });
        } else {
            code.push(Insn::Wait {
                sens: Arc::new(vec![sigs[i]]),
                with_timeout: false,
            });
        }
        code.push(Insn::Pop);
        code.push(Insn::Jump(0));
        prog.add_process(format!("top.p{i}"), 1, code);
    }
    prog.finalize_sensitivity();
    let deadline = Time::fs(50);
    let seq = run_jobs(&prog, deadline, &[500], Backend::Interp, 1);
    for jobs in [2usize, 4] {
        let par = run_jobs(&prog, deadline, &[500], Backend::Interp, jobs);
        assert_eq!(par, seq, "jobs={jobs}");
    }
}

/// Partition edge case: more writers on one resolved signal than the
/// per-worker load cap — the writer cluster is split across workers, so
/// one signal's drivers execute in different partitions. Buffered
/// commits must still produce the sequential driver order.
#[test]
fn shared_signal_split_across_partitions() {
    let mut prog = Program::default();
    let f = prog.add_function(sum_mod4());
    let bus = prog.add_signal("top.bus", Val::Int(0));
    prog.signals[bus.0 as usize].resolution = Some(f);
    let tick = prog.add_signal("top.tick", Val::Int(0));
    // The clock: drives tick every fs.
    prog.add_process(
        "top.clk",
        1,
        vec![
            Insn::LoadVar(slot(0)),
            Insn::PushInt(1),
            Insn::Binop(Op::Add),
            Insn::StoreVar(slot(0)),
            Insn::LoadVar(slot(0)),
            Insn::PushInt(2),
            Insn::Binop(Op::Mod),
            Insn::PushInt(1),
            Insn::Sched {
                sig: tick,
                transport: false,
            },
            Insn::Wait {
                sens: Arc::new(vec![tick]),
                with_timeout: false,
            },
            Insn::Pop,
            Insn::Jump(0),
        ],
    );
    // Six writers all driving the one bus (footprints share `bus`, so
    // they form one component of 7 with the clock via `tick`? no —
    // writers sense tick and drive bus, merging them with the clock
    // too: one big component, guaranteed larger than the cap at
    // jobs=4, forcing a split).
    for i in 0..6 {
        prog.add_process(
            format!("top.w{i}"),
            1,
            vec![
                Insn::LoadVar(slot(0)),
                Insn::PushInt(1),
                Insn::Binop(Op::Add),
                Insn::StoreVar(slot(0)),
                Insn::LoadVar(slot(0)),
                Insn::PushInt(i as i64 + 2),
                Insn::Binop(Op::Mod),
                Insn::PushInt(-1),
                Insn::Sched {
                    sig: bus,
                    transport: false,
                },
                Insn::Wait {
                    sens: Arc::new(vec![tick]),
                    with_timeout: false,
                },
                Insn::Pop,
                Insn::Jump(0),
            ],
        );
    }
    prog.finalize_sensitivity();
    let deadline = Time::fs(40);
    let seq = run_jobs(&prog, deadline, &[800], Backend::Interp, 1);
    for jobs in [2usize, 4, 8] {
        let par = run_jobs(&prog, deadline, &[800], Backend::Interp, jobs);
        assert_eq!(par, seq, "jobs={jobs}");
    }
}

/// Partition edge case: a compiled-backend fallback process (recursive
/// subprogram, which the translator declines) sharing a cycle — and
/// potentially a partition — with tape-compiled processes. The mixed
/// chunk must still be byte-identical to sequential execution.
#[test]
fn compiled_fallback_shares_partition() {
    let mut prog = Program::default();
    // rec(n) = if n <= 0 { 0 } else { rec(n - 1) } — terminates, but
    // recursion defeats the translator's stack-depth tracking.
    let f = prog.add_function(FnDecl {
        name: "rec".into(),
        n_params: 1,
        n_locals: 1,
        code: Arc::new(vec![
            Insn::LoadVar(slot(0)),
            Insn::PushInt(0),
            Insn::Binop(Op::Gt),
            Insn::JumpIfFalse(9),
            Insn::LoadVar(slot(0)),
            Insn::PushInt(-1),
            Insn::Binop(Op::Add),
            Insn::Call(FnId(0)),
            Insn::Ret { has_value: true },
            Insn::PushInt(0), // 9: base case
            Insn::Ret { has_value: true },
        ]),
        level: 1,
    });
    let mut sigs = Vec::new();
    for i in 0..5 {
        sigs.push(prog.add_signal(format!("top.s{i}"), Val::Int(0)));
    }
    // Process 0 calls the recursive function each activation: it falls
    // back to the interpreter even under Backend::Compiled.
    prog.add_process(
        "top.fallback",
        2,
        vec![
            Insn::LoadVar(slot(0)),
            Insn::PushInt(1),
            Insn::Binop(Op::Add),
            Insn::StoreVar(slot(0)),
            Insn::LoadVar(slot(0)),
            Insn::PushInt(4),
            Insn::Binop(Op::Mod),
            Insn::Call(f),
            Insn::PushInt(-1),
            Insn::Sched {
                sig: sigs[0],
                transport: false,
            },
            Insn::PushInt(1),
            Insn::Wait {
                sens: Arc::new(vec![]),
                with_timeout: true,
            },
            Insn::Pop,
            Insn::Jump(0),
        ],
    );
    // Four plain oscillators the translator compiles fully.
    for i in 1..5 {
        prog.add_process(
            format!("top.osc{i}"),
            1,
            vec![
                Insn::LoadSig(sigs[i]),
                Insn::Unop(Op::Not),
                Insn::PushInt(1),
                Insn::Sched {
                    sig: sigs[i],
                    transport: false,
                },
                Insn::Wait {
                    sens: Arc::new(vec![sigs[i]]),
                    with_timeout: false,
                },
                Insn::Pop,
                Insn::Jump(0),
            ],
        );
    }
    prog.finalize_sensitivity();
    let deadline = Time::fs(60);
    let seq = run_jobs(&prog, deadline, &[600], Backend::Compiled, 1);
    assert_eq!(
        seq.stats.fallback_procs, 1,
        "the recursive caller must be an interpreter fallback"
    );
    for jobs in [2usize, 4] {
        let par = run_jobs(&prog, deadline, &[600], Backend::Compiled, jobs);
        assert_eq!(par, seq, "jobs={jobs}");
    }
    // And the interpreter agrees on the observables it shares.
    let interp = run_jobs(&prog, deadline, &[600], Backend::Interp, 4);
    assert_eq!(interp.vcd, seq.vcd, "compiled vs interp VCD");
}
