//! Kernel integration tests: hand-assembled programs driving the full
//! simulation cycle.

use std::sync::Arc;

use sim_kernel::{
    FnDecl, Insn, Op, Program, RunOutcome, SigAttr, SimError, Simulator, Time, Val, VarAddr,
};

fn addr(slot: u16) -> VarAddr {
    VarAddr { depth: 0, slot }
}

/// A free-running clock: `clk <= not clk after 5 ns; wait on clk;`.
#[test]
fn oscillating_clock() {
    let mut p = Program::default();
    let clk = p.add_signal("top.clk", Val::Int(0));
    let code = vec![
        // not clk
        Insn::LoadSig(clk),
        Insn::Unop(Op::Not),
        Insn::PushInt(5_000_000), // 5 ns in fs
        Insn::Sched {
            sig: clk,
            transport: false,
        },
        Insn::Wait {
            sens: Arc::new(vec![clk]),
            with_timeout: false,
        },
        Insn::Pop, // timed_out flag
        Insn::Jump(0),
    ];
    p.add_process("top.osc", 0, code);
    let mut sim = Simulator::new(p);
    sim.run_until(Time::fs(52_000_000)).unwrap();
    // 5ns period toggles: t=5,10,…,50 → 10 events.
    let st = sim.stats();
    assert_eq!(st.events, 10);
    assert_eq!(sim.signal_value(clk), &Val::Int(0));
    assert_eq!(sim.now().fs, 50_000_000);
    assert!(st.resumptions >= 10);
}

/// Delta cycles: a chain a → b → c settles in the same instant across
/// deltas.
#[test]
fn delta_cycle_chain() {
    let mut p = Program::default();
    let a = p.add_signal("a", Val::Int(0));
    let b = p.add_signal("b", Val::Int(0));
    let c = p.add_signal("c", Val::Int(0));
    // driver: a <= 1 after 1 fs; wait forever.
    p.add_process(
        "drv",
        0,
        vec![
            Insn::PushInt(1),
            Insn::PushInt(1),
            Insn::Sched {
                sig: a,
                transport: false,
            },
            Insn::Halt,
        ],
    );
    // b <= a (delta); wait on a.
    p.add_process(
        "p1",
        0,
        vec![
            Insn::LoadSig(a),
            Insn::PushInt(-1),
            Insn::Sched {
                sig: b,
                transport: false,
            },
            Insn::Wait {
                sens: Arc::new(vec![a]),
                with_timeout: false,
            },
            Insn::Pop,
            Insn::Jump(0),
        ],
    );
    // c <= b (delta); wait on b.
    p.add_process(
        "p2",
        0,
        vec![
            Insn::LoadSig(b),
            Insn::PushInt(-1),
            Insn::Sched {
                sig: c,
                transport: false,
            },
            Insn::Wait {
                sens: Arc::new(vec![b]),
                with_timeout: false,
            },
            Insn::Pop,
            Insn::Jump(0),
        ],
    );
    let mut sim = Simulator::new(p);
    sim.run_until(Time::fs(10)).unwrap();
    assert_eq!(sim.signal_value(c), &Val::Int(1));
    let st = sim.stats();
    assert!(st.delta_cycles >= 2, "chain needs deltas: {st:?}");
    assert_eq!(sim.now().fs, 1, "all settling happened at 1 fs");
}

/// Two drivers require a resolution function; wired-or resolves them.
#[test]
fn resolved_signal_wired_or() {
    let mut p = Program::default();
    // Resolution: fold OR over the drivers vector (param 0).
    // locals: 0 = vec, 1 = i, 2 = acc
    let res_code = vec![
        // acc := 0; i := 0
        Insn::PushInt(0),
        Insn::StoreVar(addr(2)),
        Insn::PushInt(0),
        Insn::StoreVar(addr(1)),
        // loop: if i >= len: exit — len is data length; use Index error
        // avoidance by explicit count: we rely on a 2-driver vector.
        Insn::LoadVar(addr(0)),
        Insn::LoadVar(addr(1)),
        Insn::Index,
        Insn::LoadVar(addr(2)),
        Insn::Binop(Op::Or),
        Insn::StoreVar(addr(2)),
        Insn::LoadVar(addr(1)),
        Insn::PushInt(1),
        Insn::Binop(Op::Add),
        Insn::Dup,
        Insn::StoreVar(addr(1)),
        Insn::PushInt(2),
        Insn::Binop(Op::Lt),
        Insn::JumpIfFalse(19),
        Insn::Jump(4),
        Insn::LoadVar(addr(2)),
        Insn::Ret { has_value: true },
    ];
    let res = p.add_function(FnDecl {
        name: "wired_or".into(),
        n_params: 1,
        n_locals: 3,
        code: Arc::new(res_code),
        level: 1,
    });
    let s = p.add_signal("bus", Val::Int(0));
    p.signals[s.0 as usize].resolution = Some(res);
    // Driver A: bus <= 1 after 2fs.
    p.add_process(
        "da",
        0,
        vec![
            Insn::PushInt(1),
            Insn::PushInt(2),
            Insn::Sched {
                sig: s,
                transport: false,
            },
            Insn::Halt,
        ],
    );
    // Driver B: bus <= 0 after 2fs.
    p.add_process(
        "db",
        0,
        vec![
            Insn::PushInt(0),
            Insn::PushInt(2),
            Insn::Sched {
                sig: s,
                transport: false,
            },
            Insn::Halt,
        ],
    );
    let mut sim = Simulator::new(p);
    sim.run_until(Time::fs(5)).unwrap();
    assert_eq!(sim.signal_value(s), &Val::Int(1), "1 or 0 = 1");
}

/// Multiple drivers without resolution is an error.
#[test]
fn unresolved_multiple_drivers_error() {
    let mut p = Program::default();
    let s = p.add_signal("s", Val::Int(0));
    for name in ["p1", "p2"] {
        p.add_process(
            name,
            0,
            vec![
                Insn::PushInt(1),
                Insn::PushInt(1),
                Insn::Sched {
                    sig: s,
                    transport: false,
                },
                Insn::Halt,
            ],
        );
    }
    let mut sim = Simulator::new(p);
    let err = sim.run_until(Time::fs(5)).unwrap_err();
    assert!(matches!(err, SimError::UnresolvedDrivers(_)));
}

/// Wait with timeout resumes with the timed-out flag; `'event` visible in
/// the resumption cycle.
#[test]
fn wait_timeout_and_event_attr() {
    let mut p = Program::default();
    let clk = p.add_signal("clk", Val::Int(0));
    let saw_event = p.add_signal("saw_event", Val::Int(0));
    let timed = p.add_signal("timed", Val::Int(0));
    // Stimulus: clk <= 1 after 3 fs.
    p.add_process(
        "stim",
        0,
        vec![
            Insn::PushInt(1),
            Insn::PushInt(3),
            Insn::Sched {
                sig: clk,
                transport: false,
            },
            Insn::Halt,
        ],
    );
    // Waiter: wait on clk for 10 fs → resumed by event → saw_event <= clk'event.
    // Then wait for 5 fs (pure timeout) → timed <= flag.
    p.add_process(
        "waiter",
        0,
        vec![
            Insn::PushInt(10),
            Insn::Wait {
                sens: Arc::new(vec![clk]),
                with_timeout: true,
            },
            Insn::Pop, // not timed out
            Insn::LoadSigAttr(clk, SigAttr::Event),
            Insn::PushInt(-1),
            Insn::Sched {
                sig: saw_event,
                transport: false,
            },
            Insn::PushInt(5),
            Insn::Wait {
                sens: Arc::new(vec![]),
                with_timeout: true,
            },
            // timed-out flag on stack
            Insn::PushInt(-1),
            Insn::Sched {
                sig: timed,
                transport: false,
            },
            Insn::Halt,
        ],
    );
    let mut sim = Simulator::new(p);
    sim.run_until(Time::fs(20)).unwrap();
    assert_eq!(sim.signal_value(saw_event), &Val::Int(1));
    assert_eq!(sim.signal_value(timed), &Val::Int(1));
}

/// Inertial vs transport preemption.
#[test]
fn preemption_semantics() {
    // Inertial: a second assignment cancels the pending first.
    let mut p = Program::default();
    let s = p.add_signal("s", Val::Int(0));
    p.add_process(
        "p",
        0,
        vec![
            Insn::PushInt(1),
            Insn::PushInt(10),
            Insn::Sched {
                sig: s,
                transport: false,
            },
            Insn::PushInt(2),
            Insn::PushInt(5),
            Insn::Sched {
                sig: s,
                transport: false,
            },
            Insn::Halt,
        ],
    );
    let mut sim = Simulator::new(p);
    sim.run_until(Time::fs(20)).unwrap();
    assert_eq!(sim.signal_value(s), &Val::Int(2), "first tx preempted");
    assert_eq!(sim.stats().transactions, 1);

    // Transport: both arrive in order.
    let mut p = Program::default();
    let s = p.add_signal("s", Val::Int(0));
    p.add_process(
        "p",
        0,
        vec![
            Insn::PushInt(1),
            Insn::PushInt(5),
            Insn::Sched {
                sig: s,
                transport: true,
            },
            Insn::PushInt(2),
            Insn::PushInt(10),
            Insn::Sched {
                sig: s,
                transport: true,
            },
            Insn::Halt,
        ],
    );
    let mut sim = Simulator::new(p);
    sim.run_until(Time::fs(7)).unwrap();
    assert_eq!(sim.signal_value(s), &Val::Int(1));
    sim.run_until(Time::fs(20)).unwrap();
    assert_eq!(sim.signal_value(s), &Val::Int(2));
    assert_eq!(sim.stats().transactions, 2);
}

/// Nested subprograms reach up-level variables through static links — the
/// feature the paper notes C could not express directly.
#[test]
fn static_links_uplevel_access() {
    let mut p = Program::default();
    let out = p.add_signal("out", Val::Int(0));
    // inner(): returns outer_local + 1 via an up-level load (depth 1).
    let inner = p.add_function(FnDecl {
        name: "inner".into(),
        n_params: 0,
        n_locals: 0,
        code: Arc::new(vec![
            Insn::LoadVar(VarAddr { depth: 1, slot: 0 }),
            Insn::PushInt(1),
            Insn::Binop(Op::Add),
            Insn::Ret { has_value: true },
        ]),
        level: 2,
    });
    // outer(): local0 := 41; return inner().
    let outer = p.add_function(FnDecl {
        name: "outer".into(),
        n_params: 0,
        n_locals: 1,
        code: Arc::new(vec![
            Insn::PushInt(41),
            Insn::StoreVar(addr(0)),
            Insn::Call(inner),
            Insn::Ret { has_value: true },
        ]),
        level: 1,
    });
    p.add_process(
        "p",
        0,
        vec![
            Insn::Call(outer),
            Insn::PushInt(1),
            Insn::Sched {
                sig: out,
                transport: false,
            },
            Insn::Halt,
        ],
    );
    let mut sim = Simulator::new(p);
    sim.run_until(Time::fs(5)).unwrap();
    assert_eq!(sim.signal_value(out), &Val::Int(42));
}

/// Assertion reports and failure severity.
#[test]
fn assertions() {
    let mut p = Program::default();
    // Report text: character codes are printable offsets ('b'-32 etc.).
    let text = Val::arr(
        1,
        sim_kernel::VDir::To,
        "boom".chars().map(|c| Val::Int(c as i64 - 32)).collect(),
    );
    p.add_process(
        "p",
        0,
        vec![
            Insn::PushInt(0), // false condition
            Insn::PushConst(text.clone()),
            Insn::PushInt(1), // warning
            Insn::Assert,
            Insn::Halt,
        ],
    );
    let mut sim = Simulator::new(p);
    sim.run_until(Time::fs(1)).unwrap();
    assert_eq!(sim.reports().len(), 1);
    assert_eq!(sim.reports()[0].text, "boom");
    assert_eq!(sim.reports()[0].severity, 1);

    // Severity failure aborts.
    let mut p = Program::default();
    p.add_process(
        "p",
        0,
        vec![
            Insn::PushInt(0),
            Insn::PushConst(text),
            Insn::PushInt(3),
            Insn::Assert,
            Insn::Halt,
        ],
    );
    let mut sim = Simulator::new(p);
    let err = sim.run_until(Time::fs(1)).unwrap_err();
    assert!(matches!(err, SimError::Failure(_)));
}

/// Element-wise signal scheduling (s(i) <= v).
#[test]
fn element_assignment() {
    let mut p = Program::default();
    let s = p.add_signal("v", Val::bits(&[0, 0, 0, 0]));
    p.add_process(
        "p",
        0,
        vec![
            Insn::PushInt(2), // index
            Insn::PushInt(1), // value
            Insn::PushInt(1), // delay
            Insn::SchedIndex {
                sig: s,
                transport: false,
            },
            Insn::Halt,
        ],
    );
    let mut sim = Simulator::new(p);
    sim.run_until(Time::fs(5)).unwrap();
    assert_eq!(sim.signal_value(s), &Val::bits(&[0, 1, 0, 0]));
}

/// Observers see every event (the VCD hook).
#[test]
fn observers_and_nameserver() {
    let mut p = Program::default();
    let clk = p.add_signal("top.clk", Val::Int(0));
    p.add_process(
        "p",
        0,
        vec![
            Insn::PushInt(1),
            Insn::PushInt(2),
            Insn::Sched {
                sig: clk,
                transport: false,
            },
            Insn::Halt,
        ],
    );
    let changes = std::cell::RefCell::new(Vec::new());
    let mut sim = Simulator::new(p);
    sim.observe(Box::new(|t, _, name, v| {
        changes.borrow_mut().push((t, name.to_string(), v.clone()));
    }));
    sim.run_until(Time::fs(5)).unwrap();
    let ch = changes.borrow();
    assert_eq!(ch.len(), 1);
    assert_eq!(ch[0].1, "top.clk");
    assert_eq!(ch[0].2, Val::Int(1));
    drop(ch);
    assert_eq!(sim.signal_by_name("top.clk"), Some(clk));
    assert_eq!(sim.value_by_name("top.clk"), Some(&Val::Int(1)));
    assert!(sim.signal_by_name("nope").is_none());
    assert_eq!(sim.signal_names(), vec!["top.clk"]);
}

/// Fuel guard: a non-suspending loop is detected, not hung.
#[test]
fn runaway_process_detected() {
    let mut p = Program::default();
    p.add_process("p", 0, vec![Insn::Jump(0)]);
    let mut sim = Simulator::new(p);
    let err = sim.run_until(Time::fs(1)).unwrap_err();
    assert!(matches!(err, SimError::FuelExhausted(_)));
}

/// Quiescence: a process suspended with no timeout and nothing scheduled
/// must yield `Quiescent` — not a hang, busy loop, or `DeadlineReached`.
#[test]
fn quiescent_without_timeout_no_hang() {
    let mut p = Program::default();
    let s = p.add_signal("top.s", Val::Int(0));
    p.add_process(
        "top.p",
        0,
        vec![
            Insn::Wait {
                sens: Arc::new(vec![s]),
                with_timeout: false,
            },
            Insn::Pop,
            Insn::Jump(0),
        ],
    );
    let mut sim = Simulator::new(p);
    let out = sim
        .run_slice(Time::fs(1_000), u64::MAX, &mut || false)
        .unwrap();
    assert_eq!(out, RunOutcome::Quiescent);
    assert_eq!(sim.stats().cycles, 1); // just the initial cycle
    assert_eq!(sim.now(), Time::ZERO);
}

/// A preempted-then-empty driver (transport tx at 10 fs wiped by an
/// inertial assignment at 2 fs) must not leave a stale pending entry that
/// produces a spurious cycle at 10 fs or stalls quiescence.
#[test]
fn preempted_empty_driver_reaches_quiescence() {
    let mut p = Program::default();
    let s = p.add_signal("top.s", Val::Int(0));
    p.add_process(
        "top.p",
        0,
        vec![
            Insn::PushInt(1),
            Insn::PushInt(10),
            Insn::Sched {
                sig: s,
                transport: true,
            },
            Insn::PushInt(2),
            Insn::PushInt(2),
            Insn::Sched {
                sig: s,
                transport: false, // inertial: preempts the 10 fs tx
            },
            Insn::Wait {
                sens: Arc::new(vec![]),
                with_timeout: false,
            },
            Insn::Pop,
            Insn::Jump(0),
        ],
    );
    let mut sim = Simulator::new(p);
    let out = sim
        .run_slice(Time::fs(100), u64::MAX, &mut || false)
        .unwrap();
    assert_eq!(out, RunOutcome::Quiescent);
    assert_eq!(sim.now(), Time::fs(2)); // never visited the preempted 10 fs
    assert_eq!(sim.stats().cycles, 2);
    assert_eq!(sim.signal_value(s), &Val::Int(2));
    assert_eq!(sim.stats().events, 1);
}

/// Stale calendar entries must not mask `DeadlineReached`: with real work
/// pending past the deadline, a slice stops there — at the right time.
#[test]
fn stale_entries_do_not_stall_deadline() {
    let mut p = Program::default();
    let s = p.add_signal("top.s", Val::Int(0));
    let far = p.add_signal("top.far", Val::Int(0));
    p.add_process(
        "top.preempt",
        0,
        vec![
            Insn::PushInt(1),
            Insn::PushInt(50),
            Insn::Sched {
                sig: s,
                transport: true,
            },
            Insn::PushInt(2),
            Insn::PushInt(2),
            Insn::Sched {
                sig: s,
                transport: false,
            },
            Insn::Halt,
        ],
    );
    p.add_process(
        "top.later",
        0,
        vec![
            Insn::PushInt(1),
            Insn::PushInt(1_000),
            Insn::Sched {
                sig: far,
                transport: false,
            },
            Insn::Halt,
        ],
    );
    let mut sim = Simulator::new(p);
    let out = sim
        .run_slice(Time::fs(100), u64::MAX, &mut || false)
        .unwrap();
    assert_eq!(out, RunOutcome::DeadlineReached);
    assert_eq!(sim.now(), Time::fs(2)); // stale 50 fs entry never fired
                                        // A later slice picks the pending work up.
    let out = sim
        .run_slice(Time::fs(2_000), u64::MAX, &mut || false)
        .unwrap();
    assert_eq!(out, RunOutcome::Quiescent);
    assert_eq!(sim.now(), Time::fs(1_000));
    assert_eq!(sim.signal_value(far), &Val::Int(1));
}

/// `wait for 0 ns` resumes in the *next* delta cycle (LRM 8.1), so a
/// zero-timeout process's own delta-delayed drivers must mature: the
/// storm interleaves with signal updates instead of pinning time at
/// delta 0 and starving the driver queue. Regression for a bug where
/// the zero timeout was computed as `now.plus_fs(0)` — a delta-reset
/// instant in the past — found by the vhdl-conform generator.
#[test]
fn zero_timeout_storm_matures_own_drivers() {
    for backend in [sim_kernel::Backend::Interp, sim_kernel::Backend::Compiled] {
        let mut p = Program::default();
        let s = p.add_signal("top.s", Val::Int(0));
        // v := v + 1; s <= v (delta); wait for 0 ns;  — forever.
        let code = vec![
            Insn::LoadVar(addr(0)),
            Insn::PushInt(1),
            Insn::Binop(Op::Add),
            Insn::StoreVar(addr(0)),
            Insn::LoadVar(addr(0)),
            Insn::PushInt(-1), // no-delay marker → next delta
            Insn::Sched {
                sig: s,
                transport: false,
            },
            Insn::PushInt(0), // wait for 0 ns
            Insn::Wait {
                sens: Arc::new(vec![]),
                with_timeout: true,
            },
            Insn::Pop,
            Insn::Jump(0),
        ];
        p.add_process("top.storm", 1, code);
        let mut sim = Simulator::new(p);
        sim.set_backend(backend);
        let out = sim
            .run_slice(Time::fs(u64::MAX / 4), 10, &mut || false)
            .unwrap();
        assert_eq!(out, RunOutcome::CycleBudget, "{backend}");
        let st = sim.stats();
        assert_eq!(sim.now().fs, 0, "{backend}: storm never advances time");
        // Every cycle after the first matures the previous cycle's delta
        // transaction; the signal value tracks the variable.
        assert_eq!(st.transactions, 9, "{backend}");
        assert_eq!(st.events, 9, "{backend}");
        assert!(
            matches!(sim.signal_value(s), Val::Int(n) if *n >= 2),
            "{backend}: driver starved at {:?}",
            sim.signal_value(s)
        );
    }
}
