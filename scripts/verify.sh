#!/bin/sh
# Tier-1 verification, fully offline: release build, the whole test suite,
# and formatting. This is the gate every change must pass.
set -eu

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release --workspace"
# --workspace: the steps below run the vhdlc and vhdld binaries from
# crates/*, which a bare root-package build would not produce.
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> dual-backend equivalence suite (scheduler oracle + compiled backend)"
# The kernel's property suite replays randomized designs through the
# event-driven scheduler, the retained full-scan reference stepper, AND
# the block-compiled process backend, demanding byte-identical VCD
# output, stats (including instruction counts and fuel boundaries), and
# Name-Server counters across all of them.
cargo test -q -p sim-kernel --lib equiv
cargo test -q -p sim-kernel --test alloc_budget

echo "==> checkpoint/resume round-trip suite (kernel snapshot + server sessions)"
# The snapshot property suite checkpoints randomized designs mid-run,
# restores them fresh, and demands the resumed run's VCD, stats, and
# counters be byte-identical to an uninterrupted oracle — under both
# backends — plus rejection of corrupted/truncated/stale-version blobs.
# The server e2e tests cover the same contract end to end over TCP
# (`restored_session_continues_byte_identical`) alongside the pooled
# core's soak (every connection served or explicitly rejected) and a
# drain with a session mid-run returning a `draining` outcome.
cargo test -q -p sim-kernel --lib snapshot
cargo test -q -p vhdl-server --test server

echo "==> parallel delta-cycle byte-identity suite (jobs in {1,2,4,8}, both backends)"
# The parallel property suite runs randomized wide designs (resolved
# multi-writer buses, cross-partition drivers, delta storms, runtime
# faults, compiled-fallback processes) at several worker counts and
# demands VCD, full stats, reports, error identity, and checkpoint
# blobs byte-identical to the sequential oracle — plus the 4-worker
# steady state staying inside the sequential allocation budget.
cargo test -q -p sim-kernel --test par

echo "==> exp_kernel smoke incl. compiled backend + parallel series (low iters, scratch output dir)"
# A quick pass over the kernel benchmarks proves they still run end to end
# — including the interp-vs-compiled comparison series, whose preamble
# asserts counter-identical dual-backend runs and full compilation (no
# fallback processes), and the E13 parallel series, whose preamble asserts
# jobs=4 VCD byte-identity under both backends and whose critical-path
# speedup must clear 2x; AG_BENCH_OUT keeps the committed full-iteration
# results/ untouched.
SMOKE_OUT="$(mktemp -d)"
AG_BENCH_ITERS=2 AG_BENCH_OUT="$SMOKE_OUT" \
    cargo bench -q -p ag-bench --bench exp_kernel
grep -q '"oscillator_speedup_compiled"' "$SMOKE_OUT/exp_kernel.json" \
    || { echo "verify: exp_kernel did not emit backend speedup metrics" >&2; exit 1; }
grep -q '"sparse_par_speedup_4w_critical_path"' "$SMOKE_OUT/exp_kernel.json" \
    || { echo "verify: exp_kernel did not emit the parallel speedup metric" >&2; exit 1; }
rm -rf "$SMOKE_OUT"

echo "==> VIFB binary equivalence + structural cache suites"
# The binary-VIF property suite (DESIGN.md §16): decode∘encode must
# re-print byte-identically to the canonical VIF text on arbitrary node
# graphs (text is the oracle), sharing and foreign resolution must
# match the text path, and corrupted/truncated/version-bumped buffers
# must be rejected with typed errors — never panics — under shrinking.
# The library suite covers sidecar repair, stale-sidecar fallback to
# text, snapshot/fork sharing, deep content-hash invalidation, and the
# malformed-dep-names-the-unit error contract; the driver suite pins
# the warm plan cache (no parse, no re-print) and that every parallel
# commit carries a hash-valid sidecar.
cargo test -q -p vhdl-vif --test vifb_props
cargo test -q -p vhdl-vif --lib
cargo test -q -p vhdl-driver --lib batch

echo "==> generative differential conformance (corpus replay + fresh fuzz + fault canary)"
# Replay every checked-in corpus seed through the full eight-cell
# configuration matrix ({interp,compiled} x {1,4 workers} x
# {solid,checkpoint-restore}) demanding byte-identity and golden-digest
# stability, then fuzz a bounded batch of fresh deterministic seeds.
# Fully offline; seeds are fixed so the gate is reproducible.
CONFORM_TMP="$(mktemp -d)"
./target/release/vhdlconform run --seed-dir tests/corpus
./target/release/vhdlconform run --fresh 32 --seed 0x5eed
# Fault canary: a deliberately broken resolution commit (parallel cells
# see only the first driver) must make the gate FAIL, and the failure
# must come with a minimized reproducer — proving the oracle and the
# shrinker actually have teeth, not just that the kernel is healthy.
if ./target/release/vhdlconform run --fresh 32 --seed 1 --inject-fault \
    >"$CONFORM_TMP/fault.log" 2>&1; then
    echo "verify: injected resolution fault was NOT caught by the matrix" >&2
    exit 1
fi
grep -q "minimized reproducer" "$CONFORM_TMP/fault.log" \
    || { echo "verify: fault detection did not produce a minimized reproducer" >&2; exit 1; }
rm -rf "$CONFORM_TMP"

echo "==> batch mode on the end-to-end fixture (--jobs 4, then warm --incremental)"
# The full-adder example is a 10-unit design; compile it through the batch
# scheduler on 4 workers into a throwaway work library, then rerun warm
# with --incremental (every unit must hit the cache) and elaborate to make
# sure the incrementally-reused library still simulates.
BATCH_WORK="$(mktemp -d)"
trap 'rm -rf "$BATCH_WORK"' EXIT
./target/release/vhdlc --work "$BATCH_WORK" --jobs 4 --stats \
    examples/full_adder.vhd
./target/release/vhdlc --work "$BATCH_WORK" --jobs 4 --incremental --stats \
    --elab tb --run 40 examples/full_adder.vhd >"$BATCH_WORK/warm.log" 2>&1
cat "$BATCH_WORK/warm.log"
grep -q "miss 0 cold 0" "$BATCH_WORK/warm.log" \
    || { echo "verify: warm --incremental rerun re-analyzed units" >&2; exit 1; }
# The warm run's dependency loads must be zero-copy: served from VIFB
# sidecars written by the cold run (nonzero decodes), with the text
# parser never invoked (`vifb:` counter line from --stats).
grep -q "vifb: .* 0 text parses" "$BATCH_WORK/warm.log" \
    || { echo "verify: warm rerun fell back to VIF text parsing" >&2; exit 1; }
grep -Eq "vifb: .* [1-9][0-9]* decodes" "$BATCH_WORK/warm.log" \
    || { echo "verify: warm rerun did not decode VIFB sidecars" >&2; exit 1; }

echo "==> vhdld loopback session (analyze -> elaborate -> run -> checkpoint -> inspect -> shutdown)"
# Start the pooled server (explicit worker/acceptor counts so the sharded
# core — not a fallback path — serves this) on an ephemeral loopback port,
# script one full session through the built-in client, and assert a clean
# drain: every response ok, the simulation quiescent, a checkpoint blob
# produced, and the server process exiting by itself.
./target/release/vhdld --listen 127.0.0.1:0 --quiet \
    --workers 2 --acceptors 1 --tenant-quota 4 >"$BATCH_WORK/vhdld.out" &
VHDLD_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^vhdld listening on //p' "$BATCH_WORK/vhdld.out")"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "verify: vhdld never started listening" >&2; exit 1; }
./target/release/vhdld --connect "$ADDR" >"$BATCH_WORK/session.log" <<'EOF'
{"op":"analyze","paths":["examples/full_adder.vhd"]}
{"op":"elaborate","entity":"tb"}
{"op":"run","until":"40ns","jobs":2}
{"op":"checkpoint"}
{"op":"inspect","path":":tb:sum"}
{"op":"shutdown"}
EOF
cat "$BATCH_WORK/session.log"
if grep -q '"ok":false' "$BATCH_WORK/session.log"; then
    echo "verify: vhdld session had a failing request" >&2
    exit 1
fi
grep -q '"outcome":"quiescent"' "$BATCH_WORK/session.log" \
    || { echo "verify: vhdld run did not reach quiescence" >&2; exit 1; }
grep -q '"kind":"signal"' "$BATCH_WORK/session.log" \
    || { echo "verify: vhdld inspect did not resolve :tb:sum" >&2; exit 1; }
grep -q '"snapshot":"' "$BATCH_WORK/session.log" \
    || { echo "verify: vhdld checkpoint did not return a snapshot blob" >&2; exit 1; }
grep -q '"draining":true' "$BATCH_WORK/session.log" \
    || { echo "verify: vhdld shutdown was not acknowledged" >&2; exit 1; }
for _ in $(seq 1 100); do
    kill -0 "$VHDLD_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$VHDLD_PID" 2>/dev/null; then
    kill "$VHDLD_PID"
    echo "verify: vhdld did not drain after shutdown" >&2
    exit 1
fi
wait "$VHDLD_PID" || { echo "verify: vhdld exited nonzero" >&2; exit 1; }

echo "==> vhdld structural-cache reuse across session forks (repeated analyze -> nonzero vifb hits)"
# Single serving worker, inline analysis (--jobs 1), two sequential
# sessions analyzing the same design: the first decodes the units into
# the worker thread's structural cache; the second — a fresh library
# fork — must serve its dependency loads from that cache by deep
# content hash. The process-wide `vifb` counters in the `stats`
# response prove it (nonzero cache_hits), and `text_parses` staying at
# zero proves neither session ever fell back to the text parser.
./target/release/vhdld --listen 127.0.0.1:0 --quiet \
    --jobs 1 --workers 1 --acceptors 1 >"$BATCH_WORK/vhdld2.out" &
VHDLD2_PID=$!
ADDR2=""
for _ in $(seq 1 100); do
    ADDR2="$(sed -n 's/^vhdld listening on //p' "$BATCH_WORK/vhdld2.out")"
    [ -n "$ADDR2" ] && break
    sleep 0.1
done
[ -n "$ADDR2" ] || { echo "verify: second vhdld never started listening" >&2; exit 1; }
./target/release/vhdld --connect "$ADDR2" >"$BATCH_WORK/cache1.log" <<'EOF'
{"op":"analyze","paths":["examples/full_adder.vhd"]}
{"op":"stats"}
EOF
./target/release/vhdld --connect "$ADDR2" >"$BATCH_WORK/cache2.log" <<'EOF'
{"op":"analyze","paths":["examples/full_adder.vhd"]}
{"op":"stats"}
EOF
cat "$BATCH_WORK/cache2.log"
if grep -q '"ok":false' "$BATCH_WORK/cache1.log" "$BATCH_WORK/cache2.log"; then
    echo "verify: structural-cache session had a failing request" >&2
    exit 1
fi
grep -Eq '"vifb":\{"cache_hits":[1-9]' "$BATCH_WORK/cache2.log" \
    || { echo "verify: repeated analyze produced no structural-cache hits" >&2; exit 1; }
grep -q '"text_parses":0' "$BATCH_WORK/cache2.log" \
    || { echo "verify: session analyze fell back to VIF text parsing" >&2; exit 1; }
kill "$VHDLD2_PID" 2>/dev/null || true
wait "$VHDLD2_PID" 2>/dev/null || true

echo "verify: OK"
