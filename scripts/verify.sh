#!/bin/sh
# Tier-1 verification, fully offline: release build, the whole test suite,
# and formatting. This is the gate every change must pass.
set -eu

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: OK"
