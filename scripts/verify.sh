#!/bin/sh
# Tier-1 verification, fully offline: release build, the whole test suite,
# and formatting. This is the gate every change must pass.
set -eu

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> batch mode on the end-to-end fixture (--jobs 4, then warm --incremental)"
# The full-adder example is a 10-unit design; compile it through the batch
# scheduler on 4 workers into a throwaway work library, then rerun warm
# with --incremental (every unit must hit the cache) and elaborate to make
# sure the incrementally-reused library still simulates.
BATCH_WORK="$(mktemp -d)"
trap 'rm -rf "$BATCH_WORK"' EXIT
./target/release/vhdlc --work "$BATCH_WORK" --jobs 4 --stats \
    examples/full_adder.vhd
./target/release/vhdlc --work "$BATCH_WORK" --jobs 4 --incremental --stats \
    --elab tb --run 40 examples/full_adder.vhd >"$BATCH_WORK/warm.log" 2>&1
cat "$BATCH_WORK/warm.log"
grep -q "miss 0 cold 0" "$BATCH_WORK/warm.log" \
    || { echo "verify: warm --incremental rerun re-analyzed units" >&2; exit 1; }

echo "verify: OK"
